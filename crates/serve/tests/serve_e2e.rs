//! End-to-end daemon tests over real sockets: fig1-sweep parity with the
//! in-process harness, explicit overload replies, deadline expiry, cache
//! stats over the wire, and drain-on-shutdown.

use atscale::{Harness, RunSpec, RunStore, SweepConfig};
use atscale_mmu::MachineConfig;
use atscale_serve::{Client, ClientError, ServeConfig, Server, SubmitOptions};
use atscale_vm::PageSize;
use atscale_workloads::WorkloadId;
use std::time::Duration;

fn temp_store(tag: &str) -> (std::path::PathBuf, RunStore) {
    let dir = std::env::temp_dir().join(format!("atscale-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), RunStore::open(dir).unwrap())
}

fn start_server(config: ServeConfig) -> (Server, String) {
    let server = Server::start(config, Some("127.0.0.1:0"), None).expect("bind");
    let addr = server.tcp_addr().expect("tcp endpoint").to_string();
    (server, addr)
}

fn tiny_spec(seed: u64) -> RunSpec {
    RunSpec {
        workload: WorkloadId::parse("cc-urand").unwrap(),
        nominal_footprint: 16 << 20,
        page_size: PageSize::Size4K,
        seed,
        warmup_instr: 1_000,
        budget_instr: 20_000,
        arch: atscale::ArchKind::Baseline,
    }
}

/// The fig1 sweep submitted through the daemon must reproduce the direct
/// in-process harness bit for bit.
#[test]
fn fig1_sweep_through_the_daemon_matches_the_harness_bit_for_bit() {
    let (dir, store) = temp_store("parity");
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        workers: 4,
        ..ServeConfig::default()
    });

    // The fig1 spec set (one workload, test profile): every footprint at
    // all three page sizes, exactly as `Harness::sweep_many` builds it.
    let sweep = SweepConfig::test();
    let workload = WorkloadId::parse("cc-urand").unwrap();
    let mut specs = Vec::new();
    for fp in sweep.footprints() {
        let base = sweep.spec(workload, fp);
        specs.push(base);
        specs.push(base.with_page_size(PageSize::Size2M));
        specs.push(base.with_page_size(PageSize::Size1G));
    }

    let mut client = Client::connect(&addr).expect("connect");
    client.hello().expect("handshake");
    let served = client
        .run_many(&specs, SubmitOptions::default())
        .expect("served sweep");

    let direct = Harness::new()
        .with_config(MachineConfig::haswell())
        .run_many(&specs);

    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(
            serde_json::to_vec(s).unwrap(),
            serde_json::to_vec(d).unwrap(),
            "daemon record diverges from direct harness for {}",
            d.spec.label()
        );
    }

    // Satellite: cache occupancy over the wire reflects the sweep.
    let stats = client.cache_stats().expect("cache stats");
    assert_eq!(stats.entries, specs.len() as u64);
    assert_eq!(stats.tmp_files, 0);
    assert!(stats.bytes > 0);

    // Second submission is answered from the cache: no new executions.
    let before = client.server_stats().expect("stats").executions;
    let again = client
        .run_many(&specs, SubmitOptions::default())
        .expect("cached sweep");
    let after = client.server_stats().expect("stats");
    assert_eq!(after.executions, before, "cache-first: no re-execution");
    assert_eq!(after.cache_hits, specs.len() as u64);
    for (s, d) in again.iter().zip(&direct) {
        assert_eq!(
            serde_json::to_vec(s).unwrap(),
            serde_json::to_vec(d).unwrap()
        );
    }

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full queue rejects the whole batch with a structured reply — never a
/// hang, never a silent drop — and the server stays usable.
#[test]
fn full_queue_rejects_with_explicit_overloaded_reply() {
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        queue_capacity: 1,
        start_paused: true,
        ..ServeConfig::default()
    });
    let scheduler = server.handle().scheduler().clone();

    // Fill the queue: one spec sits queued behind paused workers.
    let blocked = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.run_many(&[tiny_spec(1)], SubmitOptions::default())
        }
    });
    while scheduler.stats_reply().queued == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // A two-spec batch cannot fit: rejected atomically, nothing enqueued.
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .run_many(&[tiny_spec(2), tiny_spec(3)], SubmitOptions::default())
        .expect_err("queue is full");
    match err {
        ClientError::Overloaded(o) => {
            assert_eq!(o.queued, 1);
            assert_eq!(o.capacity, 1);
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    let stats = scheduler.stats_reply();
    assert_eq!(stats.queued, 1, "rejected batch enqueued nothing");
    assert_eq!(stats.overloaded, 1);

    // An identical spec still coalesces — dedup consumes no capacity.
    let coalesced = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.run_many(&[tiny_spec(1)], SubmitOptions::default())
        }
    });
    while scheduler.stats_reply().dedup_hits == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    scheduler.resume();
    let first = blocked.join().unwrap().expect("blocked batch completes");
    let second = coalesced
        .join()
        .unwrap()
        .expect("coalesced batch completes");
    assert_eq!(
        serde_json::to_vec(&first[0]).unwrap(),
        serde_json::to_vec(&second[0]).unwrap()
    );
    assert_eq!(scheduler.stats().executions(), 1);

    server.shutdown_and_join();
}

/// A batch larger than the whole admission queue can never be admitted in
/// one piece — `run_chunked` must split it (sized from the advertised
/// capacity in `Welcome`) and still return every record in spec order.
#[test]
fn run_chunked_resolves_batches_larger_than_the_queue() {
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 2,
        queue_capacity: 4,
        ..ServeConfig::default()
    });
    let scheduler = server.handle().scheduler().clone();

    let specs: Vec<RunSpec> = (0..10u64).map(tiny_spec).collect();
    let mut client = Client::connect(&addr).expect("connect");
    let welcome = client.hello().expect("handshake");
    assert_eq!(welcome.queue_capacity, 4);

    // One batch is impossible by construction…
    let err = client
        .run_many(&specs, SubmitOptions::default())
        .expect_err("10 fresh jobs cannot fit a 4-slot queue");
    assert!(matches!(err, ClientError::Overloaded(_)), "{err}");

    // …but the chunked path resolves all of it, in order.
    let records = client
        .run_chunked(&specs, SubmitOptions::default())
        .expect("chunked batch resolves");
    assert_eq!(records.len(), specs.len());
    for (record, spec) in records.iter().zip(&specs) {
        assert_eq!(record.spec.seed, spec.seed, "records are in spec order");
    }
    assert_eq!(scheduler.stats().executions(), specs.len() as u64);

    server.shutdown_and_join();
}

/// Binding a Unix socket a live daemon is serving must fail loudly
/// instead of silently stealing the endpoint; a genuinely stale socket
/// file is reclaimed.
#[cfg(unix)]
#[test]
fn unix_bind_refuses_a_live_daemon_and_reclaims_a_stale_socket() {
    let path = std::env::temp_dir().join(format!("atscale-e2e-steal-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let first = Server::start(
        ServeConfig {
            store: None,
            ..ServeConfig::default()
        },
        None,
        Some(&path),
    )
    .expect("first daemon binds");

    let stolen = Server::start(
        ServeConfig {
            store: None,
            ..ServeConfig::default()
        },
        None,
        Some(&path),
    );
    match stolen {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse, "{e}"),
        Ok(_) => panic!("second daemon stole a live socket"),
    }
    first.shutdown_and_join();

    // Shutdown unlinked the socket; simulate a crash leaving a stale file
    // behind and check the next daemon reclaims it.
    std::fs::write(&path, b"").expect("plant stale file");
    let reclaimed = Server::start(
        ServeConfig {
            store: None,
            ..ServeConfig::default()
        },
        None,
        Some(&path),
    )
    .expect("stale socket file is reclaimed");
    reclaimed.shutdown_and_join();
    let _ = std::fs::remove_file(&path);
}

/// Specs resolving past their deadline yield `Deadline` frames (surfaced
/// as `ClientError::Expired`), and the expiry is counted.
#[test]
fn missed_deadlines_yield_deadline_frames() {
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        start_paused: true,
        ..ServeConfig::default()
    });
    let scheduler = server.handle().scheduler().clone();

    let submitted = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.run_many(
                &[tiny_spec(10), tiny_spec(11)],
                SubmitOptions {
                    deadline_ms: Some(0),
                    ..SubmitOptions::default()
                },
            )
        }
    });
    while scheduler.stats_reply().queued < 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // The deadline (admission + 0 ms) has passed before workers resume.
    std::thread::sleep(Duration::from_millis(10));
    scheduler.resume();

    match submitted.join().unwrap() {
        Err(ClientError::Expired(indices)) => assert_eq!(indices, vec![0, 1]),
        other => panic!("expected Expired, got {other:?}"),
    }
    assert_eq!(scheduler.stats_reply().expired, 2);
    assert_eq!(
        scheduler.stats().executions(),
        0,
        "fully-abandoned jobs are shed without executing"
    );

    server.shutdown_and_join();
}

/// Graceful shutdown drains: batches admitted before the shutdown frame
/// still deliver every record, then the server exits.
#[test]
fn shutdown_drains_admitted_work_before_exiting() {
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 2,
        start_paused: true,
        ..ServeConfig::default()
    });
    let scheduler = server.handle().scheduler().clone();

    let pending = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.run_many(
                &[tiny_spec(20), tiny_spec(21), tiny_spec(22)],
                SubmitOptions::default(),
            )
        }
    });
    while scheduler.stats_reply().queued < 3 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shutdown while the whole batch is still queued; drain un-pauses.
    let mut control = Client::connect(&addr).expect("connect");
    control.shutdown().expect("acknowledged");

    let records = pending.join().unwrap().expect("admitted batch drains");
    assert_eq!(records.len(), 3);

    // New submissions after the drain began are rejected explicitly.
    let mut late = Client::connect(&addr).ok();
    if let Some(late) = late.as_mut() {
        match late.run_many(&[tiny_spec(23)], SubmitOptions::default()) {
            Err(ClientError::Server(msg)) => assert!(msg.contains("draining"), "{msg}"),
            Err(ClientError::Io(_) | ClientError::Protocol(_)) => {} // listener already gone
            other => panic!("expected draining rejection, got {other:?}"),
        }
    }

    server.join();
}
