//! End-to-end tests for the epoll serve tier and the shard router: wire
//! parity with the blocking tier and the in-process harness, per-shard
//! placement and single-flight dedup, topology discovery from any
//! member, and drain-on-shutdown through the reactor.

use atscale::{Harness, RunSpec, RunStore};
use atscale_mmu::MachineConfig;
use atscale_serve::{Client, ServeConfig, Server, ShardMap, ShardedClient, SubmitOptions};
use atscale_vm::PageSize;
use atscale_workloads::WorkloadId;
use std::net::TcpListener;

fn temp_store(tag: &str) -> (std::path::PathBuf, RunStore) {
    let dir =
        std::env::temp_dir().join(format!("atscale-sharded-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), RunStore::open(dir).unwrap())
}

fn tiny_spec(seed: u64) -> RunSpec {
    RunSpec {
        workload: WorkloadId::parse("cc-urand").unwrap(),
        nominal_footprint: 16 << 20,
        page_size: PageSize::Size4K,
        seed,
        warmup_instr: 1_000,
        budget_instr: 20_000,
        arch: atscale::ArchKind::Baseline,
    }
}

/// Reserves distinct loopback ports so a topology's addresses are known
/// before its members bind them.
fn reserve_addrs(n: usize) -> Vec<String> {
    let holds: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    holds
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect()
}

/// The epoll tier must serve the exact records the blocking tier and the
/// in-process harness produce, answer the second pass from cache, and
/// drain on shutdown.
#[test]
fn epoll_tier_serves_records_bit_for_bit_and_drains() {
    let (dir, store) = temp_store("epoll");
    let server = Server::start_epoll_sharded(
        ServeConfig {
            store: Some(store),
            workers: 2,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
        2,
    )
    .expect("bind epoll tier");
    let addr = server.tcp_addr().expect("tcp endpoint").to_string();

    let specs: Vec<RunSpec> = (0..6).map(tiny_spec).collect();
    let mut client = Client::connect(&addr).expect("connect");
    let welcome = client.hello().expect("handshake");
    assert_eq!(welcome.shard, 0, "standalone daemon is shard 0");
    assert_eq!(welcome.shards, 1);
    assert!(welcome.topology.is_empty());

    let served = client
        .run_many(&specs, SubmitOptions::default())
        .expect("served batch");
    let direct = Harness::new()
        .with_config(MachineConfig::haswell())
        .run_many(&specs);
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(
            serde_json::to_vec(s).unwrap(),
            serde_json::to_vec(d).unwrap(),
            "epoll-tier record diverges for {}",
            d.spec.label()
        );
    }

    // Cached second pass: zero new executions through the reactor path.
    let before = client.server_stats().expect("stats").executions;
    client
        .run_many(&specs, SubmitOptions::default())
        .expect("cached batch");
    let after = client.server_stats().expect("stats");
    assert_eq!(after.executions, before, "cache-first through the reactor");
    assert_eq!(after.cache_hits, specs.len() as u64);

    // Shutdown drains: a batch submitted just before the Shutdown frame
    // must still be fully answered (reactor flushes outbufs before exit).
    let mut late = Client::connect(&addr).expect("second connection");
    late.hello().expect("handshake");
    let late_specs: Vec<RunSpec> = (100..104).map(tiny_spec).collect();
    let answered = late
        .run_many(&late_specs, SubmitOptions::default())
        .expect("late batch answered");
    assert_eq!(answered.len(), late_specs.len());
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A 4-shard topology must produce byte-identical records to a single
/// daemon, place every record only on its owning shard (cache identity =
/// placement), keep single-flight dedup exact per shard, and advertise
/// the full topology from any member.
#[test]
fn sharded_sweep_matches_single_daemon_and_places_records_per_shard() {
    let shards = 4usize;
    let addrs = reserve_addrs(shards);
    let topology_cfg: Vec<String> = addrs.clone();
    let mut servers = Vec::new();
    let mut dirs = Vec::new();
    for (i, addr) in addrs.iter().enumerate() {
        let (dir, store) = temp_store(&format!("shard{i}"));
        dirs.push(dir);
        servers.push(
            Server::start_epoll_sharded(
                ServeConfig {
                    store: Some(store),
                    workers: 2,
                    shard: i as u64,
                    topology: topology_cfg.clone(),
                    ..ServeConfig::default()
                },
                addr,
                1,
            )
            .expect("bind shard"),
        );
    }

    // Duplicates included: dedup must stay exact per shard.
    let mut specs: Vec<RunSpec> = (0..12).map(tiny_spec).collect();
    specs.push(tiny_spec(0));
    specs.push(tiny_spec(5));

    // Connect to a NON-zero member: discovery must still yield the full
    // topology in shard order.
    let mut client = ShardedClient::connect(&addrs[2]).expect("connect member 2");
    assert_eq!(client.shards(), shards);
    assert_eq!(client.topology(), addrs.as_slice());

    let sharded = client
        .run_chunked(&specs, SubmitOptions::default())
        .expect("sharded sweep");

    // Reference: the same sweep through one standalone daemon.
    let (single_dir, single_store) = temp_store("single");
    let single = Server::start(
        ServeConfig {
            store: Some(single_store),
            workers: 2,
            ..ServeConfig::default()
        },
        Some("127.0.0.1:0"),
        None,
    )
    .expect("bind single daemon");
    let single_addr = single.tcp_addr().unwrap().to_string();
    let mut single_client = Client::connect(&single_addr).expect("connect single");
    single_client.hello().expect("handshake");
    let reference = single_client
        .run_many(&specs, SubmitOptions::default())
        .expect("single-daemon sweep");

    assert_eq!(sharded.len(), reference.len());
    for (s, r) in sharded.iter().zip(&reference) {
        assert_eq!(
            serde_json::to_vec(s).unwrap(),
            serde_json::to_vec(r).unwrap(),
            "sharded record diverges from single daemon for {}",
            r.spec.label()
        );
    }

    // Placement: each shard's cache holds exactly the specs the router
    // assigns it, and its execution counter shows per-shard single-flight
    // (duplicates never re-executed).
    let machine = MachineConfig::haswell();
    let map = ShardMap::new(shards);
    let mut expected: Vec<std::collections::BTreeSet<String>> = vec![Default::default(); shards];
    for spec in &specs {
        let shard = map.shard_for(spec, &machine);
        expected[shard].insert(RunStore::key(spec, &machine));
    }
    let mut total_executions = 0u64;
    for (i, addr) in addrs.iter().enumerate() {
        let mut probe = Client::connect(addr).expect("connect shard");
        let welcome = probe.hello().expect("handshake");
        assert_eq!(welcome.shard, i as u64, "member knows its shard index");
        assert_eq!(welcome.shards, shards as u64);
        assert_eq!(welcome.topology, addrs, "every member advertises all");
        let stats = probe.cache_stats().expect("cache stats");
        assert_eq!(
            stats.entries,
            expected[i].len() as u64,
            "shard {i} holds exactly its routed records"
        );
        let server_stats = probe.server_stats().expect("server stats");
        assert_eq!(
            server_stats.executions,
            expected[i].len() as u64,
            "shard {i} executed each owned spec exactly once"
        );
        total_executions += server_stats.executions;
    }
    let unique: std::collections::BTreeSet<String> =
        specs.iter().map(|s| RunStore::key(s, &machine)).collect();
    assert_eq!(
        total_executions,
        unique.len() as u64,
        "whole topology executed each unique spec exactly once"
    );

    single.shutdown_and_join();
    for server in servers {
        server.shutdown_and_join();
    }
    for dir in dirs.iter().chain(std::iter::once(&single_dir)) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Reconnect-on-drop: killing a shard's connection mid-session must be
/// transparent — the sharded client re-dials and the resubmitted
/// partition returns byte-identical records (deterministic + cache-first).
#[test]
fn sharded_client_survives_a_dropped_connection() {
    let (dir, store) = temp_store("redial");
    let server = Server::start_epoll_sharded(
        ServeConfig {
            store: Some(store),
            workers: 2,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
        1,
    )
    .expect("bind");
    let addr = server.tcp_addr().unwrap().to_string();

    let specs: Vec<RunSpec> = (200..204).map(tiny_spec).collect();
    let mut client = ShardedClient::connect(&addr).expect("connect");
    let first = client
        .run_chunked(&specs, SubmitOptions::default())
        .expect("first pass");

    // Second sharded client, dropped after its handshake, proves the
    // server tears dead connections down; then the surviving client runs
    // again — whatever happened to its socket in between, records match.
    drop(ShardedClient::connect(&addr).expect("transient client"));
    let second = client
        .run_chunked(&specs, SubmitOptions::default())
        .expect("second pass");
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            serde_json::to_vec(a).unwrap(),
            serde_json::to_vec(b).unwrap()
        );
    }
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
