//! Chaos suite: deterministic fault injection across the serve/store
//! path.
//!
//! Every scenario drives a real server over real sockets with a seeded
//! [`FaultPlan`] armed at one or more sites, then asserts the recovery
//! contract: every client call terminates with `Ok` or an explicit typed
//! error (never a hang, never a wedged subscriber), the server stays
//! healthy for the next client, and every record that is delivered is
//! byte-identical to a fault-free run.
//!
//! Determinism is the point: a scenario's observable outcome — the
//! classification, the fired-site signature, and the record digests — is
//! a pure function of its seed. The matrix test runs every scenario
//! twice per seed and requires the rendered outcome lines to match
//! exactly; CI then runs the whole suite twice and diffs the emitted
//! line files. Reproduce any CI failure locally with
//! `CHAOS_SEEDS=<seed> cargo test -p atscale-serve --test chaos -- --nocapture`.

#![cfg(feature = "faults")]

use atscale::{RunRecord, RunSpec, RunStore};
use atscale_faults::{FaultPlan, FaultRule, FaultSite};
use atscale_mmu::MachineConfig;
use atscale_serve::{Client, ClientError, RetryPolicy, ServeConfig, Server, SubmitOptions};
use atscale_telemetry::schema::validate_stream;
use atscale_telemetry::TelemetrySink;
use atscale_vm::PageSize;
use atscale_workloads::WorkloadId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

/// Injected panics are expected noise: filter them from stderr so a
/// passing chaos run reads clean, while genuine panics still print.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn tiny_spec(seed: u64) -> RunSpec {
    RunSpec {
        workload: WorkloadId::parse("cc-urand").unwrap(),
        nominal_footprint: 16 << 20,
        page_size: PageSize::Size4K,
        seed,
        warmup_instr: 1_000,
        budget_instr: 20_000,
        arch: atscale::ArchKind::Baseline,
    }
}

/// Unique scratch directory per scenario run (the matrix runs every
/// scenario twice per seed; runs must never share store state).
fn scratch_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "atscale-chaos-{tag}-{seed:x}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(config: ServeConfig) -> (Server, String) {
    let server = Server::start(config, Some("127.0.0.1:0"), None).expect("bind");
    let addr = server.tcp_addr().expect("tcp endpoint").to_string();
    (server, addr)
}

/// FNV-1a over a record's canonical JSON: the byte-identity fingerprint
/// carried in outcome lines.
fn digest(record: &RunRecord) -> u64 {
    let bytes = serde_json::to_vec(record).expect("records serialize");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fault-free reference digest for `tiny_spec(seed)`, computed once per
/// process (scenarios re-run per seed; the baseline never changes).
fn baseline_digest(seed: u64) -> u64 {
    static CACHE: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(d) = cache.lock().unwrap().get(&seed) {
        return *d;
    }
    let record = atscale::execute_run(&tiny_spec(seed), &MachineConfig::haswell());
    let d = digest(&record);
    cache.lock().unwrap().insert(seed, d);
    d
}

/// Checks delivered records against the fault-free baseline and returns
/// their digests for the outcome line.
fn assert_byte_identical(records: &[RunRecord], seed: u64, context: &str) -> Vec<u64> {
    let want = baseline_digest(seed);
    records
        .iter()
        .map(|r| {
            let got = digest(r);
            assert_eq!(got, want, "{context}: record diverges from fault-free run");
            got
        })
        .collect()
}

/// A scenario's observable result, rendered to one stable line.
struct Outcome {
    name: &'static str,
    seed: u64,
    classification: String,
    fires: String,
    digests: Vec<u64>,
}

impl Outcome {
    fn line(&self) -> String {
        let digests: Vec<String> = self.digests.iter().map(|d| format!("{d:016x}")).collect();
        format!(
            "{} seed={:#x} outcome={} fires=[{}] digests=[{}]",
            self.name,
            self.seed,
            self.classification,
            self.fires,
            digests.join(",")
        )
    }
}

fn expect_io(err: &ClientError, context: &str) {
    assert!(
        matches!(err, ClientError::Io(_)),
        "{context}: expected ClientError::Io, got {err}"
    );
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// A torn cache write lands corrupt JSON on disk; the next lookup
/// quarantines it and recomputes. Every delivered record stays
/// byte-identical to the fault-free run.
fn store_torn_write_recovers(seed: u64) -> Outcome {
    let plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::StoreTorn, FaultRule::always().max_fires(1)),
    );
    let dir = scratch_dir("torn", seed);
    let store = RunStore::open(&dir)
        .expect("open store")
        .with_fault_plan(Arc::clone(&plan));
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    let spec = [tiny_spec(seed)];
    let mut records = Vec::new();
    // 1st: executes, tears the cache write (the client still gets the
    // in-memory record). 2nd: quarantines the corpse, recomputes,
    // rewrites cleanly. 3rd: served from the now-intact cache.
    for _ in 0..3 {
        records.extend(
            client
                .run_many(&spec, SubmitOptions::default())
                .expect("torn cache writes are invisible to clients"),
        );
    }
    let digests = assert_byte_identical(&records, seed, "store_torn_write_recovers");

    let cache = client.cache_stats().expect("cache stats");
    assert_eq!(cache.entries, 1);
    assert_eq!(cache.corrupt_files, 1, "the torn file was quarantined");
    let stats = client.server_stats().expect("server stats");
    assert_eq!(stats.executions, 2, "torn entry forced one recompute");
    assert_eq!(stats.cache_hits, 1, "the rewritten entry serves");

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    Outcome {
        name: "store_torn_write_recovers",
        seed,
        classification: "quarantined-and-recomputed".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// Failed cache writes (write error, then rename error) are non-fatal:
/// records still stream, no tmp droppings survive, and the save
/// eventually lands.
fn store_write_and_rename_failures_are_nonfatal(seed: u64) -> Outcome {
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rule(FaultSite::StoreWrite, FaultRule::always().max_fires(1))
            .with_rule(FaultSite::StoreRename, FaultRule::always().max_fires(1)),
    );
    let dir = scratch_dir("nonfatal", seed);
    let store = RunStore::open(&dir)
        .expect("open store")
        .with_fault_plan(Arc::clone(&plan));
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    let spec = [tiny_spec(seed)];
    let mut records = Vec::new();
    // Save 1 dies at write, save 2 dies at rename, save 3 lands; every
    // submission still delivers its record.
    for _ in 0..3 {
        records.extend(
            client
                .run_many(&spec, SubmitOptions::default())
                .expect("failed cache writes are invisible to clients"),
        );
    }
    // 4th: the third save finally landed, so this one is a cache hit.
    records.extend(
        client
            .run_many(&spec, SubmitOptions::default())
            .expect("cached"),
    );
    let digests = assert_byte_identical(&records, seed, "store_write_and_rename");

    let cache = client.cache_stats().expect("cache stats");
    assert_eq!(cache.entries, 1);
    assert_eq!(cache.tmp_files, 0, "failed saves leave no droppings");
    let stats = client.server_stats().expect("server stats");
    assert_eq!(stats.executions, 3);
    assert_eq!(stats.cache_hits, 1);

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    Outcome {
        name: "store_write_and_rename_failures_are_nonfatal",
        seed,
        classification: "records-delivered-despite-save-failures".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// A worker panic mid-job must fail *its subscribers* — both coalesced
/// clients get an explicit `Failed` frame plus `BatchDone` — without
/// killing the worker or wedging the single-flight entry: an immediate
/// resubmission re-executes and succeeds.
fn worker_panic_contained(seed: u64) -> Outcome {
    quiet_injected_panics();
    let plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::WorkerPanic, FaultRule::always().max_fires(1)),
    );
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 2,
        start_paused: true,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });
    let scheduler = server.handle().scheduler().clone();

    // Two clients coalesce onto the one job that will panic.
    let submit = |addr: String| {
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.run_many(&[tiny_spec(seed)], SubmitOptions::default())
        })
    };
    let first = submit(addr.clone());
    while scheduler.stats_reply().queued == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let second = submit(addr.clone());
    while scheduler.stats_reply().dedup_hits == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    scheduler.resume();

    // Both subscribers terminate with the explicit failure — joining at
    // all is the no-wedged-subscriber assertion.
    for handle in [first, second] {
        match handle.join().expect("client thread survives") {
            Err(ClientError::Failed(jobs)) => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(jobs[0].0, 0);
                assert!(
                    jobs[0].1.contains("injected fault: WorkerPanic"),
                    "{jobs:?}"
                );
            }
            other => panic!("expected ClientError::Failed, got {other:?}"),
        }
    }
    let stats = scheduler.stats_reply();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.executions, 0);

    // The single-flight entry is gone: resubmission re-executes cleanly.
    let mut client = Client::connect(&addr).expect("connect");
    let records = client
        .run_many(&[tiny_spec(seed)], SubmitOptions::default())
        .expect("resubmission after a contained panic succeeds");
    let digests = assert_byte_identical(&records, seed, "worker_panic_contained");
    assert_eq!(scheduler.stats_reply().executions, 1);

    server.shutdown_and_join();
    Outcome {
        name: "worker_panic_contained",
        seed,
        classification: "both-subscribers-failed-then-resubmit-ok".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// Injected admission pressure: the chunked client retries rejected
/// chunks under its policy and wins once the pressure lifts; a client
/// whose attempt budget is smaller than the pressure gives up with the
/// explicit `Overloaded` error.
fn queue_pressure_backoff_retry(seed: u64) -> Outcome {
    let fast_retry = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: seed,
        overall_deadline: None,
    };

    // Pressure 3 < budget 8: the 4th admission succeeds.
    let plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::QueuePressure, FaultRule::always().max_fires(3)),
    );
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr)
        .expect("connect")
        .with_retry_policy(fast_retry);
    client.hello().expect("handshake");
    let records = client
        .run_chunked(&[tiny_spec(seed)], SubmitOptions::default())
        .expect("retry outlasts the injected pressure");
    let digests = assert_byte_identical(&records, seed, "queue_pressure_backoff_retry");
    let stats = client.server_stats().expect("server stats");
    assert_eq!(stats.overloaded, 3, "every injected rejection was counted");
    server.shutdown_and_join();

    // Pressure 5 > budget 2: the client surfaces Overloaded, explicitly.
    let stubborn = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::QueuePressure, FaultRule::always().max_fires(5)),
    );
    let (server2, addr2) = start_server(ServeConfig {
        store: None,
        workers: 1,
        faults: Some(Arc::clone(&stubborn)),
        ..ServeConfig::default()
    });
    let mut impatient = Client::connect(&addr2)
        .expect("connect")
        .with_retry_policy(RetryPolicy {
            max_attempts: 2,
            ..fast_retry
        });
    impatient.hello().expect("handshake");
    let err = impatient
        .run_chunked(&[tiny_spec(seed)], SubmitOptions::default())
        .expect_err("attempt budget smaller than the pressure");
    assert!(matches!(err, ClientError::Overloaded(_)), "{err}");
    assert_eq!(impatient.server_stats().expect("stats").overloaded, 2);
    server2.shutdown_and_join();

    Outcome {
        name: "queue_pressure_backoff_retry",
        seed,
        classification: "retried-to-success-and-gave-up-on-budget".to_string(),
        fires: format!("{}|{}", plan.signature(), stubborn.signature()),
        digests,
    }
}

/// A server-side socket write failure kills that connection's replies;
/// with a read timeout armed the client surfaces an explicit I/O error
/// instead of hanging, and the server keeps serving other clients.
fn server_write_faults_surface_as_client_errors(seed: u64) -> Outcome {
    let plan = Arc::new(
        FaultPlan::new(seed)
            // `after(1)` lets the Welcome through; the next reply write
            // on that connection dies.
            .with_rule(
                FaultSite::ServerWrite,
                FaultRule::always().after(1).max_fires(1),
            ),
    );
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });

    let mut doomed = Client::connect(&addr).expect("connect");
    doomed.hello().expect("welcome passes the after-gate");
    doomed
        .set_read_timeout(Some(Duration::from_millis(300)))
        .expect("socket timeout");
    let err = doomed
        .run_many(&[tiny_spec(seed)], SubmitOptions::default())
        .expect_err("replies died server-side");
    // The dead writer either closes the connection (EOF → `Protocol`)
    // or leaves the client to hit its read timeout (`Io`): both are the
    // explicit, non-hanging termination the contract demands.
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Protocol(_)),
        "server_write_faults: expected Io or Protocol, got {err}"
    );

    // The fault was connection-local: a fresh client gets full service.
    let mut healthy = Client::connect(&addr).expect("connect");
    let records = healthy
        .run_many(&[tiny_spec(seed)], SubmitOptions::default())
        .expect("server outlives a dead connection");
    let digests = assert_byte_identical(&records, seed, "server_write_faults");

    server.shutdown_and_join();
    Outcome {
        name: "server_write_faults_surface_as_client_errors",
        seed,
        classification: "io-error-surfaced-and-server-healthy".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// Server-side reply stalls slow the stream down but corrupt nothing:
/// every record arrives and matches the fault-free run.
fn server_stalls_are_survived(seed: u64) -> Outcome {
    let plan = Arc::new(FaultPlan::new(seed).with_rule(
        FaultSite::ServerStall,
        FaultRule::always().stall_ms(15).max_fires(4),
    ));
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    let records = client
        .run_many(
            &[tiny_spec(seed), tiny_spec(seed.wrapping_add(1))],
            SubmitOptions::default(),
        )
        .expect("stalled replies still arrive");
    assert_eq!(records.len(), 2);
    let mut digests = assert_byte_identical(&records[..1], seed, "server_stalls");
    digests.extend(assert_byte_identical(
        &records[1..],
        seed.wrapping_add(1),
        "server_stalls",
    ));
    assert_eq!(plan.fires(FaultSite::ServerStall), 4);

    server.shutdown_and_join();
    Outcome {
        name: "server_stalls_are_survived",
        seed,
        classification: "all-records-delivered-through-stalls".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// Reactor-loop stalls (the epoll tier's event loop pausing mid-cycle,
/// the moral equivalent of an overloaded I/O thread) delay frames but
/// corrupt nothing: every record arrives through the stalled reactor and
/// matches the fault-free run, and shutdown still drains.
fn reactor_stalls_are_survived(seed: u64) -> Outcome {
    let plan = Arc::new(FaultPlan::new(seed).with_rule(
        FaultSite::ReactorStall,
        FaultRule::always().stall_ms(15).max_fires(3),
    ));
    let server = Server::start_epoll_sharded(
        ServeConfig {
            store: None,
            workers: 1,
            faults: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
        1,
    )
    .expect("bind epoll tier");
    let addr = server.tcp_addr().expect("tcp endpoint").to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let records = client
        .run_many(
            &[tiny_spec(seed), tiny_spec(seed.wrapping_add(1))],
            SubmitOptions::default(),
        )
        .expect("stalled reactor still answers");
    assert_eq!(records.len(), 2);
    let mut digests = assert_byte_identical(&records[..1], seed, "reactor_stalls");
    digests.extend(assert_byte_identical(
        &records[1..],
        seed.wrapping_add(1),
        "reactor_stalls",
    ));
    assert_eq!(plan.fires(FaultSite::ReactorStall), 3);

    server.shutdown_and_join();
    Outcome {
        name: "reactor_stalls_are_survived",
        seed,
        classification: "all-records-delivered-through-reactor-stalls".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// Client-side socket faults (write failure, stall, read failure)
/// terminate the call with an explicit I/O error — and never poison the
/// server: a clean client gets full service afterwards.
fn client_socket_faults_terminate(seed: u64) -> Outcome {
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        ..ServeConfig::default()
    });

    // Write path: the very first frame send fails.
    let write_plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::ClientWrite, FaultRule::always().max_fires(1)),
    );
    let mut write_victim = Client::connect(&addr)
        .expect("connect")
        .with_fault_plan(Arc::clone(&write_plan));
    let err = write_victim.hello().expect_err("hello send dies");
    expect_io(&err, "client write fault");

    // Read path: the Welcome read survives one stall, the next read dies.
    let read_plan = Arc::new(
        FaultPlan::new(seed)
            .with_rule(
                FaultSite::ClientStall,
                FaultRule::always().stall_ms(10).max_fires(1),
            )
            .with_rule(
                FaultSite::ClientRead,
                FaultRule::always().after(1).max_fires(1),
            ),
    );
    let mut read_victim = Client::connect(&addr)
        .expect("connect")
        .with_fault_plan(Arc::clone(&read_plan));
    read_victim
        .hello()
        .expect("welcome read survives the stall");
    let err = read_victim
        .run_many(&[tiny_spec(seed)], SubmitOptions::default())
        .expect_err("reply read dies");
    expect_io(&err, "client read fault");

    // Neither client-side failure hurt the server.
    let mut healthy = Client::connect(&addr).expect("connect");
    let records = healthy
        .run_many(&[tiny_spec(seed)], SubmitOptions::default())
        .expect("server unaffected by client-side faults");
    let digests = assert_byte_identical(&records, seed, "client_socket_faults");

    server.shutdown_and_join();
    Outcome {
        name: "client_socket_faults_terminate",
        seed,
        classification: "write-io-read-io-server-healthy".to_string(),
        fires: format!("{}|{}", write_plan.signature(), read_plan.signature()),
        digests,
    }
}

/// Forced deadline expiry sheds the job and answers `Deadline` frames
/// (surfaced as `ClientError::Expired`); once the fault is spent, the
/// same spec resubmits and completes.
fn forced_deadline_expiry(seed: u64) -> Outcome {
    let plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::DeadlineExpiry, FaultRule::always().max_fires(1)),
    );
    let (server, addr) = start_server(ServeConfig {
        store: None,
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });
    let scheduler = server.handle().scheduler().clone();

    let mut client = Client::connect(&addr).expect("connect");
    match client.run_many(&[tiny_spec(seed)], SubmitOptions::default()) {
        Err(ClientError::Expired(indices)) => assert_eq!(indices, vec![0]),
        other => panic!("expected Expired, got {other:?}"),
    }
    assert_eq!(scheduler.stats_reply().expired, 1);
    assert_eq!(
        scheduler.stats_reply().executions,
        0,
        "the shed job never executed"
    );

    let records = client
        .run_many(&[tiny_spec(seed)], SubmitOptions::default())
        .expect("resubmission after the expiry succeeds");
    let digests = assert_byte_identical(&records, seed, "forced_deadline_expiry");

    server.shutdown_and_join();
    Outcome {
        name: "forced_deadline_expiry",
        seed,
        classification: "expired-then-resubmit-ok".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// A torn segment-WAL append (the crash model: a strict prefix of the
/// frame reaches disk, the row never commits in memory) must be
/// quarantined on reopen; the next request recomputes and the rewritten
/// row serves byte-identically from then on.
fn segment_torn_append_recovers(seed: u64) -> Outcome {
    let plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::SegmentTorn, FaultRule::always().max_fires(1)),
    );
    let dir = scratch_dir("seg-torn", seed);
    let store = RunStore::open_segmented(&dir)
        .expect("open segmented store")
        .with_fault_plan(Arc::clone(&plan));
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });

    let spec = [tiny_spec(seed)];
    let mut records = Vec::new();
    let mut client = Client::connect(&addr).expect("connect");
    // Executes; the WAL append tears mid-frame. The client still gets the
    // in-memory record, but nothing committed to the store.
    records.extend(
        client
            .run_many(&spec, SubmitOptions::default())
            .expect("torn segment appends are invisible to clients"),
    );
    let seg = client.seg_stats().expect("seg stats");
    assert_eq!(seg.live_rows, 0, "the torn row never committed");
    server.shutdown_and_join();

    // Reopen — the crash-recovery path: the torn tail is quarantined and
    // the WAL truncated back to its intact prefix.
    let reopened = RunStore::open_segmented(&dir).expect("reopen");
    let quarantined = reopened.seg_stats().expect("segmented").quarantined;
    assert_eq!(quarantined, 1, "reopen quarantined the torn tail");
    let (server, addr) = start_server(ServeConfig {
        store: Some(reopened),
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    // Miss → recompute → clean append; then a genuine cache hit.
    for _ in 0..2 {
        records.extend(
            client
                .run_many(&spec, SubmitOptions::default())
                .expect("recompute after quarantine"),
        );
    }
    let digests = assert_byte_identical(&records, seed, "segment_torn_append_recovers");
    let stats = client.server_stats().expect("server stats");
    assert_eq!(stats.executions, 1, "quarantine forced one recompute");
    assert_eq!(stats.cache_hits, 1, "the rewritten row serves");
    let seg = client.seg_stats().expect("seg stats");
    assert_eq!(seg.live_rows, 1);
    assert_eq!(seg.quarantined, 1);

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    Outcome {
        name: "segment_torn_append_recovers",
        seed,
        classification: "torn-tail-quarantined-then-recompute-ok".to_string(),
        fires: plan.signature(),
        digests,
    }
}

/// A failed index rename (crash between writing the tmp index and
/// renaming it) is advisory-only: reopen detects the stale/missing index
/// and rebuilds it from the sealed segments, so the cache still hits and
/// every record stays byte-identical.
fn index_rename_failure_rebuilds(seed: u64) -> Outcome {
    let plan = Arc::new(
        FaultPlan::new(seed).with_rule(FaultSite::IndexRename, FaultRule::always().max_fires(1)),
    );
    let dir = scratch_dir("idx-rename", seed);
    let store = RunStore::open_segmented(&dir)
        .expect("open segmented store")
        .with_fault_plan(Arc::clone(&plan));
    // Seal after every row so the append reaches the index-persist path
    // the fault is armed at.
    store.set_seal_threshold(1);
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        workers: 1,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    });

    let spec = [tiny_spec(seed)];
    let mut records = Vec::new();
    let mut client = Client::connect(&addr).expect("connect");
    records.extend(
        client
            .run_many(&spec, SubmitOptions::default())
            .expect("index persistence is advisory"),
    );
    let seg = client.seg_stats().expect("seg stats");
    assert_eq!(seg.segments, 1, "the row sealed despite the failed rename");
    assert_eq!(seg.live_rows, 1);
    server.shutdown_and_join();
    assert_eq!(plan.fires(FaultSite::IndexRename), 1);

    // Reopen: the index is rebuilt from the segments themselves — the
    // cache hits without any recompute.
    let reopened = RunStore::open_segmented(&dir).expect("reopen");
    let (server, addr) = start_server(ServeConfig {
        store: Some(reopened),
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    records.extend(
        client
            .run_many(&spec, SubmitOptions::default())
            .expect("rebuilt index serves"),
    );
    let digests = assert_byte_identical(&records, seed, "index_rename_failure_rebuilds");
    let stats = client.server_stats().expect("server stats");
    assert_eq!(stats.executions, 0, "no recompute: the index self-healed");
    assert_eq!(stats.cache_hits, 1);
    let seg = client.seg_stats().expect("seg stats");
    assert_eq!(seg.live_rows, 1);
    assert_eq!(seg.quarantined, 0, "nothing was lost, nothing quarantined");

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    Outcome {
        name: "index_rename_failure_rebuilds",
        seed,
        classification: "index-rebuilt-then-cache-hit".to_string(),
        fires: plan.signature(),
        digests,
    }
}

// ---------------------------------------------------------------------
// The matrix
// ---------------------------------------------------------------------

type Scenario = fn(u64) -> Outcome;

const SCENARIOS: [(&str, Scenario); 11] = [
    ("store_torn_write_recovers", store_torn_write_recovers),
    (
        "store_write_and_rename_failures_are_nonfatal",
        store_write_and_rename_failures_are_nonfatal,
    ),
    ("worker_panic_contained", worker_panic_contained),
    ("queue_pressure_backoff_retry", queue_pressure_backoff_retry),
    (
        "server_write_faults_surface_as_client_errors",
        server_write_faults_surface_as_client_errors,
    ),
    ("server_stalls_are_survived", server_stalls_are_survived),
    ("reactor_stalls_are_survived", reactor_stalls_are_survived),
    (
        "client_socket_faults_terminate",
        client_socket_faults_terminate,
    ),
    ("forced_deadline_expiry", forced_deadline_expiry),
    ("segment_torn_append_recovers", segment_torn_append_recovers),
    (
        "index_rename_failure_rebuilds",
        index_rename_failure_rebuilds,
    ),
];

fn parse_seed(text: &str) -> u64 {
    let text = text.trim();
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    }
    .unwrap_or_else(|_| panic!("CHAOS_SEEDS entry `{text}` is not a u64"))
}

/// Seeds under test: `CHAOS_SEEDS=0xa1,7,...` overrides the default
/// four-seed matrix.
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(list) => list.split(',').map(parse_seed).collect(),
        Err(_) => vec![0xA1, 0xB2, 0xC3, 0xD4],
    }
}

fn run_matrix(seeds: &[u64]) {
    quiet_injected_panics();
    let mut lines = Vec::new();
    for (name, scenario) in SCENARIOS {
        for &seed in seeds {
            let first = scenario(seed);
            let second = scenario(seed);
            assert_eq!(
                first.line(),
                second.line(),
                "scenario `{name}` is not deterministic for seed {seed:#x}"
            );
            lines.push(first.line());
        }
    }
    lines.sort();
    if let Ok(path) = std::env::var("CHAOS_OUT") {
        let mut text = lines.join("\n");
        text.push('\n');
        std::fs::write(&path, text).expect("write CHAOS_OUT");
    }
}

/// The seeded chaos matrix: every scenario × every seed, each run twice
/// with the rendered outcome lines required to match. With `CHAOS_OUT`
/// set, the sorted lines are written there for cross-process diffing
/// (CI runs the suite twice and diffs the two files).
#[test]
fn chaos_matrix() {
    run_matrix(&seeds());
}

/// Extended matrix for scheduled runs: a wider deterministic seed set,
/// derived (not random — the suite forbids ambient entropy) from a
/// fixed base. Run with `--ignored`.
#[test]
#[ignore = "extended matrix for scheduled chaos runs"]
fn chaos_matrix_extended() {
    let wide: Vec<u64> = (0..12u64)
        .map(|i| 0x5eed_c0de_0000_0000u64 ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    run_matrix(&wide);
}

// ---------------------------------------------------------------------
// Fault telemetry
// ---------------------------------------------------------------------

/// Fault fires stream into the telemetry JSONL as `fault` events, and
/// the resulting stream still passes the shipped schema validator.
#[test]
fn fault_fires_stream_to_telemetry_jsonl() {
    let plan = Arc::new(
        FaultPlan::new(7).with_rule(FaultSite::StoreTorn, FaultRule::always().max_fires(1)),
    );
    let path = std::env::temp_dir().join(format!(
        "atscale-chaos-telemetry-{}.jsonl",
        std::process::id()
    ));
    let sink = Arc::new(TelemetrySink::new().with_jsonl(&path).expect("jsonl"));
    {
        let sink = Arc::clone(&sink);
        plan.set_observer(Box::new(move |site, hit| sink.fault(site.name(), hit)));
    }

    let dir = scratch_dir("telemetry", 7);
    let store = RunStore::open(&dir)
        .expect("open store")
        .with_fault_plan(Arc::clone(&plan));
    let record = atscale::execute_run(&tiny_spec(7), &MachineConfig::haswell());
    store
        .save("deadbeef", &record)
        .expect("torn save still lands");
    assert!(store.load("deadbeef").is_none(), "torn record quarantined");

    assert_eq!(sink.fault_count(), 1);
    sink.finish();
    let text = std::fs::read_to_string(&path).expect("stream file");
    let summary = validate_stream(&text)
        .unwrap_or_else(|(line, e)| panic!("stream invalid at line {line}: {e}"));
    assert_eq!(summary.by_type.get("fault"), Some(&1));
    assert!(text.contains("\"site\":\"StoreTorn\""), "{text}");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
}
