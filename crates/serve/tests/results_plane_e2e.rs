//! End-to-end results plane: the v5 `Query`/`Compact`/`StoreSegStats`
//! verbs over a real socket against a segment-backed store.
//!
//! The load-bearing assertion is the PR's acceptance criterion: `query`
//! aggregates must equal aggregates recomputed from the raw `RunRecord`s
//! — exactly for count and the β/c fit (both are integer-sum state, so
//! insertion order cannot perturb them), and within the documented sketch
//! error for quantiles — before and after an over-the-wire `Compact`.

use atscale::results::{AggState, QueryFilter, QUANTILE_RELATIVE_ERROR};
use atscale::{hot_row, RunSpec, RunStore, SweepConfig};
use atscale_serve::{Client, ClientError, ServeConfig, Server, SubmitOptions};
use atscale_workloads::WorkloadId;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atscale-results-plane-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(config: ServeConfig) -> (Server, String) {
    let server = Server::start(config, Some("127.0.0.1:0"), None).expect("bind");
    let addr = server.tcp_addr().expect("tcp endpoint").to_string();
    (server, addr)
}

/// Sweep specs for `workloads`: every test-profile footprint at 4 KB.
fn sweep_specs(workloads: &[&str]) -> Vec<RunSpec> {
    let sweep = SweepConfig::test();
    let mut specs = Vec::new();
    for name in workloads {
        let workload = WorkloadId::parse(name).expect("known workload");
        for fp in sweep.footprints() {
            specs.push(sweep.spec(workload, fp));
        }
    }
    specs
}

#[test]
fn query_matches_from_raw_recomputation_before_and_after_compact() {
    let dir = temp_dir("query");
    let store = RunStore::open_segmented(&dir).expect("open segmented");
    // A tiny seal threshold so the sweep (2 workloads x the test-profile
    // footprints) spans a sealed segment plus a WAL tail — the query must
    // merge across both.
    store.set_seal_threshold(4);
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        workers: 4,
        ..ServeConfig::default()
    });

    let specs = sweep_specs(&["cc-urand", "bfs-urand"]);
    let mut client = Client::connect(&addr).expect("connect");
    client.hello().expect("handshake");
    let records = client
        .run_many(&specs, SubmitOptions::default())
        .expect("sweep resolves");

    // From-raw recomputation: fold every returned record's hot columns
    // into a fresh aggregate, exactly as the store does on commit.
    let mut recomputed = AggState::new();
    for record in &records {
        recomputed.add(&hot_row(record));
    }

    let all = QueryFilter::default();
    let served = client.query(&all).expect("query");
    assert_eq!(served.count, specs.len() as u64);
    assert_eq!(
        served,
        recomputed.query(&all),
        "online aggregates must equal the from-raw recomputation"
    );
    assert!(
        served.beta.is_some(),
        "multiple footprints fit a fig1 slope"
    );

    // Quantiles stay within the sketch's documented relative error of the
    // true rank statistics over the raw WCPI values.
    let mut wcpis: Vec<f64> = records.iter().map(|r| r.result.counters.wcpi()).collect();
    wcpis.sort_by(f64::total_cmp);
    for (q, got) in [(0.5, served.p50_wcpi), (0.99, served.p99_wcpi)] {
        let rank = ((q * wcpis.len() as f64).ceil() as usize).clamp(1, wcpis.len()) - 1;
        let truth = wcpis[rank];
        assert!(
            (got - truth).abs() <= truth.abs() * QUANTILE_RELATIVE_ERROR + 1e-12,
            "p{q}: sketch {got} vs truth {truth} exceeds the documented bound"
        );
    }

    // Filtered queries answer from the matching groups alone.
    let filtered = QueryFilter {
        workload: Some("cc-urand".to_string()),
        ..QueryFilter::default()
    };
    assert_eq!(
        client.query(&filtered).expect("filtered query"),
        recomputed.query(&filtered)
    );

    // Occupancy over the wire: everything live, several sealed segments.
    let stats = client.seg_stats().expect("seg stats");
    assert_eq!(stats.live_rows, specs.len() as u64);
    assert!(
        stats.segments >= 1,
        "threshold 4 sealed a segment: {stats:?}"
    );
    assert!(
        stats.wal_rows > 0,
        "a WAL tail is part of the query: {stats:?}"
    );
    assert!(stats.disk_bytes > 0);

    // Resubmitting the identical sweep is answered from the cache — the
    // dedup keys hit, no rows are added, aggregates are unchanged.
    let again = client
        .run_many(&specs, SubmitOptions::default())
        .expect("cached sweep");
    assert_eq!(again.len(), specs.len());
    assert_eq!(
        client.query(&all).expect("query after cache hits"),
        served,
        "cache hits must not grow the aggregate"
    );

    // Compaction over the wire is aggregate-neutral.
    let compacted = client.compact().expect("compact");
    assert_eq!(compacted.live_rows, specs.len() as u64);
    assert_eq!(compacted.segments_after, 1);
    assert_eq!(
        client.query(&all).expect("query after compact"),
        served,
        "compaction must not change any aggregate answer"
    );
    let after = client.seg_stats().expect("seg stats after compact");
    assert_eq!(after.dead_rows, 0);
    assert_eq!(after.live_rows, specs.len() as u64);

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The results-plane verbs need a segment backend: a legacy-JSON store
/// answers every one of them with an explicit error, and the connection
/// stays usable.
#[test]
fn results_plane_verbs_error_explicitly_on_a_legacy_store() {
    let dir = temp_dir("legacy");
    let store = RunStore::open(&dir).expect("open legacy");
    let (server, addr) = start_server(ServeConfig {
        store: Some(store),
        ..ServeConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    client.hello().expect("handshake");
    match client.query(&QueryFilter::default()) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("segment"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    match client.compact() {
        Err(ClientError::Server(msg)) => assert!(msg.contains("segment"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    match client.seg_stats() {
        Err(ClientError::Server(msg)) => assert!(msg.contains("segment"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    // The connection survives the rejections.
    assert!(client.server_stats().is_ok());

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
