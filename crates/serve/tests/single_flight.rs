//! Single-flight correctness: N concurrent identical submissions cost one
//! execution, every subscriber gets the same bytes, and concurrent cache
//! write-backs leave no temp-file droppings.

use atscale::{RunSpec, RunStore};
use atscale_serve::protocol::{Reply, Submit};
use atscale_serve::{ReplySink, Scheduler, ServeConfig};
use atscale_vm::PageSize;
use atscale_workloads::WorkloadId;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

fn spec(footprint_mb: u64, seed: u64) -> RunSpec {
    RunSpec {
        workload: WorkloadId::parse("cc-urand").unwrap(),
        nominal_footprint: footprint_mb << 20,
        page_size: PageSize::Size4K,
        seed,
        warmup_instr: 1_000,
        budget_instr: 20_000,
        arch: atscale::ArchKind::Baseline,
    }
}

/// Collects a connection's frames and signals when a `BatchDone` lands.
#[derive(Default)]
struct Collector {
    replies: Mutex<Vec<Reply>>,
    done: Condvar,
}

impl Collector {
    fn wait_batch_done(&self) -> Vec<Reply> {
        let mut replies = self.replies.lock().unwrap();
        while !replies.iter().any(|r| {
            matches!(
                r,
                Reply::BatchDone(_) | Reply::Overloaded(_) | Reply::Error(_)
            )
        }) {
            replies = self.done.wait(replies).unwrap();
        }
        replies.clone()
    }

    fn records(replies: &[Reply]) -> Vec<Vec<u8>> {
        replies
            .iter()
            .filter_map(|r| match r {
                Reply::Record(done) => Some(serde_json::to_vec(&done.record).unwrap()),
                _ => None,
            })
            .collect()
    }
}

impl ReplySink for Collector {
    fn send(&self, reply: &Reply) {
        self.replies.lock().unwrap().push(reply.clone());
        self.done.notify_all();
    }
}

/// Spawns worker threads for `scheduler` and returns a join guard.
fn spawn_workers(scheduler: &Arc<Scheduler>) -> Vec<std::thread::JoinHandle<()>> {
    (0..scheduler.workers())
        .map(|_| {
            let scheduler = Arc::clone(scheduler);
            std::thread::spawn(move || scheduler.worker_loop())
        })
        .collect()
}

fn stop(scheduler: &Arc<Scheduler>, workers: Vec<std::thread::JoinHandle<()>>) {
    scheduler.drain();
    scheduler.wait_drained();
    for w in workers {
        w.join().unwrap();
    }
}

/// The acceptance-criteria proof: cache disabled, 64 concurrent identical
/// requests → exactly one harness execution and 64 byte-identical records.
#[test]
fn sixty_four_identical_requests_execute_once() {
    let scheduler = Arc::new(Scheduler::new(ServeConfig {
        store: None,
        workers: 4,
        start_paused: true,
        ..ServeConfig::default()
    }));
    let workers = spawn_workers(&scheduler);

    let sinks: Vec<Arc<Collector>> = (0..64).map(|_| Arc::new(Collector::default())).collect();
    std::thread::scope(|scope| {
        for (i, sink) in sinks.iter().enumerate() {
            let scheduler = &scheduler;
            scope.spawn(move || {
                scheduler.submit(
                    &Submit {
                        id: i as u64,
                        specs: vec![spec(16, 7)],
                        deadline_ms: None,
                        no_cache: false,
                        sample_interval: 0,
                    },
                    Arc::clone(sink) as Arc<dyn ReplySink>,
                );
            });
        }
    });
    // All 64 submissions are admitted and coalesced before any worker runs.
    scheduler.resume();

    let mut bytes: Vec<Vec<u8>> = Vec::new();
    for sink in &sinks {
        let replies = sink.wait_batch_done();
        let records = Collector::records(&replies);
        assert_eq!(records.len(), 1, "one record per subscriber");
        bytes.extend(records);
    }
    assert_eq!(
        scheduler.stats().executions(),
        1,
        "single-flight executed once"
    );
    assert!(
        bytes.windows(2).all(|w| w[0] == w[1]),
        "all 64 subscribers received byte-identical records"
    );

    stop(&scheduler, workers);
}

/// The within-batch variant: one submission repeating a spec dedups onto a
/// single job and still answers every index.
#[test]
fn duplicate_specs_within_one_batch_coalesce() {
    let scheduler = Arc::new(Scheduler::new(ServeConfig {
        store: None,
        workers: 2,
        ..ServeConfig::default()
    }));
    let workers = spawn_workers(&scheduler);

    let sink = Arc::new(Collector::default());
    scheduler.submit(
        &Submit {
            id: 1,
            specs: vec![spec(16, 7), spec(16, 7), spec(16, 7)],
            deadline_ms: None,
            no_cache: false,
            sample_interval: 0,
        },
        Arc::clone(&sink) as Arc<dyn ReplySink>,
    );
    let replies = sink.wait_batch_done();
    let records = Collector::records(&replies);
    assert_eq!(records.len(), 3, "every index resolved");
    assert_eq!(scheduler.stats().executions(), 1);
    assert!(records.windows(2).all(|w| w[0] == w[1]));

    stop(&scheduler, workers);
}

/// The ISSUE's stress test: 8 client threads submitting overlapping spec
/// sets against a shared store. Every unique spec executes exactly once
/// (single-flight while in flight, cache hits afterwards), every client
/// sees byte-identical records, and no `.tmp` droppings survive.
#[test]
fn stress_overlapping_batches_share_executions_and_leave_no_droppings() {
    let dir = std::env::temp_dir().join(format!("atscale-serve-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = RunStore::open(&dir).unwrap();
    let scheduler = Arc::new(Scheduler::new(ServeConfig {
        store: Some(store.clone()),
        workers: 4,
        ..ServeConfig::default()
    }));
    let workers = spawn_workers(&scheduler);

    // A pool of 6 unique specs; each of the 8 clients submits a rotated
    // overlapping window of 4, twice.
    let pool: Vec<RunSpec> = (0..6).map(|i| spec(8 + 4 * i, 100 + i)).collect();
    let sinks: Vec<Arc<Collector>> = (0..16).map(|_| Arc::new(Collector::default())).collect();
    std::thread::scope(|scope| {
        for client in 0..8 {
            for round in 0..2 {
                let sink = &sinks[client * 2 + round];
                let pool = &pool;
                let scheduler = &scheduler;
                scope.spawn(move || {
                    let specs: Vec<RunSpec> =
                        (0..4).map(|k| pool[(client + k) % pool.len()]).collect();
                    scheduler.submit(
                        &Submit {
                            id: (client * 2 + round) as u64,
                            specs,
                            deadline_ms: None,
                            no_cache: false,
                            sample_interval: 0,
                        },
                        Arc::clone(sink) as Arc<dyn ReplySink>,
                    );
                });
            }
        }
    });

    // Group every delivered record by its spec's cache key and require one
    // byte pattern per key across all clients.
    let mut by_key: HashMap<String, Vec<Vec<u8>>> = HashMap::new();
    for sink in &sinks {
        let replies = sink.wait_batch_done();
        let mut records = 0;
        for reply in &replies {
            if let Reply::Record(done) = reply {
                records += 1;
                by_key
                    .entry(done.record.spec.label())
                    .or_default()
                    .push(serde_json::to_vec(&done.record).unwrap());
            }
        }
        assert_eq!(records, 4, "every client resolved its full batch");
    }
    assert_eq!(by_key.len(), pool.len(), "all unique specs served");
    for (key, versions) in &by_key {
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "divergent record bytes for {key}"
        );
    }
    assert_eq!(
        scheduler.stats().executions(),
        pool.len() as u64,
        "each unique spec executed exactly once"
    );
    let stats = store.stats();
    assert_eq!(stats.entries, pool.len() as u64);
    assert_eq!(stats.tmp_files, 0, "no temp-file droppings");

    stop(&scheduler, workers);
    let _ = std::fs::remove_dir_all(&dir);
}
