//! Every protocol frame variant must survive encode → decode unchanged.
//!
//! The `protocol-roundtrip` audit rule statically requires every
//! `Request::*` and `Reply::*` variant to appear in this file: adding a
//! frame without a round-trip test fails `atscale-audit`.

use atscale::{RunSpec, StoreStats};
use atscale_mmu::MachineConfig;
use atscale_serve::protocol::{
    decode, encode, Accepted, BatchDone, CompactStats, DeadlineExceeded, ErrorReply, GroupSummary,
    Hello, JobFailed, Overloaded, ProgressEvent, QueryFilter, QueryResult, RecordDone, Reply,
    Request, SampleEvent, SegStats, ServerStatsReply, Submit, Welcome, PROTOCOL_VERSION,
};
use atscale_telemetry::{Progress, Sample};
use atscale_vm::PageSize;
use atscale_workloads::WorkloadId;

fn spec() -> RunSpec {
    RunSpec {
        workload: WorkloadId::parse("cc-urand").unwrap(),
        nominal_footprint: 16 << 20,
        page_size: PageSize::Size4K,
        seed: 7,
        warmup_instr: 1_000,
        budget_instr: 20_000,
        arch: atscale::ArchKind::Baseline,
    }
}

/// Round-trips a frame whose payload implements `PartialEq`.
fn roundtrip_eq<T>(frame: &T)
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let line = encode(frame);
    assert!(!line.contains('\n'), "frames are single lines: {line}");
    let back: T = decode(&line).expect("decodes");
    assert_eq!(&back, frame, "{line}");
}

/// Round-trips a frame without `PartialEq` (carries a `RunRecord`) by
/// comparing re-encoded bytes.
fn roundtrip_bytes<T>(frame: &T)
where
    T: serde::Serialize + serde::Deserialize,
{
    let line = encode(frame);
    let back: T = decode(&line).expect("decodes");
    assert_eq!(encode(&back), line);
}

#[test]
fn request_hello_roundtrips() {
    roundtrip_eq(&Request::Hello(Hello {
        protocol: PROTOCOL_VERSION,
    }));
}

#[test]
fn request_submit_roundtrips() {
    // Mixed-architecture batch: the off-baseline spec carries its `arch`
    // tag on the wire (v7); the baseline spec omits it (byte-stable v6
    // shape).
    roundtrip_eq(&Request::Submit(Submit {
        id: 3,
        specs: vec![spec(), spec().with_arch(atscale::ArchKind::Victima)],
        deadline_ms: Some(1500),
        no_cache: true,
        sample_interval: 100_000,
    }));
    // `Option` must round-trip in its `None` shape too.
    roundtrip_eq(&Request::Submit(Submit {
        id: 4,
        specs: Vec::new(),
        deadline_ms: None,
        no_cache: false,
        sample_interval: 0,
    }));
}

#[test]
fn request_cache_stats_roundtrips() {
    roundtrip_eq(&Request::CacheStats);
}

#[test]
fn request_server_stats_roundtrips() {
    roundtrip_eq(&Request::ServerStats);
}

#[test]
fn request_shutdown_roundtrips() {
    roundtrip_eq(&Request::Shutdown);
}

#[test]
fn request_query_roundtrips() {
    roundtrip_eq(&Request::Query(QueryFilter {
        workload: Some("cc-urand".to_string()),
        source: Some("sim".to_string()),
        arch: Some("victima".to_string()),
        min_footprint_mb: Some(16),
        max_footprint_mb: Some(1024),
    }));
    // The all-`None` filter (match everything) must round-trip too.
    roundtrip_eq(&Request::Query(QueryFilter::default()));
}

#[test]
fn request_compact_roundtrips() {
    roundtrip_eq(&Request::Compact);
}

#[test]
fn request_store_seg_stats_roundtrips() {
    roundtrip_eq(&Request::StoreSegStats);
}

#[test]
fn reply_welcome_roundtrips() {
    // Sharded shape: the v6 topology fields populated.
    roundtrip_bytes(&Reply::Welcome(Welcome {
        protocol: PROTOCOL_VERSION,
        server: "atscale-serve/test".to_string(),
        workers: 4,
        queue_capacity: 1024,
        shard: 2,
        shards: 4,
        topology: vec![
            "127.0.0.1:7001".to_string(),
            "127.0.0.1:7002".to_string(),
            "127.0.0.1:7003".to_string(),
            "127.0.0.1:7004".to_string(),
        ],
        architectures: atscale::ArchKind::ALL
            .iter()
            .map(ToString::to_string)
            .collect(),
    }));
    // Standalone shape: shard 0 of 1, empty address list.
    roundtrip_bytes(&Reply::Welcome(Welcome {
        protocol: PROTOCOL_VERSION,
        server: "atscale-serve/test".to_string(),
        workers: 4,
        queue_capacity: 1024,
        shard: 0,
        shards: 1,
        topology: Vec::new(),
        architectures: vec!["baseline".to_string()],
    }));
}

#[test]
fn reply_accepted_roundtrips() {
    roundtrip_bytes(&Reply::Accepted(Accepted {
        id: 9,
        total: 12,
        enqueued: 5,
        deduped: 7,
    }));
}

#[test]
fn reply_overloaded_roundtrips() {
    roundtrip_bytes(&Reply::Overloaded(Overloaded {
        id: 9,
        queued: 256,
        capacity: 256,
    }));
}

#[test]
fn reply_record_roundtrips() {
    let record = atscale::execute_run(&spec(), &MachineConfig::haswell());
    let encoded = encode(&Reply::Record(RecordDone {
        id: 2,
        index: 1,
        cached: true,
        deduped: false,
        source: "sim".to_string(),
        arch: record.spec.arch.to_string(),
        record,
    }));
    assert!(
        encoded.contains("\"source\":\"sim\""),
        "v4 record frames carry the provenance tag on the wire"
    );
    assert!(
        encoded.contains("\"arch\":\"baseline\""),
        "v7 record frames carry the architecture tag on the wire"
    );
    let decoded: Reply = decode(&encoded).unwrap();
    assert_eq!(encode(&decoded), encoded);
}

#[test]
fn reply_deadline_roundtrips() {
    roundtrip_bytes(&Reply::Deadline(DeadlineExceeded {
        id: 2,
        index: 4,
        label: "cc-urand 16MB 4K".to_string(),
    }));
}

#[test]
fn reply_failed_roundtrips() {
    roundtrip_bytes(&Reply::Failed(JobFailed {
        id: 2,
        index: 3,
        label: "cc-urand 16MB 4K".to_string(),
        message: "injected fault: WorkerPanic mid-job".to_string(),
    }));
}

#[test]
fn reply_batch_done_roundtrips() {
    roundtrip_bytes(&Reply::BatchDone(BatchDone {
        id: 2,
        delivered: 10,
        expired: 2,
        failed: 1,
    }));
}

#[test]
fn reply_progress_roundtrips() {
    roundtrip_bytes(&Reply::Progress(ProgressEvent {
        id: 6,
        progress: Progress {
            completed: 3,
            total: 9,
            label: "bfs-urand 64MB 2M".to_string(),
            wall_ms: 41,
            cached: false,
        },
    }));
}

#[test]
fn reply_sample_roundtrips() {
    roundtrip_bytes(&Reply::Sample(SampleEvent {
        id: 6,
        run: "cc-urand 16MB 4K".to_string(),
        source: "sim".to_string(),
        sample: Sample {
            instr: 50_000,
            cycles: 220_000,
            counters: vec![("inst_retired.any".to_string(), 50_000)],
            rates: vec![("wcpi".to_string(), 0.125)],
        },
    }));
}

#[test]
fn reply_cache_stats_roundtrips() {
    roundtrip_bytes(&Reply::CacheStats(StoreStats {
        entries: 11,
        bytes: 48_123,
        tmp_files: 0,
        corrupt_files: 1,
    }));
}

#[test]
fn reply_server_stats_roundtrips() {
    roundtrip_bytes(&Reply::ServerStats(ServerStatsReply {
        executions: 100,
        cache_hits: 40,
        dedup_hits: 63,
        overloaded: 2,
        expired: 1,
        failed: 1,
        queued: 5,
        running: 4,
        completed: 140,
        draining: true,
    }));
}

#[test]
fn reply_query_result_roundtrips() {
    roundtrip_bytes(&Reply::QueryResult(QueryResult {
        count: 27,
        mean_wcpi: 0.21,
        p50_wcpi: 0.19,
        p99_wcpi: 0.74,
        beta: Some(0.31),
        intercept: Some(-1.2),
        groups: vec![GroupSummary {
            workload: "cc-urand".to_string(),
            footprint_mb: 64,
            source: "sim".to_string(),
            arch: "victima".to_string(),
            count: 9,
            mean_wcpi: 0.2,
            p50_wcpi: 0.18,
            p99_wcpi: 0.6,
        }],
    }));
    // `None` fit (fewer than two distinct footprints) must round-trip.
    roundtrip_bytes(&Reply::QueryResult(QueryResult {
        count: 0,
        mean_wcpi: 0.0,
        p50_wcpi: 0.0,
        p99_wcpi: 0.0,
        beta: None,
        intercept: None,
        groups: Vec::new(),
    }));
}

#[test]
fn reply_compacted_roundtrips() {
    roundtrip_bytes(&Reply::Compacted(CompactStats {
        segments_before: 4,
        segments_after: 1,
        live_rows: 351,
        dead_rows_dropped: 12,
        bytes_before: 90_000,
        bytes_after: 64_000,
    }));
}

#[test]
fn reply_store_seg_stats_roundtrips() {
    roundtrip_bytes(&Reply::StoreSegStats(SegStats {
        segments: 3,
        segment_rows: 300,
        wal_rows: 51,
        live_rows: 339,
        dead_rows: 12,
        disk_bytes: 90_000,
        quarantined: 1,
    }));
}

#[test]
fn reply_error_roundtrips() {
    roundtrip_bytes(&Reply::Error(ErrorReply {
        id: 0,
        message: "bad frame".to_string(),
    }));
}

#[test]
fn reply_shutting_down_roundtrips() {
    roundtrip_bytes(&Reply::ShuttingDown);
}
