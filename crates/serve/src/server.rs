//! The daemon: socket listeners, per-connection threads, and lifecycle.
//!
//! Everything is std threads — no async runtime, consistent with the
//! vendored offline build. Each accepted connection gets one reader
//! thread; writes are serialized per connection through a mutexed
//! line writer shared by the reader (direct replies) and the scheduler's
//! workers (streamed records/samples/progress). Listeners poll in
//! non-blocking mode so shutdown needs no signal handling: a `Shutdown`
//! frame (or [`ServerHandle::shutdown`]) flips the stop flag, the
//! scheduler drains, and [`Server::join`] returns.

use crate::protocol::{self, ErrorReply, Reply, Request, Welcome, PROTOCOL_VERSION};
use crate::scheduler::{ReplySink, Scheduler, ServeConfig};
use atscale::StoreStats;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often idle listeners poll the stop flag.
pub(crate) const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-frame socket write timeout. Workers deliver replies while holding
/// the connection's writer mutex, so a stalled client (full TCP buffer
/// that never errors) would otherwise block a scheduler worker — and,
/// transitively, drain/shutdown — forever. A write that cannot complete
/// within this bound marks the connection dead instead.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// One connection's write half: serializes frames from the reader thread
/// and every scheduler worker onto the socket.
struct ConnWriter {
    stream: Mutex<Box<dyn Write + Send>>,
    /// Set on the first write error — including a [`WRITE_TIMEOUT`] expiry
    /// on a stalled socket; later frames are dropped silently (the client
    /// is gone — its subscriptions just evaporate).
    dead: AtomicBool,
    /// Fault plan driving the `ServerWrite`/`ServerStall` sites (chaos
    /// machinery; inherited from the scheduler's config).
    #[cfg(feature = "faults")]
    faults: Option<Arc<atscale_faults::FaultPlan>>,
}

impl ConnWriter {
    fn new(stream: Box<dyn Write + Send>, handle: &ServerHandle) -> ConnWriter {
        #[cfg(not(feature = "faults"))]
        let _ = handle;
        ConnWriter {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
            #[cfg(feature = "faults")]
            faults: handle.scheduler.fault_plan().cloned(),
        }
    }
}

impl ReplySink for ConnWriter {
    fn send(&self, reply: &Reply) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        #[cfg(feature = "faults")]
        if let Some(plan) = &self.faults {
            use atscale_faults::FaultSite;
            if let Some(rule) = plan.check(FaultSite::ServerStall) {
                // A stalled peer: the frame arrives, but late — clients
                // must survive via read timeouts, not hang.
                std::thread::sleep(Duration::from_millis(rule.stall_ms));
            }
            if plan.check(FaultSite::ServerWrite).is_some() {
                // A socket write error (EPIPE analogue): the connection
                // is dead from the server's point of view; subsequent
                // frames evaporate exactly as on a real broken pipe.
                self.dead.store(true, Ordering::Relaxed);
                return;
            }
        }
        let mut line = protocol::encode(reply);
        line.push('\n');
        // Writing under the lock is the design: the mutex is what
        // serializes whole frames from the reader thread and every worker
        // onto the socket, and WRITE_TIMEOUT bounds how long a stalled
        // peer can hold it.
        let mut stream = self.stream.lock();
        // analyze:allow(lock-io): per-connection frame serialization requires writing under the writer mutex; WRITE_TIMEOUT bounds the hold
        let sent = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.flush());
        if sent.is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

/// Shared lifecycle switch between the server, its listeners, and clients'
/// `Shutdown` frames.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain the queue.
    pub fn shutdown(&self) {
        self.scheduler.drain();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The scheduler, for stats and the pause/resume maintenance hooks.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }
}

/// A bound, running daemon.
#[derive(Debug)]
pub struct Server {
    handle: ServerHandle,
    tcp_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
    /// Unix socket path to unlink on join.
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds and starts the daemon: spawns the scheduler's workers plus
    /// one listener thread per endpoint. At least one endpoint must be
    /// given.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if an endpoint cannot be bound.
    pub fn start(
        config: ServeConfig,
        tcp: Option<&str>,
        unix: Option<&Path>,
    ) -> std::io::Result<Server> {
        assert!(
            tcp.is_some() || unix.is_some(),
            "a server needs at least one endpoint"
        );
        let scheduler = Arc::new(Scheduler::new(config));
        let handle = ServerHandle {
            stop: Arc::new(AtomicBool::new(false)),
            scheduler: Arc::clone(&scheduler),
        };
        let mut threads = Vec::new();
        for _ in 0..scheduler.workers() {
            let scheduler = Arc::clone(&scheduler);
            threads.push(std::thread::spawn(move || scheduler.worker_loop()));
        }
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let handle = handle.clone();
            threads.push(std::thread::spawn(move || accept_tcp(&listener, &handle)));
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            // A stale socket file from a crashed daemon would make bind
            // fail — but only unlink it after probing that nothing is
            // listening, so starting a second daemon on a live endpoint
            // fails loudly instead of silently stealing it.
            if path.exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("a live daemon already serves {}", path.display()),
                    ));
                }
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.to_path_buf());
            let handle = handle.clone();
            threads.push(std::thread::spawn(move || accept_unix(&listener, &handle)));
        }
        #[cfg(not(unix))]
        if let Some(path) = unix {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!(
                    "unix sockets unavailable on this platform: {}",
                    path.display()
                ),
            ));
        }
        Ok(Server {
            handle,
            tcp_addr,
            threads,
            unix_path,
        })
    }

    /// Binds and starts the daemon on the **epoll tier**: the scheduler's
    /// workers plus thread-per-core reactor shards behind one acceptor
    /// (see [`crate::reactor`]). TCP only — the epoll tier exists for
    /// network-scale fan-in; Unix-socket deployments keep the blocking
    /// tier.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the endpoint cannot be bound, or `ENOSYS`
    /// on hosts without epoll (non-Linux), where [`Server::start`] remains
    /// the portable path.
    pub fn start_epoll(config: ServeConfig, tcp: &str) -> std::io::Result<Server> {
        // analyze:allow(determinism): reactor-shard count is I/O-plane topology, never record input
        // — it only partitions connections across reactor threads; records
        // are produced by the scheduler's workers and are identical for any
        // shard count (the sharded e2e suite pins byte-identity at 1 and 2
        // reactors).
        let shards = std::thread::available_parallelism().map_or(2, std::num::NonZero::get);
        Self::start_epoll_sharded(config, tcp, shards)
    }

    /// [`Server::start_epoll`] with an explicit reactor-shard count
    /// (tests and the loadgen topology spawner pin it).
    ///
    /// # Errors
    ///
    /// As [`Server::start_epoll`].
    pub fn start_epoll_sharded(
        config: ServeConfig,
        tcp: &str,
        reactor_shards: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(tcp)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = Some(listener.local_addr()?);
        let scheduler = Arc::new(Scheduler::new(config));
        let handle = ServerHandle {
            stop: Arc::new(AtomicBool::new(false)),
            scheduler: Arc::clone(&scheduler),
        };
        let mut threads = Vec::new();
        // Reactor shards first: if epoll is unavailable (ENOSYS), fail
        // before any worker thread exists.
        threads.extend(crate::reactor::start(
            listener,
            handle.clone(),
            reactor_shards,
        )?);
        for _ in 0..scheduler.workers() {
            let scheduler = Arc::clone(&scheduler);
            threads.push(std::thread::spawn(move || scheduler.worker_loop()));
        }
        Ok(Server {
            handle,
            tcp_addr,
            threads,
            unix_path: None,
        })
    }

    /// The bound TCP address, if a TCP endpoint was requested (useful with
    /// port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// A lifecycle handle (cloneable across threads).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Blocks until shutdown is requested, the queue is drained, and all
    /// listener/worker threads have exited. Connection threads are not
    /// joined — they die with their sockets.
    pub fn join(self) {
        while !self.handle.stopping() {
            std::thread::sleep(ACCEPT_POLL);
        }
        self.handle.scheduler.wait_drained();
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// [`ServerHandle::shutdown`] + [`Server::join`] in one call.
    pub fn shutdown_and_join(self) {
        self.handle.shutdown();
        self.join();
    }
}

fn accept_tcp(listener: &TcpListener, handle: &ServerHandle) {
    loop {
        if handle.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => spawn_tcp_conn(stream, handle.clone()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_tcp_conn(stream: TcpStream, handle: ServerHandle) {
    let _ = stream.set_nonblocking(false);
    // Reply streams are many small frames; never batch them behind Nagle.
    let _ = stream.set_nodelay(true);
    // A stalled reader must not block workers (see WRITE_TIMEOUT).
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    std::thread::spawn(move || {
        serve_connection(
            BufReader::new(Box::new(read_half) as Box<dyn std::io::Read + Send>),
            Arc::new(ConnWriter::new(Box::new(stream), &handle)),
            &handle,
        );
    });
}

#[cfg(unix)]
fn accept_unix(listener: &UnixListener, handle: &ServerHandle) {
    loop {
        if handle.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => spawn_unix_conn(stream, handle.clone()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

#[cfg(unix)]
fn spawn_unix_conn(stream: UnixStream, handle: ServerHandle) {
    let _ = stream.set_nonblocking(false);
    // A stalled reader must not block workers (see WRITE_TIMEOUT).
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    std::thread::spawn(move || {
        serve_connection(
            BufReader::new(Box::new(read_half) as Box<dyn std::io::Read + Send>),
            Arc::new(ConnWriter::new(Box::new(stream), &handle)),
            &handle,
        );
    });
}

/// One connection's request loop: read frames until EOF or shutdown.
fn serve_connection(
    reader: BufReader<Box<dyn std::io::Read + Send>>,
    writer: Arc<ConnWriter>,
    handle: &ServerHandle,
) {
    for line in reader.lines() {
        let Ok(line) = line else {
            return; // connection gone
        };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::decode::<Request>(&line) {
            Ok(request) => {
                let sink = Arc::clone(&writer) as Arc<dyn ReplySink>;
                if handle_request(&request, &sink, handle) {
                    return;
                }
            }
            Err(message) => writer.send(&Reply::Error(ErrorReply { id: 0, message })),
        }
        if writer.dead.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// The v5 results-plane verbs need a segment-backed store; legacy-JSON or
/// store-less servers reject them with this message.
const NOT_SEGMENTED: &str =
    "results plane unavailable: server has no segment-backed store (run with --store on a \
     segmented results dir, or migrate it with store_compact)";

/// Dispatches one request; returns `true` when the connection should end
/// (shutdown acknowledged). Shared by both I/O tiers: the blocking tier
/// calls it from per-connection reader threads, the epoll tier from
/// reactor shards — the sink abstracts the write path.
pub(crate) fn handle_request(
    request: &Request,
    writer: &Arc<dyn ReplySink>,
    handle: &ServerHandle,
) -> bool {
    match request {
        Request::Hello(hello) => {
            if hello.protocol == PROTOCOL_VERSION {
                writer.send(&Reply::Welcome(Welcome {
                    protocol: PROTOCOL_VERSION,
                    server: format!("atscale-serve/{}", env!("CARGO_PKG_VERSION")),
                    workers: handle.scheduler.workers() as u64,
                    queue_capacity: handle.scheduler.queue_capacity() as u64,
                    shard: handle.scheduler.shard(),
                    shards: handle.scheduler.shards(),
                    topology: handle.scheduler.topology().to_vec(),
                    architectures: atscale::ArchKind::ALL
                        .iter()
                        .map(ToString::to_string)
                        .collect(),
                }));
            } else {
                writer.send(&Reply::Error(ErrorReply {
                    id: 0,
                    message: format!(
                        "protocol mismatch: client speaks {}, server speaks {PROTOCOL_VERSION}",
                        hello.protocol
                    ),
                }));
            }
            false
        }
        Request::Submit(submit) => {
            if submit.specs.is_empty() {
                writer.send(&Reply::Error(ErrorReply {
                    id: submit.id,
                    message: "empty batch".to_string(),
                }));
            } else {
                handle.scheduler.submit(submit, Arc::clone(writer));
            }
            false
        }
        Request::CacheStats => {
            let stats = handle
                .scheduler
                .store()
                .map_or_else(StoreStats::default, atscale::RunStore::stats);
            writer.send(&Reply::CacheStats(stats));
            false
        }
        Request::ServerStats => {
            writer.send(&Reply::ServerStats(handle.scheduler.stats_reply()));
            false
        }
        Request::Query(filter) => {
            match handle.scheduler.store().and_then(|s| s.query(filter)) {
                Some(result) => writer.send(&Reply::QueryResult(result)),
                None => writer.send(&Reply::Error(ErrorReply {
                    id: 0,
                    message: NOT_SEGMENTED.to_string(),
                })),
            }
            false
        }
        Request::Compact => {
            match handle.scheduler.store().map(atscale::RunStore::compact) {
                Some(Ok(stats)) => writer.send(&Reply::Compacted(stats)),
                Some(Err(e)) => writer.send(&Reply::Error(ErrorReply {
                    id: 0,
                    message: format!("compaction failed: {e}"),
                })),
                None => writer.send(&Reply::Error(ErrorReply {
                    id: 0,
                    message: NOT_SEGMENTED.to_string(),
                })),
            }
            false
        }
        Request::StoreSegStats => {
            match handle
                .scheduler
                .store()
                .and_then(atscale::RunStore::seg_stats)
            {
                Some(stats) => writer.send(&Reply::StoreSegStats(stats)),
                None => writer.send(&Reply::Error(ErrorReply {
                    id: 0,
                    message: NOT_SEGMENTED.to_string(),
                })),
            }
            false
        }
        Request::Shutdown => {
            writer.send(&Reply::ShuttingDown);
            handle.shutdown();
            true
        }
    }
}
