//! Raw `epoll(7)`/`eventfd(2)` bindings — the crate's single FFI boundary.
//!
//! The build environment has no `libc` crate, so (exactly like
//! `atscale-native`'s `perf_event_open` shim, whose idiom this module
//! mirrors) the syscalls are declared directly as the C library's variadic
//! `syscall(2)` entry point and the `epoll_event` struct is laid out by
//! hand. Every fd the kernel hands back is immediately wrapped in a
//! [`File`] so closing is RAII, and the eventfd's read/write halves go
//! through safe `std::io`.
//!
//! Everything `unsafe` in `atscale-serve` lives in this module; the crate
//! root holds `#![deny(unsafe_code)]` and only this module carries the
//! narrow `#[allow]` (see `lib.rs` and audit rule 3's documented FFI
//! exceptions — this is the second sanctioned site, after
//! `crates/native/src/sys.rs`).
//!
//! The wait path uses `epoll_pwait` with a null sigmask on both
//! architectures: aarch64 never had a bare `epoll_wait` syscall, and with
//! a null mask `epoll_pwait` is exactly `epoll_wait`, so one entry point
//! covers both. Registration is level-triggered — the reactor re-arms
//! `EPOLLOUT` only while a connection has pending output, which is the
//! whole backpressure mechanism, and level triggering makes a missed
//! wakeup impossible by construction.

use std::fs::File;
use std::io::{self, Read, Write};
#[cfg(unix)]
use std::os::fd::AsRawFd;
#[cfg(unix)]
pub use std::os::fd::RawFd;

// Portable fallback so the module still compiles (and returns ENOSYS at
// runtime) on non-unix hosts, where `AsRawFd` does not exist.
#[cfg(not(unix))]
pub type RawFd = i32;

/// Readiness interest for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// `EPOLLIN | EPOLLRDHUP`.
    Read,
    /// `EPOLLIN | EPOLLOUT | EPOLLRDHUP` — armed only while a connection
    /// has buffered output to drain (write backpressure).
    ReadWrite,
}

/// One decoded readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Event {
    /// The token the fd was registered with (the reactor uses the fd
    /// number itself).
    pub token: u64,
    /// `EPOLLIN`: a read will not block.
    pub readable: bool,
    /// `EPOLLOUT`: a write will not block.
    pub writable: bool,
    /// `EPOLLERR | EPOLLHUP | EPOLLRDHUP`: the peer is gone or the fd is
    /// in an error state — tear the connection down.
    pub closed: bool,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    file: File,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error; `ENOSYS` (38) on non-Linux hosts,
    /// which the serving tier surfaces as "epoll tier unavailable".
    pub fn new() -> io::Result<Epoll> {
        imp::epoll_create1().map(|file| Epoll { file })
    }

    /// Registers `fd` with the given interest under `token`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error (e.g. `EEXIST` on double-add).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        imp::epoll_ctl(&self.file, imp::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Re-registers `fd` with a new interest set (arms/disarms `EPOLLOUT`).
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        imp::epoll_ctl(&self.file, imp::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        imp::epoll_ctl(&self.file, imp::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (−1 = forever) for readiness, filling
    /// `events`; returns how many entries are valid.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error; `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        loop {
            match imp::epoll_pwait(&self.file, events, timeout_ms) {
                Err(e) if e.raw_os_error() == Some(4) => continue, // EINTR
                other => return other,
            }
        }
    }
}

impl Interest {
    /// The `EPOLLIN`/`EPOLLOUT`/`EPOLLRDHUP` mask for this interest.
    fn bits(self) -> u32 {
        match self {
            Interest::Read => imp::EPOLLIN | imp::EPOLLRDHUP,
            Interest::ReadWrite => imp::EPOLLIN | imp::EPOLLOUT | imp::EPOLLRDHUP,
        }
    }
}

/// A wakeup channel into a reactor shard: an `eventfd` whose counter the
/// writers bump (scheduler workers with fresh output frames, the acceptor
/// with fresh connections) and the reactor drains at the top of its loop.
#[derive(Debug)]
pub struct WakeFd {
    file: File,
}

impl WakeFd {
    /// Creates a non-blocking, close-on-exec eventfd with counter 0.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's error; `ENOSYS` on non-Linux hosts.
    pub fn new() -> io::Result<WakeFd> {
        imp::eventfd().map(|file| WakeFd { file })
    }

    /// The raw fd, for epoll registration.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// The raw fd, for epoll registration (non-unix stub: never reached,
    /// construction already failed with `ENOSYS`).
    #[cfg(not(unix))]
    pub fn raw_fd(&self) -> RawFd {
        -1
    }

    /// Bumps the counter, waking any `epoll_pwait` on the fd. Errors are
    /// swallowed: the only failure mode of an eventfd write is a full
    /// counter (`EAGAIN`), which already means a wakeup is pending.
    pub fn wake(&self) {
        let _ = (&self.file).write_all(&1u64.to_ne_bytes());
    }

    /// Resets the counter to 0 (the fd is non-blocking; an empty counter
    /// reads `EAGAIN`, which is the normal idle case and ignored).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod imp {
    use super::Event;
    use std::fs::File;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    #[cfg(target_arch = "x86_64")]
    const SYS_EPOLL_CREATE1: std::ffi::c_long = 291;
    #[cfg(target_arch = "aarch64")]
    const SYS_EPOLL_CREATE1: std::ffi::c_long = 20;

    #[cfg(target_arch = "x86_64")]
    const SYS_EPOLL_CTL: std::ffi::c_long = 233;
    #[cfg(target_arch = "aarch64")]
    const SYS_EPOLL_CTL: std::ffi::c_long = 21;

    #[cfg(target_arch = "x86_64")]
    const SYS_EPOLL_PWAIT: std::ffi::c_long = 281;
    #[cfg(target_arch = "aarch64")]
    const SYS_EPOLL_PWAIT: std::ffi::c_long = 22;

    #[cfg(target_arch = "x86_64")]
    const SYS_EVENTFD2: std::ffi::c_long = 290;
    #[cfg(target_arch = "aarch64")]
    const SYS_EVENTFD2: std::ffi::c_long = 19;

    pub(super) const EPOLL_CTL_ADD: i32 = 1;
    pub(super) const EPOLL_CTL_DEL: i32 = 2;
    pub(super) const EPOLL_CTL_MOD: i32 = 3;

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    /// `EPOLL_CLOEXEC` == `O_CLOEXEC` (octal 02000000).
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    /// `EFD_CLOEXEC` (same bit as `O_CLOEXEC`).
    const EFD_CLOEXEC: i32 = 0o2000000;
    /// `EFD_NONBLOCK` (same bit as `O_NONBLOCK`).
    const EFD_NONBLOCK: i32 = 0o4000;

    /// `sizeof(sigset_t)` the kernel expects from `epoll_pwait`
    /// (`_NSIG / 8` = 8 bytes on both architectures).
    const SIGSET_SIZE: std::ffi::c_ulong = 8;

    /// `struct epoll_event`: packed on x86-64 (12 bytes), naturally
    /// aligned on every other architecture (16 bytes) — the kernel ABI's
    /// one genuinely arch-dependent struct layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn syscall(num: std::ffi::c_long, ...) -> std::ffi::c_long;
    }

    pub(super) fn epoll_create1() -> io::Result<File> {
        // SAFETY: epoll_create1 takes one integer flag argument and
        // returns a fresh fd or a negative errno indicator.
        let fd = unsafe { syscall(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: a non-negative return is a fresh fd owned by us alone;
        // File assumes that ownership and closes it on drop.
        Ok(unsafe { File::from_raw_fd(fd as i32) })
    }

    pub(super) fn epoll_ctl(
        epfd: &File,
        op: i32,
        fd: RawFd,
        events: u32,
        token: u64,
    ) -> io::Result<()> {
        let event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: the event struct outlives the call (the kernel copies it
        // before returning; EPOLL_CTL_DEL ignores the pointer entirely but
        // a valid one is passed anyway for pre-2.6.9 kernel semantics),
        // and the remaining arguments are plain integers.
        let rc = unsafe {
            syscall(
                SYS_EPOLL_CTL,
                epfd.as_raw_fd(),
                op,
                fd,
                std::ptr::from_ref(&event),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(super) fn epoll_pwait(
        epfd: &File,
        out: &mut [Event],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
        let cap = out.len().min(raw.len());
        // SAFETY: `raw` is a live, writable buffer of `cap` entries that
        // outlives the call; the sigmask is null (plain epoll_wait
        // semantics) with the kernel's expected sigset size passed for the
        // arches that validate it; the rest are plain integers.
        let n = unsafe {
            syscall(
                SYS_EPOLL_PWAIT,
                epfd.as_raw_fd(),
                raw.as_mut_ptr(),
                cap as i32,
                timeout_ms,
                std::ptr::null::<u8>(),
                SIGSET_SIZE,
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let n = (n as usize).min(cap);
        for (slot, ev) in out.iter_mut().zip(raw.iter().take(n)) {
            let bits = ev.events;
            *slot = Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            };
        }
        Ok(n)
    }

    pub(super) fn eventfd() -> io::Result<File> {
        // SAFETY: eventfd2 takes an initial counter value and a flag word;
        // it returns a fresh fd or a negative errno indicator.
        let fd = unsafe { syscall(SYS_EVENTFD2, 0u32, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: a non-negative return is a fresh fd owned by us alone.
        Ok(unsafe { File::from_raw_fd(fd as i32) })
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::Event;
    use super::RawFd;
    use std::fs::File;
    use std::io;

    pub(super) const EPOLL_CTL_ADD: i32 = 1;
    pub(super) const EPOLL_CTL_DEL: i32 = 2;
    pub(super) const EPOLL_CTL_MOD: i32 = 3;
    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    fn enosys() -> io::Error {
        // ENOSYS: the epoll tier reports itself unavailable on non-Linux
        // hosts; the blocking tier remains the portable path.
        io::Error::from_raw_os_error(38)
    }

    pub(super) fn epoll_create1() -> io::Result<File> {
        Err(enosys())
    }

    pub(super) fn epoll_ctl(
        _epfd: &File,
        _op: i32,
        _fd: RawFd,
        _events: u32,
        _token: u64,
    ) -> io::Result<()> {
        Err(enosys())
    }

    pub(super) fn epoll_pwait(
        _epfd: &File,
        _out: &mut [Event],
        _timeout_ms: i32,
    ) -> io::Result<usize> {
        Err(enosys())
    }

    pub(super) fn eventfd() -> io::Result<File> {
        Err(enosys())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Environment-agnostic: on Linux the instance opens and an empty wait
    /// times out cleanly; elsewhere construction fails with `ENOSYS`.
    #[test]
    fn epoll_either_works_or_reports_enosys() {
        match Epoll::new() {
            Ok(ep) => {
                let mut events = [Event::default(); 4];
                let n = ep.wait(&mut events, 0).expect("zero-timeout wait");
                assert_eq!(n, 0, "nothing registered, nothing ready");
            }
            Err(e) => assert_eq!(e.raw_os_error(), Some(38)),
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn eventfd_wakes_an_epoll_wait_and_drains() {
        let ep = Epoll::new().expect("epoll");
        let wake = WakeFd::new().expect("eventfd");
        ep.add(wake.raw_fd(), 7, Interest::Read).expect("register");

        // Nothing pending: a zero-timeout wait sees nothing.
        let mut events = [Event::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // A wake makes the fd readable under the registered token…
        wake.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // …and draining resets it (level-triggered: without the drain the
        // next wait would still report readiness).
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn socket_registration_reports_read_write_and_hangup() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        let fd = server.as_raw_fd();
        ep.add(fd, fd as u64, Interest::ReadWrite).unwrap();

        // An idle established socket is writable but not readable.
        let mut events = [Event::default(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable && !events[0].readable);

        // Peer data arrives: readable. Peer close: hangup.
        (&client).write_all(b"ping\n").unwrap();
        drop(client);
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);
        assert!(events[0].closed, "RDHUP after peer close");

        ep.delete(fd).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
