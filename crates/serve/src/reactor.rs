//! The thread-per-core epoll serve tier.
//!
//! One acceptor thread distributes accepted connections round-robin
//! across N reactor shards (SO_REUSEPORT-style sharding without the
//! socket option: the kernel balances *packets*, the acceptor balances
//! *connections* — same effect, no `setsockopt` FFI). Each shard is one
//! thread owning one epoll instance and every connection assigned to it:
//! non-blocking framed reads, request dispatch through the same
//! [`crate::server::handle_request`] the blocking tier uses, and
//! non-blocking framed writes with per-connection backpressure.
//!
//! The write path replaces the blocking tier's per-connection writer
//! mutex + 10 s write timeout: scheduler workers never touch a socket.
//! [`ConnSink::send`] appends the encoded frame to the connection's
//! outbound buffer under a short lock and bumps the shard's eventfd; the
//! reactor drains the buffer with non-blocking writes, arming `EPOLLOUT`
//! only while bytes remain. A consumer that stops reading accumulates
//! buffer until [`HIGH_WATER`] and is then shed (marked dead, torn down)
//! — a slow client costs bounded memory and zero worker time, where the
//! blocking tier stalled a worker for up to 10 s per frame.

use crate::protocol::{self, ErrorReply, Reply, Request};
use crate::scheduler::ReplySink;
use crate::server::{handle_request, ServerHandle};
use crate::sys::{Epoll, Event, Interest, WakeFd};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::thread::JoinHandle;
#[cfg(feature = "faults")]
use std::time::Duration;

/// Maximum buffered outbound bytes per connection before the slow
/// consumer is shed. Sized for a full fig1 sweep of record frames
/// (~350 × ~4 KiB) with two orders of magnitude of headroom.
const HIGH_WATER: usize = 64 << 20;

/// epoll wait bound, so shards notice the stop flag while idle.
const WAIT_MS: i32 = 50;

/// Events decoded per `epoll_wait` call.
const EVENT_BATCH: usize = 64;

/// Token reserved for the shard's wakeup eventfd (fds are non-negative,
/// so this cannot collide with a connection token).
const WAKE_TOKEN: u64 = u64::MAX;

/// One connection's outbound state, shared between the reactor shard
/// (which drains it onto the socket) and every scheduler worker holding
/// the connection's [`ConnSink`].
struct OutState {
    /// Encoded frames waiting for the socket.
    bytes: Vec<u8>,
    /// Set on shed/teardown: later frames evaporate (client is gone).
    dead: bool,
    /// `true` while the connection sits on the shard's dirty list, so
    /// concurrent senders enqueue it at most once per flush cycle.
    queued: bool,
}

/// Shared handle to one connection's outbound buffer.
struct OutBuf {
    fd: i32,
    state: Mutex<OutState>,
    /// The owning shard's dirty list: fds with fresh output to flush.
    dirty: Arc<Mutex<Vec<i32>>>,
    /// The owning shard's wakeup eventfd.
    wake: Arc<WakeFd>,
}

impl OutBuf {
    /// Appends encoded bytes and wakes the shard. Never blocks on the
    /// socket; a buffer past [`HIGH_WATER`] sheds the connection instead.
    fn push(&self, frame: &[u8]) {
        {
            let mut state = self.state.lock();
            if state.dead {
                return;
            }
            if state.bytes.len() + frame.len() > HIGH_WATER {
                // Slow-consumer shed: the client stopped reading faster
                // than we produce. Drop the connection, not the worker.
                state.dead = true;
                state.bytes = Vec::new();
            } else {
                state.bytes.extend_from_slice(frame);
            }
            if !state.queued {
                state.queued = true;
                self.dirty.lock().push(self.fd);
            }
        }
        self.wake.wake();
    }
}

/// The reply sink handed to the scheduler for an epoll-tier connection:
/// encodes off the worker thread, enqueues, and wakes the reactor.
struct ConnSink {
    out: Arc<OutBuf>,
    /// Fault plan driving the `ServerStall`/`ServerWrite` sites, same
    /// semantics as the blocking tier's writer (chaos machinery).
    #[cfg(feature = "faults")]
    faults: Option<Arc<atscale_faults::FaultPlan>>,
}

impl ReplySink for ConnSink {
    fn send(&self, reply: &Reply) {
        #[cfg(feature = "faults")]
        if let Some(plan) = &self.faults {
            use atscale_faults::FaultSite;
            if let Some(rule) = plan.check(FaultSite::ServerStall) {
                std::thread::sleep(Duration::from_millis(rule.stall_ms));
            }
            if plan.check(FaultSite::ServerWrite).is_some() {
                self.out.state.lock().dead = true;
                return;
            }
        }
        let mut line = protocol::encode(reply);
        line.push('\n');
        self.out.push(line.as_bytes());
    }
}

/// One epoll-registered connection, owned by its reactor shard.
struct Conn {
    stream: TcpStream,
    /// Partial inbound line (bytes after the last newline).
    inbound: Vec<u8>,
    out: Arc<OutBuf>,
    /// `EPOLLOUT` currently armed (pending output met a full socket).
    write_armed: bool,
    /// Close once the outbound buffer drains (shutdown acknowledged).
    close_after_flush: bool,
}

/// One reactor shard: the epoll instance plus the cross-thread inbox the
/// acceptor and the senders reach it through.
struct Shard {
    epoll: Epoll,
    wake: Arc<WakeFd>,
    /// Accepted connections waiting to be registered.
    inbox: Mutex<Vec<TcpStream>>,
    /// fds whose outbound buffers gained bytes since the last flush pass.
    dirty: Arc<Mutex<Vec<i32>>>,
}

impl Shard {
    fn new() -> std::io::Result<Shard> {
        let epoll = Epoll::new()?;
        let wake = Arc::new(WakeFd::new()?);
        epoll.add(wake.raw_fd(), WAKE_TOKEN, Interest::Read)?;
        Ok(Shard {
            epoll,
            wake,
            inbox: Mutex::new(Vec::new()),
            dirty: Arc::new(Mutex::new(Vec::new())),
        })
    }
}

/// Starts the epoll tier on an already-bound listener: `shards` reactor
/// threads plus one acceptor thread. Returns the spawned threads for
/// [`crate::Server::join`].
///
/// # Errors
///
/// Propagates epoll/eventfd creation failures — `ENOSYS` on non-Linux
/// hosts, where the blocking tier remains the portable path.
pub(crate) fn start(
    listener: TcpListener,
    handle: ServerHandle,
    shards: usize,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    let shards = shards.max(1);
    let mut pool = Vec::with_capacity(shards);
    for _ in 0..shards {
        pool.push(Arc::new(Shard::new()?));
    }
    let mut threads = Vec::with_capacity(shards + 1);
    for shard in &pool {
        let shard = Arc::clone(shard);
        let handle = handle.clone();
        threads.push(std::thread::spawn(move || run_shard(&shard, &handle)));
    }
    threads.push(std::thread::spawn(move || {
        accept_epoll(&listener, &handle, &pool);
    }));
    Ok(threads)
}

/// Accept loop: non-blocking accept, connections handed round-robin to
/// the reactor shards.
fn accept_epoll(listener: &TcpListener, handle: &ServerHandle, pool: &[Arc<Shard>]) {
    let mut next = 0usize;
    loop {
        if handle.stopping() {
            // Wake every shard so they notice the stop flag promptly.
            for shard in pool {
                shard.wake.wake();
            }
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if let Some(shard) = pool.get(next % pool.len()) {
                    shard.inbox.lock().push(stream);
                    shard.wake.wake();
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(crate::server::ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(crate::server::ACCEPT_POLL),
        }
    }
}

/// One shard's event loop: register arrivals, read/dispatch frames, drain
/// outbound buffers, shed dead connections — until shutdown has drained
/// both the scheduler and every outbound buffer.
fn run_shard(shard: &Shard, handle: &ServerHandle) {
    // BTreeMap, not HashMap: the shutdown-drain check iterates every
    // connection, and deterministic order keeps the audit's taint pass
    // clean on a path that reaches RunStore::key.
    let mut conns: BTreeMap<i32, Conn> = BTreeMap::new();
    let mut events = [Event::default(); EVENT_BATCH];
    loop {
        let ready = shard.epoll.wait(&mut events, WAIT_MS).unwrap_or_default();
        #[cfg(feature = "faults")]
        if let Some(plan) = handle.scheduler().fault_plan() {
            use atscale_faults::FaultSite;
            if let Some(rule) = plan.check(FaultSite::ReactorStall) {
                // A stalled reactor shard: sockets stay unread and
                // buffers undrained for the stall — correctness must
                // survive on latency alone (level-triggered readiness
                // re-reports everything when the shard comes back).
                std::thread::sleep(Duration::from_millis(rule.stall_ms));
            }
        }
        let mut closed = Vec::new();
        for event in events.iter().take(ready) {
            if event.token == WAKE_TOKEN {
                shard.wake.drain();
                continue;
            }
            let fd = event.token as i32;
            let Some(conn) = conns.get_mut(&fd) else {
                continue;
            };
            let mut gone = false;
            if event.readable {
                gone = read_frames(conn, handle);
            }
            if event.writable && !gone {
                gone = flush_conn(conn, &shard.epoll);
            }
            if gone || (event.closed && !event.readable) {
                closed.push(fd);
            }
        }
        // Register connections the acceptor handed over.
        for stream in std::mem::take(&mut *shard.inbox.lock()) {
            register_conn(stream, shard, &mut conns);
        }
        // Flush every connection whose buffer gained bytes since the last
        // pass (scheduler workers enqueue + wake; only this thread writes).
        for fd in std::mem::take(&mut *shard.dirty.lock()) {
            if let Some(conn) = conns.get_mut(&fd) {
                if flush_conn(conn, &shard.epoll) {
                    closed.push(fd);
                }
            }
        }
        closed.sort_unstable();
        closed.dedup();
        for fd in closed {
            if let Some(conn) = conns.remove(&fd) {
                teardown(&conn, &shard.epoll);
            }
        }
        if handle.stopping() {
            // Exit only once admitted work has delivered: the scheduler
            // is drained and no connection still buffers output.
            let stats = handle.scheduler().stats_reply();
            let flushed = conns.values().all(|c| c.out.state.lock().bytes.is_empty());
            if stats.queued == 0 && stats.running == 0 && flushed {
                for conn in conns.values() {
                    teardown(conn, &shard.epoll);
                }
                return;
            }
        }
    }
}

/// Registers one accepted connection with the shard's epoll instance.
fn register_conn(stream: TcpStream, shard: &Shard, conns: &mut BTreeMap<i32, Conn>) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    // Reply streams are many small frames; never batch them behind Nagle.
    let _ = stream.set_nodelay(true);
    #[cfg(unix)]
    let fd = stream.as_raw_fd();
    #[cfg(not(unix))]
    let fd = -1;
    if shard.epoll.add(fd, fd as u64, Interest::Read).is_err() {
        return;
    }
    let out = Arc::new(OutBuf {
        fd,
        state: Mutex::new(OutState {
            bytes: Vec::new(),
            dead: false,
            queued: false,
        }),
        dirty: Arc::clone(&shard.dirty),
        wake: Arc::clone(&shard.wake),
    });
    conns.insert(
        fd,
        Conn {
            stream,
            inbound: Vec::new(),
            out,
            write_armed: false,
            close_after_flush: false,
        },
    );
}

/// Drains readable bytes and dispatches every complete frame. Returns
/// `true` when the connection is finished (EOF, read error, or shed).
fn read_frames(conn: &mut Conn, handle: &ServerHandle) -> bool {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => return true, // EOF
            Ok(n) => conn
                .inbound
                .extend_from_slice(buf.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    while let Some(pos) = conn.inbound.iter().position(|&b| b == b'\n') {
        let rest = conn.inbound.split_off(pos + 1);
        let line = std::mem::replace(&mut conn.inbound, rest);
        let line = String::from_utf8_lossy(&line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let sink: Arc<dyn ReplySink> = Arc::new(ConnSink {
            out: Arc::clone(&conn.out),
            #[cfg(feature = "faults")]
            faults: handle.scheduler().fault_plan().cloned(),
        });
        match protocol::decode::<Request>(line) {
            Ok(request) => {
                if handle_request(&request, &sink, handle) {
                    conn.close_after_flush = true;
                }
            }
            Err(message) => sink.send(&Reply::Error(ErrorReply { id: 0, message })),
        }
        if conn.out.state.lock().dead {
            return true;
        }
    }
    false
}

/// Drains the connection's outbound buffer with non-blocking writes,
/// arming `EPOLLOUT` when the socket fills. Returns `true` when the
/// connection is finished (dead, write error, or drained-and-closing).
fn flush_conn(conn: &mut Conn, epoll: &Epoll) -> bool {
    loop {
        let chunk = {
            let mut state = conn.out.state.lock();
            if state.dead {
                return true;
            }
            if state.bytes.is_empty() {
                state.queued = false;
                break;
            }
            std::mem::take(&mut state.bytes)
        };
        let mut written = 0usize;
        let mut stalled = false;
        let mut failed = false;
        while written < chunk.len() {
            match conn.stream.write(chunk.get(written..).unwrap_or_default()) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    stalled = true;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            conn.out.state.lock().dead = true;
            return true;
        }
        if stalled {
            // Put the remainder back *in front of* anything workers
            // appended while the lock was released, then wait for
            // EPOLLOUT — this is the backpressure path.
            let mut state = conn.out.state.lock();
            let mut rest = chunk.get(written..).unwrap_or_default().to_vec();
            rest.extend_from_slice(&state.bytes);
            state.bytes = rest;
            drop(state);
            if !conn.write_armed {
                conn.write_armed = arm_write(conn, epoll, true);
            }
            return false;
        }
    }
    if conn.write_armed {
        arm_write(conn, epoll, false);
        conn.write_armed = false;
    }
    conn.close_after_flush
}

/// Arms or disarms `EPOLLOUT` for a connection; returns whether the
/// modification took.
fn arm_write(conn: &Conn, epoll: &Epoll, armed: bool) -> bool {
    #[cfg(unix)]
    let fd = conn.stream.as_raw_fd();
    #[cfg(not(unix))]
    let fd = -1;
    let interest = if armed {
        Interest::ReadWrite
    } else {
        Interest::Read
    };
    epoll.modify(fd, fd as u64, interest).is_ok()
}

/// Deregisters and kills a finished connection.
fn teardown(conn: &Conn, epoll: &Epoll) {
    conn.out.state.lock().dead = true;
    #[cfg(unix)]
    let _ = epoll.delete(conn.stream.as_raw_fd());
    #[cfg(not(unix))]
    let _ = epoll;
    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
}
