//! The shard router: deterministic consistent hashing of experiment keys
//! across N daemon processes.
//!
//! Placement is a pure function of the record hash ([`atscale::RunStore::
//! key_hash`] — the same 64-bit content hash that names the record in the
//! store) and the shard count, via a fixed table of [`ROUTER_SLOTS`]
//! slots. The table is built *recursively*: the 1-shard table owns every
//! slot, and the n-shard table is the (n−1)-shard table with the new
//! shard stealing exactly its balanced quota of slots — always from the
//! currently fullest shard, always that shard's highest-numbered slot.
//! This gives hard (not probabilistic) guarantees:
//!
//! - **balance**: every shard owns `floor(S/N)` or `ceil(S/N)` slots;
//! - **minimal movement**: growing from N−1 to N shards reassigns exactly
//!   `floor(S/N)` slots, every one of them *to* the new shard — no key
//!   ever moves between two pre-existing shards;
//! - **restart stability**: the table depends only on `(S, N)`, so every
//!   process in a topology (and every future restart of it) computes the
//!   identical mapping with no coordination.
//!
//! Because placement consumes the store's own record hash, a record can
//! only ever be computed, cached, and deduplicated on the shard that owns
//! its key: single-flight dedup and byte-for-bit record identity stay
//! correct per-shard *by construction*, not by protocol.

use atscale::{RunSpec, RunStore};
use atscale_mmu::MachineConfig;

/// Number of hash slots in the routing table. A power of two well above
/// any realistic shard count, so per-shard balance stays within ±1 slot
/// (±0.025% of keyspace at 4096).
pub const ROUTER_SLOTS: usize = 4096;

/// A slot→shard routing table for a fixed shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    table: Vec<u32>,
}

impl ShardMap {
    /// Builds the table for `shards` processes (at least 1).
    pub fn new(shards: usize) -> ShardMap {
        assert!(shards >= 1, "a topology has at least one shard");
        let mut table = vec![0u32; ROUTER_SLOTS];
        let mut counts = vec![ROUTER_SLOTS; 1];
        for n in 2..=shards {
            // The new shard (index n−1) steals floor(S/n) slots, one at a
            // time, each from the currently fullest shard (ties: lowest
            // index) — specifically that shard's highest-numbered slot.
            counts.push(0);
            let quota = ROUTER_SLOTS / n;
            while counts[n - 1] < quota {
                let donor = counts[..n - 1]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(i, _)| i)
                    .expect("at least one donor shard");
                let slot = table
                    .iter()
                    .rposition(|&s| s as usize == donor)
                    .expect("donor owns at least one slot");
                table[slot] = (n - 1) as u32;
                counts[donor] -= 1;
                counts[n - 1] += 1;
            }
        }
        ShardMap { shards, table }
    }

    /// The shard count this table was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The slot a record hash lands in.
    pub fn slot_of(hash: u64) -> usize {
        (hash % ROUTER_SLOTS as u64) as usize
    }

    /// The owning shard of a raw record hash.
    pub fn shard_for_hash(&self, hash: u64) -> usize {
        // `slot_of` is always in range; the fallback keeps the routing
        // path panic-free (it runs on server worker threads).
        self.table
            .get(Self::slot_of(hash))
            .copied()
            .unwrap_or_default() as usize
    }

    /// The owning shard of a run: routes on the store's own record hash,
    /// so placement and cache identity are the same function.
    pub fn shard_for(&self, spec: &RunSpec, config: &MachineConfig) -> usize {
        self.shard_for_hash(RunStore::key_hash(spec, config))
    }

    /// Slots owned per shard (diagnostics and the balance proof).
    pub fn slot_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards];
        for &s in &self.table {
            counts[s as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_owns_everything() {
        let map = ShardMap::new(1);
        assert_eq!(map.slot_counts(), vec![ROUTER_SLOTS]);
        assert_eq!(map.shard_for_hash(u64::MAX), 0);
    }

    #[test]
    fn every_table_is_balanced_within_one_slot() {
        for n in 1..=32 {
            let counts = ShardMap::new(n).slot_counts();
            let lo = ROUTER_SLOTS / n;
            let hi = ROUTER_SLOTS.div_ceil(n);
            for (shard, &c) in counts.iter().enumerate() {
                assert!(
                    (lo..=hi).contains(&c),
                    "{n}-shard table: shard {shard} owns {c} slots, want {lo}..={hi}"
                );
            }
        }
    }

    #[test]
    fn growing_moves_only_to_the_new_shard_and_exactly_its_quota() {
        for n in 2..=32 {
            let old = ShardMap::new(n - 1);
            let new = ShardMap::new(n);
            let mut moved = 0usize;
            for slot in 0..ROUTER_SLOTS {
                let (a, b) = (old.table[slot], new.table[slot]);
                if a != b {
                    moved += 1;
                    assert_eq!(
                        b as usize,
                        n - 1,
                        "slot {slot} moved between pre-existing shards ({a} → {b}) at n={n}"
                    );
                }
            }
            assert_eq!(moved, ROUTER_SLOTS / n, "movement is exactly the quota");
        }
    }

    #[test]
    fn tables_are_pure_functions_of_the_shard_count() {
        // Restart stability: independent rebuilds agree bit for bit.
        for n in [1, 2, 3, 4, 7, 16] {
            assert_eq!(ShardMap::new(n), ShardMap::new(n));
        }
    }

    #[test]
    fn adding_a_shard_moves_at_most_ceil_k_over_n_keys_and_only_to_it() {
        // K keys covering every slot the same number of times, so the
        // slot-level movement guarantee transfers to keys exactly:
        // moved = 4·floor(S/n) ≤ 4·S/n = K/n ≤ ceil(K/n).
        let keys: Vec<u64> = (0..4 * ROUTER_SLOTS as u64).collect();
        for n in 2..=16 {
            let old = ShardMap::new(n - 1);
            let new = ShardMap::new(n);
            let mut moved = 0usize;
            for &k in &keys {
                let (a, b) = (old.shard_for_hash(k), new.shard_for_hash(k));
                if a != b {
                    assert_eq!(b, n - 1, "key {k} moved between pre-existing shards");
                    moved += 1;
                }
            }
            assert!(
                moved <= keys.len().div_ceil(n),
                "n={n}: {moved} keys moved, ceil(K/n) = {}",
                keys.len().div_ceil(n)
            );
            assert_eq!(moved, 4 * (ROUTER_SLOTS / n), "movement is the key quota");
        }
    }

    #[test]
    fn random_record_hashes_route_stably_across_process_restarts() {
        // Same key → same shard on an independently rebuilt table (a
        // restarted process), and growth never moves a key between two
        // pre-existing shards — over pseudo-random record hashes, the
        // shape `RunStore::key_hash` actually produces.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let hashes: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect();
        for n in [1, 2, 4, 8] {
            let table = ShardMap::new(n);
            let restarted = ShardMap::new(n);
            let grown = ShardMap::new(n + 1);
            for &h in &hashes {
                let home = table.shard_for_hash(h);
                assert_eq!(home, restarted.shard_for_hash(h), "restart moved {h:#x}");
                let after = grown.shard_for_hash(h);
                assert!(
                    after == home || after == n,
                    "{h:#x} moved {home} → {after} when shard {n} joined"
                );
            }
        }
    }
}
