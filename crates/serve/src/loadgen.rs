//! Open-loop Poisson load generation against a serve topology.
//!
//! The engine drives thousands of concurrent non-blocking connections
//! from a single thread over the same [`crate::sys`] epoll shim the
//! reactor uses, issuing one-spec `Submit` requests on a precomputed
//! Poisson arrival schedule and recording send → `BatchDone` latency per
//! request.
//!
//! Two properties matter for a credible benchmark and are enforced by
//! construction:
//!
//! - **Open loop**: arrivals fire on the schedule regardless of how many
//!   replies are outstanding, so a slow server accumulates queueing delay
//!   instead of silently throttling the offered load (closed-loop
//!   coordinated omission would hide exactly the tail this benchmark
//!   exists to measure).
//! - **Determinism**: the schedule is a pure function of
//!   `(seed, rate, count, pool)` — [`schedule`] called twice with the same
//!   arguments yields the identical arrival list, byte for byte, which is
//!   what makes a committed baseline meaningful.
//!
//! The engine routes each request to the shard that owns its spec's
//! record hash (via [`ShardMap`]), exactly as [`crate::ShardedClient`]
//! does, so a sharded topology is exercised the way real clients use it.

use crate::protocol::{self, Reply, Request, Submit};
use crate::router::ShardMap;
use crate::sys::{Epoll, Event, Interest};
use atscale::RunSpec;
use atscale_mmu::MachineConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Read-buffer granularity for reply streams.
const READ_CHUNK: usize = 16 * 1024;

/// Events drained per epoll wake.
const EVENT_BATCH: usize = 64;

/// Hard per-run drain window after the last scheduled arrival: requests
/// still unanswered when it expires are counted `timed_out`, never waited
/// on forever.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// One scheduled arrival: when to send (nanoseconds from run start) and
/// which spec of the pre-warmed pool to submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from run start, in nanoseconds.
    pub at_ns: u64,
    /// Index into the spec pool.
    pub spec: usize,
}

/// Builds the full open-loop arrival schedule: `count` arrivals with
/// exponentially-distributed inter-arrival gaps at `rate_per_sec`
/// (a Poisson process), each assigned a spec drawn uniformly from a
/// `pool`-sized pool.
///
/// Pure function of its arguments — identical inputs produce the
/// identical schedule, which the determinism test pins.
pub fn schedule(seed: u64, rate_per_sec: f64, count: usize, pool: usize) -> Vec<Arrival> {
    let rate = if rate_per_sec > 0.0 {
        rate_per_sec
    } else {
        1.0
    };
    let pool = pool.max(1);
    let mut out = Vec::with_capacity(count);
    let mut t_ns = 0u64;
    let mut state = seed;
    for _ in 0..count {
        let u = unit_f64(&mut state);
        // Inverse-CDF exponential sample; clamp away u == 1.0 so ln(0)
        // never appears.
        let dt_s = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate;
        t_ns = t_ns.saturating_add((dt_s * 1e9) as u64);
        let spec = (next_u64(&mut state) % pool as u64) as usize;
        out.push(Arrival { at_ns: t_ns, spec });
    }
    out
}

/// `splitmix64` step shared by the schedule sampler.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the schedule's generator state.
fn unit_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Loadgen run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Every shard's address, in shard-index order (one entry = standalone).
    pub topology: Vec<String>,
    /// Concurrent connections to hold open, distributed round-robin
    /// across the topology.
    pub connections: usize,
    /// Total requests to issue.
    pub requests: usize,
    /// Offered load in requests per second (Poisson arrivals).
    pub rate_per_sec: f64,
    /// Seed for the arrival schedule and spec selection.
    pub seed: u64,
    /// Label recorded in the report (`"epoll"` / `"blocking"` / …).
    pub tier: String,
}

/// What a loadgen run measured. Serialized as the
/// `atscale-serve-loadgen-v1` JSON schema by the `loadgen` bench binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Report schema tag.
    pub schema: String,
    /// Serve tier exercised (`"epoll"` or `"blocking"`).
    pub tier: String,
    /// Shards in the target topology.
    pub shards: u64,
    /// Concurrent connections held open.
    pub connections: u64,
    /// Offered load, requests/second.
    pub rate_per_sec: f64,
    /// Schedule seed.
    pub seed: u64,
    /// Requests issued.
    pub sent: u64,
    /// Requests answered with a full reply stream (`BatchDone`).
    pub completed: u64,
    /// Requests rejected by admission control (`Overloaded`).
    pub overloaded: u64,
    /// Requests lost to connection errors or protocol breaks.
    pub errors: u64,
    /// Requests still unanswered when the drain window closed.
    pub timed_out: u64,
    /// Wall-clock run duration, seconds.
    pub duration_s: f64,
    /// Completed requests per second of wall-clock.
    pub goodput_per_s: f64,
    /// `Overloaded` replies as a fraction of requests issued.
    pub overloaded_rate: f64,
    /// Median send→done latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// The schema tag the bench gate matches on.
    pub const SCHEMA: &'static str = "atscale-serve-loadgen-v1";
}

/// One managed connection.
struct Conn {
    stream: TcpStream,
    shard: usize,
    /// Bytes queued for the socket (front-drained).
    out: Vec<u8>,
    /// Partial inbound line.
    inbuf: Vec<u8>,
    /// Whether `EPOLLOUT` is currently armed.
    writable_armed: bool,
    dead: bool,
}

/// The platform fd for epoll registration (mirrors the reactor's idiom;
/// the non-unix value never reaches a kernel because `Epoll::new` fails
/// first).
fn raw_fd(stream: &TcpStream) -> crate::sys::RawFd {
    #[cfg(unix)]
    {
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        -1
    }
}

/// Latency percentile over a sorted sample set (microseconds).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied().unwrap_or(0)
}

/// Runs the load-generation engine: opens `config.connections`
/// non-blocking connections across the topology, fires the arrival
/// schedule open-loop, and collects per-request latency until every
/// request resolves or the drain window closes.
///
/// `specs` is the pre-warmed pool arrivals draw from; pre-warming (one
/// [`crate::ShardedClient::run_chunked`] pass) is the caller's job so the
/// measured path is the cached-answer path.
///
/// # Errors
///
/// Fails on setup errors — epoll unavailable, or a connection that cannot
/// be established after retries. Runtime failures (drops mid-stream,
/// protocol breaks) are counted in the report instead.
pub fn run(
    config: &LoadgenConfig,
    specs: &[RunSpec],
    machine: &MachineConfig,
) -> std::io::Result<LoadgenReport> {
    if config.topology.is_empty() || specs.is_empty() || config.connections == 0 {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "loadgen needs a topology, a spec pool, and at least one connection",
        ));
    }
    let map = ShardMap::new(config.topology.len());
    let plan = schedule(
        config.seed,
        config.rate_per_sec,
        config.requests,
        specs.len(),
    );

    // Per-shard connection groups: conn i serves shard i % shards, so
    // every shard has connections as long as connections >= shards.
    let epoll = Epoll::new()?;
    let mut conns: Vec<Conn> = Vec::with_capacity(config.connections);
    for i in 0..config.connections {
        let shard = i % config.topology.len();
        let addr = config
            .topology
            .get(shard)
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "topology hole"))?;
        let stream = connect_retry(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        epoll.add(raw_fd(&stream), i as u64, Interest::Read)?;
        conns.push(Conn {
            stream,
            shard,
            out: Vec::new(),
            inbuf: Vec::new(),
            writable_armed: false,
            dead: false,
        });
    }
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); config.topology.len()];
    for (i, conn) in conns.iter().enumerate() {
        if let Some(group) = by_shard.get_mut(conn.shard) {
            group.push(i);
        }
    }
    let mut rr: Vec<usize> = vec![0; config.topology.len()];

    // In-flight requests: id -> (owning conn, send offset ns).
    let mut pending: HashMap<u64, (usize, u64)> = HashMap::new();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(config.requests);
    let mut sent = 0u64;
    let mut overloaded = 0u64;
    let mut errors = 0u64;

    let start = Instant::now();
    let drain_deadline = plan.last().map_or(DRAIN_TIMEOUT, |a| {
        Duration::from_nanos(a.at_ns) + DRAIN_TIMEOUT
    });
    let mut events = vec![Event::default(); EVENT_BATCH];
    let mut next_arrival = 0usize;
    let mut next_id = 1u64;

    loop {
        let elapsed = start.elapsed();
        let now_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);

        // Fire every arrival whose time has come (open loop: no waiting
        // on outstanding replies).
        while let Some(arrival) = plan.get(next_arrival) {
            if arrival.at_ns > now_ns {
                break;
            }
            next_arrival += 1;
            let Some(spec) = specs.get(arrival.spec) else {
                continue;
            };
            let shard = map.shard_for(spec, machine);
            let conn_idx = pick_conn(&by_shard, &mut rr, &conns, shard);
            let Some(conn_idx) = conn_idx else {
                errors += 1;
                sent += 1;
                continue;
            };
            let id = next_id;
            next_id += 1;
            let mut line = protocol::encode(&Request::Submit(Submit {
                id,
                specs: vec![*spec],
                deadline_ms: None,
                no_cache: false,
                sample_interval: 0,
            }));
            line.push('\n');
            sent += 1;
            pending.insert(id, (conn_idx, now_ns));
            if let Some(conn) = conns.get_mut(conn_idx) {
                conn.out.extend_from_slice(line.as_bytes());
                flush_conn(&epoll, conn, conn_idx);
            }
        }

        if next_arrival >= plan.len() && pending.is_empty() {
            break;
        }
        if elapsed >= drain_deadline {
            break;
        }

        // Sleep until the next arrival is due (capped so reply streams
        // stay responsive) or until a socket wakes us.
        let timeout_ms = match plan.get(next_arrival) {
            Some(arrival) => {
                let wait_ns = arrival.at_ns.saturating_sub(now_ns);
                (wait_ns / 1_000_000).clamp(0, 20) as i32
            }
            None => 20,
        };
        let n = epoll.wait(&mut events, timeout_ms)?;
        for event in events.iter().take(n) {
            let conn_idx = event.token as usize;
            let Some(conn) = conns.get_mut(conn_idx) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            if event.readable || event.closed {
                read_replies(
                    conn,
                    &mut pending,
                    &mut latencies_us,
                    &mut overloaded,
                    &mut errors,
                    &start,
                );
            }
            if event.writable && !conn.dead {
                flush_conn(&epoll, conn, conn_idx);
            }
            if conn.dead {
                // Everything in flight on a dead connection is lost.
                let lost: Vec<u64> = pending
                    .iter()
                    .filter(|(_, (c, _))| *c == conn_idx)
                    .map(|(&id, _)| id)
                    .collect();
                for id in lost {
                    pending.remove(&id);
                    errors += 1;
                }
                epoll.delete(raw_fd(&conn.stream)).ok();
            }
        }
    }

    let timed_out = pending.len() as u64;
    let duration_s = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    let completed = latencies_us.len() as u64;
    Ok(LoadgenReport {
        schema: LoadgenReport::SCHEMA.to_string(),
        tier: config.tier.clone(),
        shards: config.topology.len() as u64,
        connections: config.connections as u64,
        rate_per_sec: config.rate_per_sec,
        seed: config.seed,
        sent,
        completed,
        overloaded,
        errors,
        timed_out,
        duration_s,
        goodput_per_s: if duration_s > 0.0 {
            completed as f64 / duration_s
        } else {
            0.0
        },
        overloaded_rate: if sent > 0 {
            overloaded as f64 / sent as f64
        } else {
            0.0
        },
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        p999_us: percentile(&latencies_us, 0.999),
        max_us: latencies_us.last().copied().unwrap_or(0),
    })
}

/// Connects with bounded retries — a connect storm against a freshly
/// spawned daemon can transiently overflow the accept backlog.
fn connect_retry(addr: &str) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..50 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5 * (attempt / 10 + 1)));
            }
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("connect failed")))
}

/// Round-robins over a shard's live connections.
fn pick_conn(
    by_shard: &[Vec<usize>],
    rr: &mut [usize],
    conns: &[Conn],
    shard: usize,
) -> Option<usize> {
    let group = by_shard.get(shard)?;
    let cursor = rr.get_mut(shard)?;
    for _ in 0..group.len() {
        let idx = group.get(*cursor % group.len().max(1)).copied()?;
        *cursor = cursor.wrapping_add(1);
        if conns.get(idx).is_some_and(|c| !c.dead) {
            return Some(idx);
        }
    }
    None
}

/// Drains a connection's readable bytes, resolving in-flight requests.
fn read_replies(
    conn: &mut Conn,
    pending: &mut HashMap<u64, (usize, u64)>,
    latencies_us: &mut Vec<u64>,
    overloaded: &mut u64,
    errors: &mut u64,
    start: &Instant,
) {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.inbuf
                    .extend_from_slice(chunk.get(..n).unwrap_or_default());
                while let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
                    let rest = conn.inbuf.split_off(pos + 1);
                    let line = std::mem::replace(&mut conn.inbuf, rest);
                    let text = String::from_utf8_lossy(&line);
                    let text = text.trim();
                    if text.is_empty() {
                        continue;
                    }
                    resolve_reply(text, pending, latencies_us, overloaded, errors, start);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Classifies one reply line against the in-flight table.
fn resolve_reply(
    line: &str,
    pending: &mut HashMap<u64, (usize, u64)>,
    latencies_us: &mut Vec<u64>,
    overloaded: &mut u64,
    errors: &mut u64,
    start: &Instant,
) {
    let Ok(reply) = protocol::decode::<Reply>(line) else {
        *errors += 1;
        return;
    };
    match reply {
        Reply::BatchDone(done) => {
            if let Some((_, sent_ns)) = pending.remove(&done.id) {
                let now_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                latencies_us.push(now_ns.saturating_sub(sent_ns) / 1_000);
            }
        }
        Reply::Overloaded(o) if pending.remove(&o.id).is_some() => *overloaded += 1,
        Reply::Error(e) if pending.remove(&e.id).is_some() => *errors += 1,
        // Mid-stream frames for a batch still in flight.
        _ => {}
    }
}

/// Writes as much queued output as the socket accepts; arms or disarms
/// `EPOLLOUT` to match what remains.
fn flush_conn(epoll: &Epoll, conn: &mut Conn, token: usize) {
    while !conn.out.is_empty() {
        match conn.stream.write(&conn.out) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.out.drain(..n.min(conn.out.len()));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    let want_write = !conn.out.is_empty();
    if want_write != conn.writable_armed {
        let interest = if want_write {
            Interest::ReadWrite
        } else {
            Interest::Read
        };
        if epoll
            .modify(raw_fd(&conn.stream), token as u64, interest)
            .is_ok()
        {
            conn.writable_armed = want_write;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = schedule(42, 1000.0, 512, 16);
        let b = schedule(42, 1000.0, 512, 16);
        assert_eq!(a, b, "fixed seed must reproduce the identical schedule");
        let c = schedule(43, 1000.0, 512, 16);
        assert_ne!(a, c, "different seeds must decorrelate");
    }

    #[test]
    fn schedule_is_monotone_and_rate_shaped() {
        let plan = schedule(7, 10_000.0, 4096, 8);
        assert_eq!(plan.len(), 4096);
        for pair in plan.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns, "arrivals are ordered");
        }
        // Mean inter-arrival should land near 1/rate (100 µs) — within
        // a loose 3x band, this is a smoke check not a statistics test.
        let span_ns = plan.last().map_or(0, |a| a.at_ns);
        let mean_ns = span_ns / 4096;
        assert!(
            (30_000..300_000).contains(&mean_ns),
            "mean inter-arrival {mean_ns} ns far from 100 µs"
        );
        assert!(plan.iter().all(|a| a.spec < 8), "specs drawn from the pool");
    }

    #[test]
    fn percentiles_pick_expected_ranks() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.50), 501);
        assert_eq!(percentile(&sorted, 0.99), 990);
        assert_eq!(percentile(&sorted, 0.999), 999);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
