//! `atscale-serve` — the experiment-serving daemon.
//!
//! ```text
//! atscale-serve --socket /tmp/atscale.sock [--tcp 127.0.0.1:7719]
//!               [--workers N] [--queue N] [--store DIR | --no-store]
//!               [--io blocking|epoll] [--reactors N]
//!               [--shard I --topology ADDR,ADDR,...]
//!               [--fault-spec SPEC --fault-seed N]   (faults builds only)
//! ```
//!
//! Binds the requested endpoints, serves until a client sends a
//! `Shutdown` frame, drains in-flight work, and exits 0. Cache-first by
//! default: runs are answered from (and written back to) the run store,
//! so repeated figure regenerations cost one simulation each. The store
//! opens segment-backed: legacy `.json` records stay readable, new
//! records land in the columnar segment store, and the v5 results-plane
//! verbs (`Query`/`Compact`/`StoreSegStats`) are served from its online
//! aggregates.
//!
//! `--io epoll` serves TCP through the thread-per-core reactor tier
//! (non-blocking framed I/O, per-connection write backpressure) instead
//! of one thread per connection; `--reactors` overrides the shard-count
//! (default: one per core). `--shard`/`--topology` declare this daemon's
//! place in a sharded topology, advertised to clients in the v6
//! `Welcome` handshake so any member bootstraps full-topology routing.

use atscale::RunStore;
use atscale_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    epoll: bool,
    reactors: Option<usize>,
    shard: u64,
    topology: Vec<String>,
    fault_spec: Option<String>,
    fault_seed: u64,
}

const USAGE: &str = "usage: atscale-serve [--socket PATH] [--tcp ADDR] \
                     [--workers N] [--queue N] [--store DIR | --no-store] \
                     [--io blocking|epoll] [--reactors N] \
                     [--shard I --topology ADDR,ADDR,...] \
                     [--fault-spec SPEC --fault-seed N]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        socket: None,
        tcp: None,
        workers: None,
        queue: None,
        store_dir: None,
        no_store: false,
        epoll: false,
        reactors: None,
        shard: 0,
        topology: Vec::new(),
        fault_spec: None,
        fault_seed: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => {
                opts.socket = Some(PathBuf::from(iter.next().ok_or("--socket needs a path")?));
            }
            "--tcp" => {
                opts.tcp = Some(iter.next().ok_or("--tcp needs an address")?.clone());
            }
            "--workers" => {
                opts.workers = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--workers needs a number")?,
                );
            }
            "--queue" => {
                opts.queue = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--queue needs a number")?,
                );
            }
            "--store" => {
                opts.store_dir = Some(PathBuf::from(iter.next().ok_or("--store needs a dir")?));
            }
            "--no-store" => opts.no_store = true,
            "--io" => {
                opts.epoll = match iter.next().map(String::as_str) {
                    Some("epoll") => true,
                    Some("blocking") => false,
                    _ => return Err("--io needs blocking|epoll".to_string()),
                };
            }
            "--reactors" => {
                opts.reactors = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--reactors needs a number")?,
                );
            }
            "--shard" => {
                opts.shard = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--shard needs a number")?;
            }
            "--topology" => {
                opts.topology = iter
                    .next()
                    .ok_or("--topology needs a comma-separated address list")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--fault-spec" => {
                opts.fault_spec = Some(iter.next().ok_or("--fault-spec needs a spec")?.clone());
            }
            "--fault-seed" => {
                opts.fault_seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--fault-seed needs a number")?;
            }
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    if opts.socket.is_none() && opts.tcp.is_none() {
        return Err(format!("no endpoint given\n{USAGE}"));
    }
    if opts.no_store && opts.store_dir.is_some() {
        return Err("--store and --no-store are mutually exclusive".to_string());
    }
    if !opts.topology.is_empty() && opts.shard as usize >= opts.topology.len() {
        return Err(format!(
            "--shard {} outside the {}-entry topology",
            opts.shard,
            opts.topology.len()
        ));
    }
    if opts.epoll && opts.tcp.is_none() {
        return Err("--io epoll serves TCP; give --tcp".to_string());
    }
    if opts.epoll && opts.socket.is_some() {
        return Err("--io epoll serves TCP only; drop --socket".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("atscale-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let store = if opts.no_store {
        None
    } else {
        let opened = match &opts.store_dir {
            Some(dir) => RunStore::open_segmented(dir),
            None => RunStore::default_location_segmented(),
        };
        match opened {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("atscale-serve: cannot open run store: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut config = ServeConfig {
        store,
        shard: opts.shard,
        topology: opts.topology.clone(),
        ..ServeConfig::default()
    };
    if let Some(workers) = opts.workers {
        config.workers = workers.max(1);
    }
    if let Some(queue) = opts.queue {
        config.queue_capacity = queue;
    }
    // Chaos machinery: a spec-string fault plan lets the soak CI job run
    // real daemon processes under the same deterministic injection the
    // in-process chaos suite uses. Only builds with the `faults` feature
    // carry injection branches; a release binary refuses the flag instead
    // of silently serving fault-free.
    #[cfg(feature = "faults")]
    if let Some(spec) = &opts.fault_spec {
        match atscale_faults::FaultPlan::parse(opts.fault_seed, spec) {
            Ok(plan) => config.faults = Some(std::sync::Arc::new(plan)),
            Err(e) => {
                eprintln!("atscale-serve: bad --fault-spec: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(not(feature = "faults"))]
    if opts.fault_spec.is_some() {
        let _ = opts.fault_seed;
        eprintln!(
            "atscale-serve: --fault-spec needs a daemon built with the `faults` \
             feature (cargo build -p atscale-serve --features faults)"
        );
        return ExitCode::FAILURE;
    }
    let workers = config.workers;
    let queue = config.queue_capacity;
    // parse_args guarantees `--io epoll` comes with `--tcp`.
    let started = match (opts.epoll, &opts.tcp) {
        (true, Some(tcp)) => match opts.reactors {
            Some(n) => Server::start_epoll_sharded(config, tcp, n.max(1)),
            None => Server::start_epoll(config, tcp),
        },
        _ => Server::start(config, opts.tcp.as_deref(), opts.socket.as_deref()),
    };
    let server = match started {
        Ok(server) => server,
        Err(e) => {
            eprintln!("atscale-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = server.tcp_addr() {
        println!("atscale-serve: listening on tcp {addr}");
    }
    if let Some(path) = &opts.socket {
        println!("atscale-serve: listening on unix {}", path.display());
    }
    println!(
        "atscale-serve: {workers} workers, queue capacity {queue}; send a Shutdown frame to stop"
    );
    server.join();
    println!("atscale-serve: drained, bye");
    ExitCode::SUCCESS
}
