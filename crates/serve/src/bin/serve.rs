//! `atscale-serve` — the experiment-serving daemon.
//!
//! ```text
//! atscale-serve --socket /tmp/atscale.sock [--tcp 127.0.0.1:7719]
//!               [--workers N] [--queue N] [--store DIR | --no-store]
//! ```
//!
//! Binds the requested endpoints, serves until a client sends a
//! `Shutdown` frame, drains in-flight work, and exits 0. Cache-first by
//! default: runs are answered from (and written back to) the run store,
//! so repeated figure regenerations cost one simulation each. The store
//! opens segment-backed: legacy `.json` records stay readable, new
//! records land in the columnar segment store, and the v5 results-plane
//! verbs (`Query`/`Compact`/`StoreSegStats`) are served from its online
//! aggregates.

use atscale::RunStore;
use atscale_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    store_dir: Option<PathBuf>,
    no_store: bool,
}

const USAGE: &str = "usage: atscale-serve [--socket PATH] [--tcp ADDR] \
                     [--workers N] [--queue N] [--store DIR | --no-store]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        socket: None,
        tcp: None,
        workers: None,
        queue: None,
        store_dir: None,
        no_store: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => {
                opts.socket = Some(PathBuf::from(iter.next().ok_or("--socket needs a path")?));
            }
            "--tcp" => {
                opts.tcp = Some(iter.next().ok_or("--tcp needs an address")?.clone());
            }
            "--workers" => {
                opts.workers = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--workers needs a number")?,
                );
            }
            "--queue" => {
                opts.queue = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--queue needs a number")?,
                );
            }
            "--store" => {
                opts.store_dir = Some(PathBuf::from(iter.next().ok_or("--store needs a dir")?));
            }
            "--no-store" => opts.no_store = true,
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    if opts.socket.is_none() && opts.tcp.is_none() {
        return Err(format!("no endpoint given\n{USAGE}"));
    }
    if opts.no_store && opts.store_dir.is_some() {
        return Err("--store and --no-store are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("atscale-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let store = if opts.no_store {
        None
    } else {
        let opened = match &opts.store_dir {
            Some(dir) => RunStore::open_segmented(dir),
            None => RunStore::default_location_segmented(),
        };
        match opened {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("atscale-serve: cannot open run store: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut config = ServeConfig {
        store,
        ..ServeConfig::default()
    };
    if let Some(workers) = opts.workers {
        config.workers = workers.max(1);
    }
    if let Some(queue) = opts.queue {
        config.queue_capacity = queue;
    }
    let workers = config.workers;
    let queue = config.queue_capacity;
    let server = match Server::start(config, opts.tcp.as_deref(), opts.socket.as_deref()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("atscale-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = server.tcp_addr() {
        println!("atscale-serve: listening on tcp {addr}");
    }
    if let Some(path) = &opts.socket {
        println!("atscale-serve: listening on unix {}", path.display());
    }
    println!(
        "atscale-serve: {workers} workers, queue capacity {queue}; send a Shutdown frame to stop"
    );
    server.join();
    println!("atscale-serve: drained, bye");
    ExitCode::SUCCESS
}
