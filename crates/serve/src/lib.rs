//! `atscale-serve`: a long-lived experiment-serving daemon over the
//! `atscale` harness.
//!
//! The daemon accepts [`RunSpec`](atscale::RunSpec) batches over
//! newline-delimited JSON (TCP and/or a Unix socket), schedules them with
//! single-flight deduplication and bounded admission, answers cache-first
//! from a [`RunStore`](atscale::RunStore), and streams per-job telemetry
//! (progress, interval samples) plus final records back to every
//! subscribed client. Shutdown is graceful: in-flight work drains, every
//! accepted batch is answered.
//!
//! Layering:
//!
//! - [`protocol`] — the wire frames (requests, replies, JSON-lines codec);
//! - [`scheduler`] — single-flight dedup, admission control, deadlines,
//!   drain;
//! - [`server`] — sockets, connection threads, lifecycle;
//! - [`sys`] — the raw epoll/eventfd syscall shim (the crate's single
//!   sanctioned-unsafe module, mirroring `atscale-native`'s);
//! - [`reactor`] — the thread-per-core epoll serve tier (non-blocking
//!   framed I/O, per-connection write backpressure);
//! - [`router`] — deterministic consistent hashing of record keys across
//!   a shard topology;
//! - [`loadgen`] — the open-loop Poisson load-generation engine behind
//!   the `loadgen` bench binary;
//! - [`client`] — the blocking client used by `atscale-client` and tests,
//!   plus the topology-aware [`ShardedClient`].
//!
//! Everything runs on std threads; there is no async runtime — the epoll
//! tier is a hand-rolled reactor over raw syscalls.
//!
//! The stack is chaos-tested: with the non-default `faults` feature, a
//! deterministic `atscale_faults::FaultPlan` can be threaded through the
//! store, scheduler, server, and client (see `tests/chaos.rs` and
//! DESIGN.md §13). Release builds compile every injection site out; the
//! recovery machinery the faults forced into existence — the client's
//! [`RetryPolicy`], store quarantine/GC, worker-panic containment with
//! `Failed` frames — is always on.

// `deny`, not `forbid`: the epoll shim in `sys` carries the documented,
// audit-pinned `#[allow(unsafe_code)]` exception (rule 3), exactly like
// `atscale-native`'s perf shim.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod scheduler;
pub mod server;
pub mod sys;

pub use client::{Client, ClientError, RetryPolicy, ShardedClient, SubmitOptions};
pub use protocol::{Reply, Request, PROTOCOL_VERSION};
pub use router::ShardMap;
pub use scheduler::{ReplySink, Scheduler, ServeConfig, ServeStats};
pub use server::{Server, ServerHandle};
