//! `atscale-serve`: a long-lived experiment-serving daemon over the
//! `atscale` harness.
//!
//! The daemon accepts [`RunSpec`](atscale::RunSpec) batches over
//! newline-delimited JSON (TCP and/or a Unix socket), schedules them with
//! single-flight deduplication and bounded admission, answers cache-first
//! from a [`RunStore`](atscale::RunStore), and streams per-job telemetry
//! (progress, interval samples) plus final records back to every
//! subscribed client. Shutdown is graceful: in-flight work drains, every
//! accepted batch is answered.
//!
//! Layering:
//!
//! - [`protocol`] — the wire frames (requests, replies, JSON-lines codec);
//! - [`scheduler`] — single-flight dedup, admission control, deadlines,
//!   drain;
//! - [`server`] — sockets, connection threads, lifecycle;
//! - [`client`] — the blocking client used by `atscale-client` and tests.
//!
//! Everything runs on std threads; there is no async runtime.
//!
//! The stack is chaos-tested: with the non-default `faults` feature, a
//! deterministic `atscale_faults::FaultPlan` can be threaded through the
//! store, scheduler, server, and client (see `tests/chaos.rs` and
//! DESIGN.md §13). Release builds compile every injection site out; the
//! recovery machinery the faults forced into existence — the client's
//! [`RetryPolicy`], store quarantine/GC, worker-panic containment with
//! `Failed` frames — is always on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy, SubmitOptions};
pub use protocol::{Reply, Request, PROTOCOL_VERSION};
pub use scheduler::{ReplySink, Scheduler, ServeConfig, ServeStats};
pub use server::{Server, ServerHandle};
