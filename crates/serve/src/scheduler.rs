//! The serving scheduler: single-flight deduplication, bounded admission,
//! deadlines, and drain-on-shutdown over the `atscale` harness.
//!
//! One [`Job`] is one unique `(spec, cache-mode)` unit of simulation work.
//! Submissions subscribe batches of specs to jobs: a spec whose job is
//! already queued *or running* coalesces onto it (single-flight — N
//! concurrent identical requests cost one execution, every subscriber
//! receives the same record). Fresh jobs pass admission control: a full
//! queue rejects the whole batch with an explicit overloaded reply, never
//! a hang or silent drop. Workers drain the queue; per-request deadlines
//! are enforced at pop time (a job every subscriber has abandoned is
//! skipped) and again at delivery.

use crate::protocol::{
    Accepted, BatchDone, DeadlineExceeded, JobFailed, Overloaded, ProgressEvent, RecordDone, Reply,
    SampleEvent, ServerStatsReply, Submit,
};
use atscale::{Harness, RunRecord, RunSpec, RunStore};
#[cfg(feature = "faults")]
use atscale_faults::{FaultPlan, FaultRule, FaultSite};
use atscale_mmu::{MachineConfig, TelemetryHandle};
use atscale_telemetry::{FanoutRecorder, LatencyMetric, Progress, Recorder, Sample};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where replies for one connection go. The server implements this over a
/// socket writer; tests implement it over an in-memory collector.
pub trait ReplySink: Send + Sync {
    /// Delivers one frame to the client (errors are the sink's problem —
    /// a dead connection swallows its frames).
    fn send(&self, reply: &Reply);
}

/// Serving-daemon configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// The machine every run simulates.
    pub machine: MachineConfig,
    /// The run cache; `None` serves cache-less (every run executes).
    pub store: Option<RunStore>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue capacity in unique jobs (running jobs have left the
    /// queue; dedup subscriptions consume no capacity).
    pub queue_capacity: usize,
    /// Start with workers paused (maintenance/test hook: admission works,
    /// execution waits for [`Scheduler::resume`]).
    pub start_paused: bool,
    /// This daemon's shard index within its topology (v6 handshake;
    /// 0 standalone).
    pub shard: u64,
    /// Every shard's client-reachable address in shard order (v6
    /// handshake; empty standalone). `topology.len()` is the shard count
    /// the routing table is built for.
    pub topology: Vec<String>,
    /// Fault-injection plan driving the scheduler/server sites
    /// (`WorkerPanic`, `QueuePressure`, `DeadlineExpiry`, `ServerWrite`,
    /// `ServerStall`). Chaos-test machinery; absent in release builds.
    #[cfg(feature = "faults")]
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            machine: MachineConfig::haswell(),
            store: None,
            workers: std::thread::available_parallelism()
                .map_or(2, std::num::NonZero::get)
                .min(4),
            // Sized above the largest one-shot batch a stock client sends:
            // the full fig1 sweep is 13 workloads x 9 footprints x 3 page
            // sizes = 351 unique jobs.
            queue_capacity: 1024,
            start_paused: false,
            shard: 0,
            topology: Vec::new(),
            #[cfg(feature = "faults")]
            faults: None,
        }
    }
}

/// Monotonic serving counters (see [`ServerStatsReply`] for semantics).
#[derive(Debug, Default)]
pub struct ServeStats {
    executions: AtomicU64,
    cache_hits: AtomicU64,
    dedup_hits: AtomicU64,
    overloaded: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    completed: AtomicU64,
}

impl ServeStats {
    /// Fresh harness executions so far — the single-flight proof counter.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::SeqCst)
    }
}

/// Delivery accounting for one [`Submit`]: counts resolved specs and
/// closes the stream with a `BatchDone` frame.
pub(crate) struct Batch {
    sink: Arc<dyn ReplySink>,
    id: u64,
    total: usize,
    delivered: AtomicUsize,
    expired: AtomicUsize,
    failed: AtomicUsize,
    resolved: AtomicUsize,
    /// Set once the `Accepted` frame has been written. Workers delivering
    /// this batch's frames wait on it, so a cache-hit resolving faster
    /// than the admission path cannot reorder `Record` before `Accepted`
    /// on the connection.
    ready: Mutex<bool>,
    ready_cv: Condvar,
}

impl Batch {
    fn new(sink: Arc<dyn ReplySink>, id: u64, total: usize) -> Batch {
        Batch {
            sink,
            id,
            total,
            delivered: AtomicUsize::new(0),
            expired: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            resolved: AtomicUsize::new(0),
            ready: Mutex::new(false),
            ready_cv: Condvar::new(),
        }
    }

    /// The ready gate with poison recovery: the flag is a plain `bool`, so
    /// a panic in some other holder cannot leave it half-updated — taking
    /// the poisoned value is always sound, and it keeps a worker delivering
    /// frames alive instead of cascading the panic through the batch.
    fn ready_lock(&self) -> std::sync::MutexGuard<'_, bool> {
        self.ready
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn mark_ready(&self) {
        *self.ready_lock() = true;
        self.ready_cv.notify_all();
    }

    fn wait_ready(&self) {
        let mut ready = self.ready_lock();
        while !*ready {
            ready = self
                .ready_cv
                .wait(ready)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Streams the frames resolving spec `index`, then `BatchDone` once
    /// every spec of the batch is resolved. Returns how the spec was
    /// resolved (record, deadline-expired, or failed).
    fn resolve(&self, sub: &Subscriber, outcome: &JobOutcome) -> Resolution {
        self.wait_ready();
        let now = Instant::now();
        // A record-less outcome is either a contained worker panic
        // (`error` carries the panic message) or a shed job, which only
        // ever has expired subscribers: the worker removes it from the
        // dedup map under the scheduler lock before anyone else can join.
        let resolution = if outcome.error.is_some() {
            Resolution::Failed
        } else if outcome.record.is_none() || sub.deadline.is_some_and(|d| now > d) {
            Resolution::Expired
        } else {
            Resolution::Delivered
        };
        if resolution == Resolution::Failed {
            self.failed.fetch_add(1, Ordering::SeqCst);
            self.sink.send(&Reply::Failed(JobFailed {
                id: self.id,
                index: sub.index,
                label: outcome.label.clone(),
                message: outcome.error.clone().unwrap_or_default(),
            }));
        } else if resolution == Resolution::Expired {
            self.expired.fetch_add(1, Ordering::SeqCst);
            self.sink.send(&Reply::Deadline(DeadlineExceeded {
                id: self.id,
                index: sub.index,
                label: outcome.label.clone(),
            }));
        } else {
            self.delivered.fetch_add(1, Ordering::SeqCst);
            let record = outcome.record.as_ref().expect("checked above").clone();
            self.sink.send(&Reply::Record(RecordDone {
                id: self.id,
                index: sub.index,
                cached: outcome.cached,
                deduped: sub.deduped,
                source: "sim".to_string(),
                arch: record.spec.arch.to_string(),
                record,
            }));
        }
        let resolved = self.resolved.fetch_add(1, Ordering::SeqCst) + 1;
        self.sink.send(&Reply::Progress(ProgressEvent {
            id: self.id,
            progress: Progress {
                completed: resolved,
                total: self.total,
                label: outcome.label.clone(),
                wall_ms: outcome.wall_ms,
                cached: outcome.cached,
            },
        }));
        if resolved == self.total {
            self.sink.send(&Reply::BatchDone(BatchDone {
                id: self.id,
                delivered: self.delivered.load(Ordering::SeqCst) as u64,
                expired: self.expired.load(Ordering::SeqCst) as u64,
                failed: self.failed.load(Ordering::SeqCst) as u64,
            }));
        }
        resolution
    }
}

/// How one spec of a batch was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// A record was delivered.
    Delivered,
    /// The spec missed its deadline (or its job was shed).
    Expired,
    /// The spec's job failed via a contained worker panic.
    Failed,
}

/// One batch spec's subscription to a job.
struct Subscriber {
    batch: Arc<Batch>,
    /// Spec index within the batch.
    index: u64,
    deadline: Option<Instant>,
    /// Whether this subscription coalesced onto a pre-existing job.
    deduped: bool,
}

/// Forwards one subscriber's share of a running job's telemetry as
/// protocol frames ([`SampleEvent`]s).
struct SubscriberRecorder {
    sink: Arc<dyn ReplySink>,
    id: u64,
}

impl Recorder for SubscriberRecorder {
    fn sample(&self, run: &str, sample: &Sample) {
        self.sink.send(&Reply::Sample(SampleEvent {
            id: self.id,
            run: run.to_string(),
            source: "sim".to_string(),
            sample: sample.clone(),
        }));
    }

    fn latency(&self, _metric: LatencyMetric, _value: u64) {}

    fn progress(&self, _event: &Progress) {}
}

/// One unique unit of simulation work and everyone waiting on it.
struct Job {
    spec: RunSpec,
    no_cache: bool,
    subscribers: Vec<Subscriber>,
    /// Live telemetry router: subscribers requesting samples attach here.
    /// Attaching while the job is still queued takes full effect; attaching
    /// after execution started only yields samples if the job began with
    /// sampling enabled (the worker decides once, at start, whether to
    /// build a telemetry handle — a late attach to a no-telemetry job sees
    /// nothing, it cannot retroactively enable sampling).
    fanout: Arc<FanoutRecorder>,
    /// Widest sampling cadence requested by any subscriber (0 = none).
    /// Snapshotted when a worker pops the job; updates after that point
    /// (late coalescers) are ignored for the already-running execution.
    sample_interval: u64,
}

/// What resolving a job yields for its subscribers.
struct JobOutcome {
    record: Option<RunRecord>,
    /// The contained panic message when the job's worker panicked;
    /// `None` record + `None` error means the job was shed (all
    /// subscribers expired).
    error: Option<String>,
    label: String,
    cached: bool,
    wall_ms: u64,
}

#[derive(Default)]
struct SchedState {
    queue: VecDeque<String>,
    jobs: HashMap<String, Job>,
    running: usize,
    paused: bool,
    draining: bool,
}

/// The single-flight scheduler shared by every connection and worker.
pub struct Scheduler {
    config: ServeConfig,
    state: Mutex<SchedState>,
    work: Condvar,
    idle: Condvar,
    stats: ServeStats,
}

/// Outcome of admitting one submission.
enum Admission {
    Accepted(Accepted, Arc<Batch>),
    Overloaded(Overloaded),
    Draining,
}

impl Scheduler {
    /// A scheduler with the given configuration (workers are spawned by
    /// the server, not here).
    pub fn new(config: ServeConfig) -> Scheduler {
        let paused = config.start_paused;
        Scheduler {
            config,
            state: Mutex::new(SchedState {
                paused,
                ..SchedState::default()
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            stats: ServeStats::default(),
        }
    }

    /// The scheduler's monotonic counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The scheduler state with explicit poison recovery.
    ///
    /// Every mutation of `SchedState` is transactional — queue push plus
    /// job insert, or job removal plus counter update — and a worker panic
    /// between the two halves is already prevented by the `catch_unwind`
    /// boundary around job execution (the only code a worker runs that can
    /// panic while *not* holding this lock). Recovering from poison is
    /// therefore sound, and it keeps the server serving after a contained
    /// panic instead of wedging every connection on a poisoned mutex.
    fn locked(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Dedup key for one spec under this server's machine config: the run
    /// cache key, partitioned by cache mode (a `no_cache` submission must
    /// not coalesce onto — or be answered by — a cache-permitted job).
    fn job_key(&self, spec: &RunSpec, no_cache: bool) -> String {
        let base = RunStore::key(spec, &self.config.machine);
        if no_cache {
            format!("{base}!fresh")
        } else {
            base
        }
    }

    /// Admits one submission atomically: either every spec is subscribed
    /// (new job or single-flight coalesce) or — when the fresh jobs needed
    /// would overflow the queue — nothing is and the whole batch is
    /// rejected. Replies (`Accepted`/`Overloaded`/`Error`) are sent on
    /// `sink`; the record stream follows asynchronously.
    pub fn submit(&self, req: &Submit, sink: Arc<dyn ReplySink>) {
        match self.admit(req, Arc::clone(&sink)) {
            Admission::Accepted(a, batch) => {
                sink.send(&Reply::Accepted(a));
                // Only now may workers deliver this batch's record frames
                // (they wait on the gate), keeping per-connection order.
                batch.mark_ready();
            }
            Admission::Overloaded(o) => {
                self.stats.overloaded.fetch_add(1, Ordering::SeqCst);
                sink.send(&Reply::Overloaded(o));
            }
            Admission::Draining => sink.send(&Reply::Error(crate::protocol::ErrorReply {
                id: req.id,
                message: "server is draining; submission rejected".to_string(),
            })),
        }
    }

    fn admit(&self, req: &Submit, sink: Arc<dyn ReplySink>) -> Admission {
        let deadline = req
            .deadline_ms
            // analyze:allow(determinism): deadlines are wall-clock by definition; they gate delivery and never enter a RunRecord or its cache key
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut state = self.locked();
        if state.draining {
            return Admission::Draining;
        }
        #[cfg(feature = "faults")]
        if self.fault(FaultSite::QueuePressure).is_some() {
            // Injected pressure: reject exactly as a full queue would —
            // atomically, nothing enqueued, safe to retry.
            return Admission::Overloaded(Overloaded {
                id: req.id,
                queued: state.queue.len() as u64,
                capacity: self.config.queue_capacity as u64,
            });
        }
        // First pass: how many *fresh* jobs would this batch enqueue?
        let mut fresh = 0usize;
        let mut batch_keys: Vec<String> = Vec::with_capacity(req.specs.len());
        for spec in &req.specs {
            let key = self.job_key(spec, req.no_cache);
            if !state.jobs.contains_key(&key) && !batch_keys.contains(&key) {
                fresh += 1;
            }
            batch_keys.push(key);
        }
        if state.queue.len() + fresh > self.config.queue_capacity {
            return Admission::Overloaded(Overloaded {
                id: req.id,
                queued: state.queue.len() as u64,
                capacity: self.config.queue_capacity as u64,
            });
        }
        // Second pass: subscribe every spec.
        let batch = Arc::new(Batch::new(Arc::clone(&sink), req.id, req.specs.len()));
        let mut enqueued = 0u64;
        let mut deduped = 0u64;
        for (index, (spec, key)) in req.specs.iter().zip(batch_keys).enumerate() {
            let existed = state.jobs.contains_key(&key);
            let job = state.jobs.entry(key.clone()).or_insert_with(|| Job {
                spec: *spec,
                no_cache: req.no_cache,
                subscribers: Vec::new(),
                fanout: Arc::new(FanoutRecorder::new()),
                sample_interval: 0,
            });
            job.subscribers.push(Subscriber {
                batch: Arc::clone(&batch),
                index: index as u64,
                deadline,
                deduped: existed,
            });
            if req.sample_interval > 0 {
                job.sample_interval = job.sample_interval.max(req.sample_interval);
                job.fanout.attach(Arc::new(SubscriberRecorder {
                    sink: Arc::clone(&sink),
                    id: req.id,
                }));
            }
            if existed {
                deduped += 1;
                self.stats.dedup_hits.fetch_add(1, Ordering::SeqCst);
            } else {
                enqueued += 1;
                state.queue.push_back(key);
            }
        }
        drop(state);
        self.work.notify_all();
        Admission::Accepted(
            Accepted {
                id: req.id,
                total: req.specs.len() as u64,
                enqueued,
                deduped,
            },
            batch,
        )
    }

    /// Defensive bookkeeping for a popped key whose map entry is missing —
    /// unreachable while the admission invariant holds (entry inserted
    /// before the key is enqueued; removal only by the popping worker).
    /// Undoes the `running` count and wakes drain waiters so
    /// [`Scheduler::wait_drained`] cannot wedge on the lost job.
    #[cold]
    fn abandon_lost_job(&self) {
        let mut state = self.locked();
        state.running -= 1;
        let drained = state.queue.is_empty() && state.running == 0;
        drop(state);
        if drained {
            self.idle.notify_all();
        }
    }

    /// One worker thread's loop: pop, execute, deliver — until drained.
    pub fn worker_loop(&self) {
        loop {
            let mut state = self.locked();
            let key = loop {
                if !state.paused {
                    if let Some(key) = state.queue.pop_front() {
                        break key;
                    }
                    if state.draining {
                        return;
                    }
                }
                state = self
                    .work
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            };
            // A job counts as `running` from pop until its replies are
            // delivered, so `wait_drained` cannot return while the final
            // frames of a drain are still being written.
            state.running += 1;
            // analyze:allow(determinism): deadline expiry check — wall-clock gates whether work is shed, never what a record contains
            let now = Instant::now();
            // `get` rather than indexing: a popped key always has a map
            // entry (admission inserts before enqueueing), but if that
            // invariant ever broke, a missing entry must not panic the
            // worker outside its containment boundary — treat it as shed.
            let all_expired = state.jobs.get(&key).is_none_or(|job| {
                job.subscribers
                    .iter()
                    .all(|s| s.deadline.is_some_and(|d| now > d))
            });
            // Injected expiry forces the shed path: every subscriber is
            // treated as having abandoned the job.
            #[cfg(feature = "faults")]
            let all_expired = all_expired || self.fault(FaultSite::DeadlineExpiry).is_some();
            let outcome;
            let job;
            if all_expired {
                // Every waiter has abandoned the job: shed it without
                // executing (the other half of admission control). Remove
                // it under the lock so nobody coalesces onto a job that
                // will never produce a record. A missing entry (possible
                // only if the admission invariant broke) is skipped, not
                // panicked on — workers must stay up.
                let Some(shed) = state.jobs.remove(&key) else {
                    drop(state);
                    self.abandon_lost_job();
                    continue;
                };
                job = shed;
                drop(state);
                outcome = JobOutcome {
                    record: None,
                    error: None,
                    label: job.spec.label(),
                    cached: false,
                    wall_ms: 0,
                };
            } else {
                // Snapshot what execution needs; the job stays in the map
                // so single-flight covers running jobs too. Presence is
                // guaranteed by the admission invariant (insert before
                // enqueue); if it ever broke, skip rather than panic.
                let Some(queued) = state.jobs.get(&key) else {
                    drop(state);
                    self.abandon_lost_job();
                    continue;
                };
                let spec = queued.spec;
                let no_cache = queued.no_cache;
                let fanout = Arc::clone(&queued.fanout);
                let sample_interval = queued.sample_interval;
                drop(state);

                // analyze:allow(determinism): wall_ms is progress metadata on the reply stream, not part of the RunRecord or its key
                let start = Instant::now();
                // Contain worker panics: a panicking job must fail *its
                // subscribers* with an explicit `Failed` frame, not kill
                // the worker thread and strand the single-flight entry
                // (which would wedge every coalesced subscriber forever).
                let execution = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.execute(&spec, no_cache, &fanout, sample_interval)
                }));
                outcome = match execution {
                    Ok((record, cached)) => {
                        if cached {
                            self.stats.cache_hits.fetch_add(1, Ordering::SeqCst);
                        } else {
                            self.stats.executions.fetch_add(1, Ordering::SeqCst);
                        }
                        JobOutcome {
                            label: record.spec.label(),
                            record: Some(record),
                            error: None,
                            cached,
                            wall_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
                        }
                    }
                    Err(panic) => {
                        self.stats.failed.fetch_add(1, Ordering::SeqCst);
                        JobOutcome {
                            record: None,
                            error: Some(panic_message(panic.as_ref())),
                            label: spec.label(),
                            cached: false,
                            wall_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
                        }
                    }
                };
                // Only the popping worker removes the key it popped, so
                // the entry is still there; if that single-flight
                // invariant ever broke, skip delivery rather than panic.
                job = match self.locked().jobs.remove(&key) {
                    Some(done) => done,
                    None => {
                        self.abandon_lost_job();
                        continue;
                    }
                };
            }
            for sub in &job.subscribers {
                if sub.batch.resolve(sub, &outcome) == Resolution::Expired {
                    self.stats.expired.fetch_add(1, Ordering::SeqCst);
                }
            }
            self.stats.completed.fetch_add(1, Ordering::SeqCst);
            let mut state = self.locked();
            state.running -= 1;
            let drained = state.queue.is_empty() && state.running == 0;
            drop(state);
            if drained {
                self.idle.notify_all();
            }
        }
    }

    /// Executes one job: cache-first through the harness, or fresh with a
    /// write-back when the submission bypassed the cache.
    fn execute(
        &self,
        spec: &RunSpec,
        no_cache: bool,
        fanout: &Arc<FanoutRecorder>,
        sample_interval: u64,
    ) -> (RunRecord, bool) {
        #[cfg(feature = "faults")]
        if self.fault(FaultSite::WorkerPanic).is_some() {
            panic!("injected fault: WorkerPanic mid-job");
        }
        let telemetry = (fanout.target_count() > 0 || sample_interval > 0).then(|| {
            TelemetryHandle::new(Arc::clone(fanout) as Arc<dyn Recorder>, sample_interval)
        });
        if no_cache {
            let record =
                atscale::execute_run_with_telemetry(spec, &self.config.machine, telemetry.as_ref());
            if let Some(store) = &self.config.store {
                let _ = store.save(&RunStore::key(spec, &self.config.machine), &record);
            }
            return (record, false);
        }
        let mut harness = Harness::new().with_config(self.config.machine);
        if let Some(store) = &self.config.store {
            harness = harness.with_store(store.clone());
        }
        if let Some(handle) = telemetry {
            harness = harness.with_telemetry(handle);
        }
        harness.run_detailed(spec)
    }

    /// Begins draining: new submissions are rejected, queued and running
    /// jobs complete and deliver. Idempotent.
    pub fn drain(&self) {
        let mut state = self.locked();
        state.draining = true;
        // A paused scheduler must still finish its backlog to drain.
        state.paused = false;
        drop(state);
        self.work.notify_all();
    }

    /// Blocks until the queue is empty and no job is running. Call after
    /// [`Scheduler::drain`] for graceful shutdown.
    pub fn wait_drained(&self) {
        let mut state = self.locked();
        while !state.queue.is_empty() || state.running > 0 {
            state = self
                .idle
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pauses workers after their current job (maintenance/test hook:
    /// admission and dedup keep working, execution stalls).
    pub fn pause(&self) {
        self.locked().paused = true;
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        let mut state = self.locked();
        state.paused = false;
        drop(state);
        self.work.notify_all();
    }

    /// The run cache, if this server has one.
    pub fn store(&self) -> Option<&RunStore> {
        self.config.store.as_ref()
    }

    /// The configured fault-injection plan, if any (chaos machinery; the
    /// server hands it to connection writers for the socket sites).
    #[cfg(feature = "faults")]
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.config.faults.as_ref()
    }

    /// Records an arrival at `site` against the configured plan.
    #[cfg(feature = "faults")]
    fn fault(&self, site: FaultSite) -> Option<FaultRule> {
        self.config
            .faults
            .as_ref()
            .and_then(|plan| plan.check(site))
    }

    /// Worker-thread count the server should spawn.
    pub fn workers(&self) -> usize {
        self.config.workers.max(1)
    }

    /// Admission-queue capacity, advertised to clients in the handshake so
    /// they can chunk oversized batches instead of getting `Overloaded`.
    pub fn queue_capacity(&self) -> usize {
        self.config.queue_capacity
    }

    /// This daemon's shard index (v6 handshake; 0 standalone).
    pub fn shard(&self) -> u64 {
        self.config.shard
    }

    /// The topology's shard count (v6 handshake; 1 standalone).
    pub fn shards(&self) -> u64 {
        (self.config.topology.len() as u64).max(1)
    }

    /// Every shard's address in shard order (v6 handshake; empty
    /// standalone).
    pub fn topology(&self) -> &[String] {
        &self.config.topology
    }

    /// Counter snapshot for the `server_stats` reply.
    pub fn stats_reply(&self) -> ServerStatsReply {
        let state = self.locked();
        ServerStatsReply {
            executions: self.stats.executions.load(Ordering::SeqCst),
            cache_hits: self.stats.cache_hits.load(Ordering::SeqCst),
            dedup_hits: self.stats.dedup_hits.load(Ordering::SeqCst),
            overloaded: self.stats.overloaded.load(Ordering::SeqCst),
            expired: self.stats.expired.load(Ordering::SeqCst),
            failed: self.stats.failed.load(Ordering::SeqCst),
            queued: state.queue.len() as u64,
            running: state.running as u64,
            completed: self.stats.completed.load(Ordering::SeqCst),
            draining: state.draining,
        }
    }
}

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` with a string literal or a formatted message; anything else
/// gets a generic label).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.locked();
        f.debug_struct("Scheduler")
            .field("queued", &state.queue.len())
            .field("running", &state.running)
            .field("draining", &state.draining)
            .finish_non_exhaustive()
    }
}
