//! The wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one JSON object (or bare string for unit requests) on one
//! line. Requests flow client → server, replies flow back; a connection
//! carries any number of requests, and replies to a submission are
//! *streamed* — progress, interval samples, then one record per spec as
//! each completes, closed by a batch-done frame. Frames for concurrent
//! requests on one connection are correlated by the client-chosen request
//! `id`.
//!
//! The enums serialize externally tagged (`{"Submit": {...}}`), matching
//! the vendored serde derive; every variant must round-trip, which the
//! `protocol-roundtrip` audit rule enforces by requiring each variant to
//! appear in `tests/protocol_roundtrip.rs`.

use atscale::{RunRecord, RunSpec, StoreStats};
use atscale_telemetry::{Progress, Sample};
use serde::{Deserialize, Serialize};

pub use atscale::results::{CompactStats, GroupSummary, QueryFilter, QueryResult, SegStats};

/// Protocol revision carried in the hello/welcome handshake. Bump on any
/// frame-shape change.
///
/// v4: [`RecordDone`] and [`SampleEvent`] carry the telemetry schema-v3
/// `source` tag (`"sim"` for everything the daemon produces today;
/// `"native"` is reserved for a future counter-replay path). The vendored
/// serde derive has no field defaulting, so v3 frames do not decode —
/// client and server are co-versioned in this repository and the handshake
/// rejects mismatches explicitly.
///
/// v5: results-plane verbs. [`Request::Query`] answers aggregate
/// statistics (count, mean/p50/p99 WCPI, fitted β/c) straight from the
/// segment store's per-group state in `O(groups)`;
/// [`Request::Compact`] rewrites the store to its live rows;
/// [`Request::StoreSegStats`] reports segment-store occupancy. All three
/// answer [`Reply::Error`] on a store-less or legacy-JSON (non-segmented)
/// server.
///
/// v6: sharded topology in the handshake. [`Welcome`] carries the
/// answering daemon's shard index (`shard`), the topology size
/// (`shards`), and the full address list in shard order (`topology`), so
/// a client connecting to *any* member discovers the whole topology and
/// routes each spec to the shard that owns its record hash (see
/// [`crate::router::ShardMap`]). A standalone daemon answers
/// `shard = 0, shards = 1` with an empty address list. Routing is
/// advisory on the wire — a daemon executes whatever it is sent — but
/// the sharded client routes every spec, which is what keeps
/// single-flight dedup and the record cache exact per shard.
///
/// v7: the translation-architecture axis. [`Welcome`] lists the
/// architectures the server can simulate (`architectures`); submitted
/// [`RunSpec`]s carry an `arch` field (omitted when baseline, so v6-era
/// spec JSON still decodes); [`RecordDone`] echoes the resolved spec's
/// architecture (`arch`); [`QueryFilter`] accepts an `arch` restriction
/// and [`GroupSummary`] reports each group's architecture, making the
/// fig1-style β/c fit queryable per architecture.
pub const PROTOCOL_VERSION: u64 = 7;

/// Client → server handshake: announces the client's protocol revision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// The client's [`PROTOCOL_VERSION`].
    pub protocol: u64,
}

/// Client → server: submit a batch of runs ([`atscale::Harness::run_many`]
/// semantics over the wire — records stream back as they finish, labelled
/// with their spec index, so the client can reassemble input order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submit {
    /// Client-chosen correlation id echoed on every reply frame.
    pub id: u64,
    /// The specs to run; a single run is a batch of one.
    pub specs: Vec<RunSpec>,
    /// Per-request deadline, milliseconds from admission. Runs completing
    /// after it yield [`DeadlineExceeded`] frames instead of records.
    pub deadline_ms: Option<u64>,
    /// Bypass the run cache (forces fresh execution; the record is still
    /// written back to the store unless the server runs cache-less).
    pub no_cache: bool,
    /// Interval-sampling cadence in retired instructions (0 = no sample
    /// stream). Sampled series stream back as [`SampleEvent`] frames.
    pub sample_interval: u64,
}

/// All client → server frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake; the server answers with [`Reply::Welcome`].
    Hello(Hello),
    /// Batch submission; answered by `Accepted` or `Overloaded`, then a
    /// reply stream closed by `BatchDone`.
    Submit(Submit),
    /// Run-cache occupancy; answered by [`Reply::CacheStats`].
    CacheStats,
    /// Scheduler counters; answered by [`Reply::ServerStats`].
    ServerStats,
    /// Aggregate query over the segment-backed results store; answered by
    /// [`Reply::QueryResult`], or [`Reply::Error`] when the server has no
    /// segment store (v5).
    Query(QueryFilter),
    /// Compact the segment-backed results store down to its live rows;
    /// answered by [`Reply::Compacted`], or [`Reply::Error`] when the
    /// server has no segment store (v5).
    Compact,
    /// Segment-store occupancy; answered by [`Reply::StoreSegStats`], or
    /// [`Reply::Error`] when the server has no segment store (v5).
    StoreSegStats,
    /// Graceful shutdown: drain in-flight jobs, reject new submissions,
    /// exit 0. Answered by [`Reply::ShuttingDown`].
    Shutdown,
}

/// Server → client handshake answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Welcome {
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol: u64,
    /// Server identity string (name/version).
    pub server: String,
    /// Number of worker threads executing runs.
    pub workers: u64,
    /// Admission-queue capacity in unique jobs. Batches whose fresh-job
    /// count would overflow it are rejected `Overloaded`, so clients
    /// submitting more specs than this must chunk
    /// ([`crate::Client::run_chunked`] does).
    pub queue_capacity: u64,
    /// This daemon's shard index within its topology (v6; 0 standalone).
    pub shard: u64,
    /// Total shard count in the topology (v6; 1 standalone).
    pub shards: u64,
    /// Every shard's client-reachable address, in shard-index order (v6;
    /// empty standalone). Lets a client that connected to any one member
    /// build the full routing table.
    pub topology: Vec<String>,
    /// Translation architectures this server can simulate, in
    /// [`atscale::ArchKind::ALL`] order (v7).
    pub architectures: Vec<String>,
}

/// A submission passed admission control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accepted {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Specs in the batch.
    pub total: u64,
    /// Fresh jobs this submission enqueued.
    pub enqueued: u64,
    /// Specs coalesced onto already-queued/running identical jobs
    /// (single-flight dedup) or duplicated within the batch itself.
    pub deduped: u64,
}

/// A submission was rejected because the admission queue is full. The
/// whole batch is rejected atomically — nothing was enqueued.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Overloaded {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Jobs currently queued (excludes running jobs).
    pub queued: u64,
    /// The admission queue's capacity.
    pub capacity: u64,
}

/// One spec of a batch finished; `record` carries the full measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecordDone {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Index of this spec in the submitted batch (records stream in
    /// completion order; reassemble by index).
    pub index: u64,
    /// `true` if served from the on-disk run cache.
    pub cached: bool,
    /// `true` if this subscription coalesced onto a job another request
    /// (or another spec of this batch) put in flight.
    pub deduped: bool,
    /// Measurement provenance (telemetry schema v3): `"sim"` for records
    /// the daemon executed or served from its cache.
    pub source: String,
    /// Translation architecture the record was measured on (v7) —
    /// echoes the resolved spec's `arch` label.
    pub arch: String,
    /// The completed run.
    pub record: RunRecord,
}

/// A spec's result arrived after the request's deadline; the record is
/// withheld (it still lands in the cache for future requests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlineExceeded {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Index of the expired spec in the submitted batch.
    pub index: u64,
    /// Human label of the expired spec.
    pub label: String,
}

/// A spec's job failed server-side — its worker panicked mid-run and the
/// panic was contained ([`crate::Scheduler`]'s `catch_unwind` layer). The
/// spec gets no record; resubmitting is safe and will re-execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobFailed {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Index of the failed spec in the submitted batch.
    pub index: u64,
    /// Human label of the failed spec.
    pub label: String,
    /// The contained panic's message.
    pub message: String,
}

/// Every spec of a batch has been resolved (record, deadline, or failure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchDone {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Records delivered.
    pub delivered: u64,
    /// Specs that missed their deadline.
    pub expired: u64,
    /// Specs whose jobs failed (contained worker panics).
    pub failed: u64,
}

/// A streamed sweep-progress event (one per resolved spec, mirroring the
/// harness's `run_many` progress stream).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// The progress payload (PR 2 telemetry schema).
    pub progress: Progress,
}

/// A streamed interval sample from a running job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleEvent {
    /// Correlation id of the [`Submit`].
    pub id: u64,
    /// Label of the run the sample belongs to.
    pub run: String,
    /// Measurement provenance (telemetry schema v3): `"sim"` for samples
    /// streamed out of the daemon's workers.
    pub source: String,
    /// The sample payload (PR 2 telemetry schema).
    pub sample: Sample,
}

/// Scheduler/serving counters, for operators and the single-flight tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStatsReply {
    /// Fresh harness executions (cache hits and dedup subscriptions
    /// excluded) — the single-flight proof counter.
    pub executions: u64,
    /// Runs answered from the on-disk cache.
    pub cache_hits: u64,
    /// Specs coalesced onto in-flight identical jobs.
    pub dedup_hits: u64,
    /// Submissions rejected by admission control.
    pub overloaded: u64,
    /// Specs resolved past their deadline.
    pub expired: u64,
    /// Jobs that failed via contained worker panics.
    pub failed: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs fully resolved since startup.
    pub completed: u64,
    /// `true` once a shutdown has been requested.
    pub draining: bool,
}

/// A request failed server-side (bad frame, unknown workload, …). The
/// connection stays open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Correlation id, when the failing request carried one (0 otherwise).
    pub id: u64,
    /// Human-readable description.
    pub message: String,
}

/// All server → client frames.
// `Record` dominates the size because `RunRecord` carries full counter
// state; boxing it is not an option (the vendored serde derive has no
// `Box<T>` impl), and reply frames are transient stack values.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Reply {
    /// Handshake answer.
    Welcome(Welcome),
    /// Submission admitted.
    Accepted(Accepted),
    /// Submission rejected: queue full. Explicit, never a hang.
    Overloaded(Overloaded),
    /// One spec resolved with a record.
    Record(RecordDone),
    /// One spec resolved past its deadline.
    Deadline(DeadlineExceeded),
    /// One spec's job failed (contained worker panic); no record follows.
    Failed(JobFailed),
    /// Batch fully resolved.
    BatchDone(BatchDone),
    /// Streamed progress.
    Progress(ProgressEvent),
    /// Streamed interval sample.
    Sample(SampleEvent),
    /// Run-cache occupancy ([`atscale::RunStore::stats`] over the wire).
    CacheStats(StoreStats),
    /// Scheduler counters.
    ServerStats(ServerStatsReply),
    /// Aggregate answer to a [`Request::Query`] (v5).
    QueryResult(QueryResult),
    /// What a [`Request::Compact`] did (v5).
    Compacted(CompactStats),
    /// Segment-store occupancy ([`atscale::RunStore::seg_stats`] over the
    /// wire, v5).
    StoreSegStats(SegStats),
    /// Request failed; connection stays usable.
    Error(ErrorReply),
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
}

/// Encodes one frame as a JSON line (no trailing newline).
pub fn encode<T: Serialize>(frame: &T) -> String {
    serde_json::to_string(frame).expect("protocol frames serialize")
}

/// Decodes one JSON line into a frame.
///
/// # Errors
///
/// Returns a human-readable description when the line is not valid JSON or
/// not a known frame.
pub fn decode<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line).map_err(|e| format!("bad frame {line:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_single_lines() {
        let frame = Request::Submit(Submit {
            id: 7,
            specs: Vec::new(),
            deadline_ms: Some(250),
            no_cache: true,
            sample_interval: 10_000,
        });
        let line = encode(&frame);
        assert!(!line.contains('\n'));
        assert_eq!(decode::<Request>(&line).unwrap(), frame);
    }

    #[test]
    fn unit_requests_decode_from_bare_strings() {
        assert_eq!(
            decode::<Request>("\"Shutdown\"").unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            decode::<Request>(&encode(&Request::CacheStats)).unwrap(),
            Request::CacheStats
        );
    }

    #[test]
    fn junk_lines_are_rejected_with_context() {
        let err = decode::<Request>("{not json").unwrap_err();
        assert!(err.contains("bad frame"));
        let err = decode::<Request>("{\"Nope\":1}").unwrap_err();
        assert!(err.contains("Nope") || err.contains("variant"), "{err}");
    }
}
