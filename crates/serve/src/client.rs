//! The blocking client: connect, submit, stream the reply frames.
//!
//! One [`Client`] is one connection. Requests are written as JSON lines;
//! submissions stream back `Accepted` → (`Sample` | `Progress` | `Record`
//! | `Deadline`)* → `BatchDone`, which [`Client::run_many`] folds back
//! into the harness's `run_many` contract: records in spec order.

use crate::protocol::{
    self, Hello, Overloaded, Reply, Request, ServerStatsReply, Submit, Welcome, PROTOCOL_VERSION,
};
use atscale::{RunRecord, RunSpec, StoreStats};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Chunk size for [`Client::run_chunked`] when the server's capacity is
/// unknown (handshake skipped).
const FALLBACK_CHUNK: usize = 128;
/// First backoff after an `Overloaded` rejection; doubles per retry.
const BACKOFF_START: Duration = Duration::from_millis(50);
/// Backoff ceiling between `Overloaded` retries.
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Consecutive `Overloaded` rejections of one chunk before giving up.
const MAX_OVERLOAD_RETRIES: u32 = 64;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped mid-stream.
    Io(std::io::Error),
    /// The server sent something outside the protocol.
    Protocol(String),
    /// The submission was rejected by admission control — back off and
    /// retry, the server is explicitly telling you it is full.
    Overloaded(Overloaded),
    /// The server reported a request error (draining, bad batch, …).
    Server(String),
    /// Some specs resolved past the request deadline; their batch indices
    /// are listed.
    Expired(Vec<u64>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Overloaded(o) => write!(
                f,
                "server overloaded ({}/{} jobs queued)",
                o.queued, o.capacity
            ),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Expired(idx) => write!(f, "{} spec(s) missed the deadline", idx.len()),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Per-submission options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Deadline in milliseconds from admission (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Bypass the server's run cache.
    pub no_cache: bool,
    /// Interval-sampling cadence (0 = no sample stream).
    pub sample_interval: u64,
}

/// A blocking connection to an `atscale-serve` daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    /// The server's admission-queue capacity, learned from the `Welcome`
    /// handshake (0 until [`Client::hello`] has run). Sizes
    /// [`Client::run_chunked`] batches.
    server_capacity: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .field("server_capacity", &self.server_capacity)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to `target`: `unix:<path>` for a Unix socket, anything
    /// else as a TCP `host:port`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established.
    pub fn connect(target: &str) -> std::io::Result<Client> {
        match target.strip_prefix("unix:") {
            Some(path) => Self::connect_unix(Path::new(path)),
            None => Self::connect_tcp(target),
        }
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Frames are small and latency-bound; Nagle would add ~40 ms per
        // round-trip.
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self::from_halves(Box::new(read_half), Box::new(stream)))
    }

    /// Connects over a Unix socket.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established (or
    /// always, on non-Unix platforms).
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        #[cfg(unix)]
        {
            let stream = UnixStream::connect(path)?;
            let read_half = stream.try_clone()?;
            Ok(Self::from_halves(Box::new(read_half), Box::new(stream)))
        }
        #[cfg(not(unix))]
        {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("unix sockets unavailable: {}", path.display()),
            ))
        }
    }

    fn from_halves(read: Box<dyn Read + Send>, write: Box<dyn Write + Send>) -> Client {
        Client {
            reader: BufReader::new(read),
            writer: write,
            next_id: 1,
            server_capacity: 0,
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = protocol::encode(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "server closed the connection".to_string(),
                ));
            }
            if !line.trim().is_empty() {
                return protocol::decode(line.trim()).map_err(ClientError::Protocol);
            }
        }
    }

    /// Performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, protocol mismatch, or an unexpected reply.
    pub fn hello(&mut self) -> Result<Welcome, ClientError> {
        self.send(&Request::Hello(Hello {
            protocol: PROTOCOL_VERSION,
        }))?;
        match self.read_reply()? {
            Reply::Welcome(w) => {
                self.server_capacity = w.queue_capacity;
                Ok(w)
            }
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// The server's advertised admission-queue capacity (`None` before
    /// [`Client::hello`]).
    pub fn server_capacity(&self) -> Option<u64> {
        (self.server_capacity > 0).then_some(self.server_capacity)
    }

    /// Submits a batch and blocks until every spec resolves, returning
    /// records in spec order — `Harness::run_many` over the wire.
    ///
    /// # Errors
    ///
    /// Fails on rejection ([`ClientError::Overloaded`] /
    /// [`ClientError::Server`]), connection loss, or missed deadlines.
    pub fn run_many(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
    ) -> Result<Vec<RunRecord>, ClientError> {
        self.run_many_with(specs, opts, |_| {})
    }

    /// [`Client::run_many`] with a frame observer: every streamed reply
    /// (samples, progress, records) passes through `on_event` before the
    /// records are reassembled.
    ///
    /// # Errors
    ///
    /// As [`Client::run_many`].
    pub fn run_many_with(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
        mut on_event: impl FnMut(&Reply),
    ) -> Result<Vec<RunRecord>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Submit(Submit {
            id,
            specs: specs.to_vec(),
            deadline_ms: opts.deadline_ms,
            no_cache: opts.no_cache,
            sample_interval: opts.sample_interval,
        }))?;
        let mut slots: Vec<Option<RunRecord>> = vec![None; specs.len()];
        let mut expired: Vec<u64> = Vec::new();
        loop {
            let reply = self.read_reply()?;
            on_event(&reply);
            match reply {
                Reply::Accepted(a) if a.id == id => {}
                Reply::Overloaded(o) if o.id == id => return Err(ClientError::Overloaded(o)),
                Reply::Error(e) if e.id == id => return Err(ClientError::Server(e.message)),
                Reply::Record(r) if r.id == id => {
                    let index = usize::try_from(r.index)
                        .map_err(|_| ClientError::Protocol("index overflow".to_string()))?;
                    let slot = slots.get_mut(index).ok_or_else(|| {
                        ClientError::Protocol(format!("record index {index} out of range"))
                    })?;
                    *slot = Some(r.record);
                }
                Reply::Deadline(d) if d.id == id => expired.push(d.index),
                Reply::BatchDone(b) if b.id == id => break,
                Reply::Sample(_) | Reply::Progress(_) => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )))
                }
            }
        }
        if !expired.is_empty() {
            expired.sort_unstable();
            return Err(ClientError::Expired(expired));
        }
        slots
            .into_iter()
            .map(|s| {
                s.ok_or_else(|| ClientError::Protocol("batch done with missing record".to_string()))
            })
            .collect()
    }

    /// [`Client::run_many`] for batches of any size: splits `specs` into
    /// chunks the server's admission queue can hold (sized from the
    /// `Welcome` handshake) and backs off and retries a chunk when the
    /// server answers `Overloaded`, per that reply's contract. Records
    /// come back in spec order, exactly as `run_many`.
    ///
    /// Call [`Client::hello`] first so the chunk size matches the server;
    /// without it a conservative fallback is used. A `deadline_ms` applies
    /// per chunk, from that chunk's admission.
    ///
    /// # Errors
    ///
    /// As [`Client::run_many`], except `Overloaded` is only surfaced after
    /// the retry budget is exhausted (the server stayed full for minutes).
    pub fn run_chunked(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
    ) -> Result<Vec<RunRecord>, ClientError> {
        self.run_chunked_with(specs, opts, |_| {})
    }

    /// [`Client::run_chunked`] with a frame observer, as
    /// [`Client::run_many_with`].
    ///
    /// # Errors
    ///
    /// As [`Client::run_chunked`].
    pub fn run_chunked_with(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
        mut on_event: impl FnMut(&Reply),
    ) -> Result<Vec<RunRecord>, ClientError> {
        let chunk = self.chunk_size();
        let mut records = Vec::with_capacity(specs.len());
        let mut offset = 0u64;
        for chunk_specs in specs.chunks(chunk) {
            let mut backoff = BACKOFF_START;
            let mut rejections = 0u32;
            loop {
                match self.run_many_with(chunk_specs, opts, &mut on_event) {
                    Ok(mut chunk_records) => {
                        records.append(&mut chunk_records);
                        break;
                    }
                    Err(ClientError::Overloaded(o)) => {
                        rejections += 1;
                        if rejections >= MAX_OVERLOAD_RETRIES {
                            return Err(ClientError::Overloaded(o));
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_MAX);
                    }
                    // Rebase chunk-local spec indices onto the full batch.
                    Err(ClientError::Expired(indices)) => {
                        return Err(ClientError::Expired(
                            indices.into_iter().map(|i| i + offset).collect(),
                        ));
                    }
                    Err(e) => return Err(e),
                }
            }
            offset += chunk_specs.len() as u64;
        }
        Ok(records)
    }

    /// How many specs [`Client::run_chunked`] submits per batch: half the
    /// advertised queue capacity, leaving admission headroom for jobs
    /// already queued and for other clients.
    fn chunk_size(&self) -> usize {
        match usize::try_from(self.server_capacity) {
            Ok(0) | Err(_) => FALLBACK_CHUNK,
            Ok(capacity) => (capacity / 2).max(1),
        }
    }

    /// Fetches the server's run-cache occupancy.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unexpected reply.
    pub fn cache_stats(&mut self) -> Result<StoreStats, ClientError> {
        self.send(&Request::CacheStats)?;
        match self.read_reply()? {
            Reply::CacheStats(s) => Ok(s),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected CacheStats, got {other:?}"
            ))),
        }
    }

    /// Fetches the scheduler's counters.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unexpected reply.
    pub fn server_stats(&mut self) -> Result<ServerStatsReply, ClientError> {
        self.send(&Request::ServerStats)?;
        match self.read_reply()? {
            Reply::ServerStats(s) => Ok(s),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected ServerStats, got {other:?}"
            ))),
        }
    }

    /// Requests graceful shutdown; the server acknowledges, drains, and
    /// exits.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.read_reply()? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}
