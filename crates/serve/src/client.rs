//! The blocking client: connect, submit, stream the reply frames.
//!
//! One [`Client`] is one connection. Requests are written as JSON lines;
//! submissions stream back `Accepted` → (`Sample` | `Progress` | `Record`
//! | `Deadline` | `Failed`)* → `BatchDone`, which [`Client::run_many`]
//! folds back into the harness's `run_many` contract: records in spec
//! order.
//!
//! Transient failures are handled by a unified [`RetryPolicy`]: capped
//! exponential backoff with deterministic jitter, retrying **only**
//! idempotent rejections (`Overloaded` — the batch was rejected
//! atomically, nothing was enqueued, so resubmission cannot
//! double-execute). Everything else — connection loss, protocol breaks,
//! server errors, failed jobs — surfaces immediately as an explicit
//! error, never a silent retry and never a hang.

use crate::protocol::{
    self, CompactStats, Hello, Overloaded, QueryFilter, QueryResult, Reply, Request, SegStats,
    ServerStatsReply, Submit, Welcome, PROTOCOL_VERSION,
};
use crate::router::ShardMap;
use atscale::{RunRecord, RunSpec, StoreStats};
use atscale_mmu::MachineConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Chunk size for [`Client::run_chunked`] when the server's capacity is
/// unknown (handshake skipped).
const FALLBACK_CHUNK: usize = 128;

/// How [`Client::run_chunked`] retries transient rejections: capped
/// exponential backoff with deterministic jitter derived from
/// `jitter_seed` (the chaos suite seeds it from the fault plan, so a
/// replayed seed reproduces the exact retry cadence), bounded by an
/// attempt budget and an optional overall deadline.
///
/// Only idempotent rejections are ever retried: an `Overloaded` reply
/// means the whole batch was rejected atomically, so resubmitting cannot
/// double-execute anything. Failures that may have had effects (I/O loss
/// mid-stream, failed jobs) are surfaced, not retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per chunk (first try included) before the last
    /// rejection is surfaced.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter (each backoff lands in
    /// `[cap/2, cap)` of its exponential step).
    pub jitter_seed: u64,
    /// Overall wall-clock budget across all chunks and retries of one
    /// `run_chunked` call; `None` = bounded by `max_attempts` alone.
    pub overall_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 64,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x5eed_0000_5eed_0000,
            overall_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (0-based): exponential
    /// from `base_backoff`, capped at `max_backoff`, jittered
    /// deterministically into `[cap/2, cap)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.min(16);
        let cap = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let nanos = u64::try_from(cap.as_nanos()).unwrap_or(u64::MAX);
        if nanos < 2 {
            return cap;
        }
        let z =
            splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_nanos(nanos / 2 + ((nanos / 2) as f64 * unit) as u64)
    }
}

/// `splitmix64`, kept local so the retry jitter needs no dependency on
/// the generators crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped mid-stream.
    Io(std::io::Error),
    /// The server sent something outside the protocol.
    Protocol(String),
    /// The submission was rejected by admission control — back off and
    /// retry, the server is explicitly telling you it is full.
    Overloaded(Overloaded),
    /// The server reported a request error (draining, bad batch, …).
    Server(String),
    /// Some specs resolved past the request deadline; their batch indices
    /// are listed.
    Expired(Vec<u64>),
    /// Some specs' jobs failed server-side (contained worker panics);
    /// `(batch index, panic message)` per failed spec. Resubmitting is
    /// safe and will re-execute.
    Failed(Vec<(u64, String)>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Overloaded(o) => write!(
                f,
                "server overloaded ({}/{} jobs queued)",
                o.queued, o.capacity
            ),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Expired(idx) => write!(f, "{} spec(s) missed the deadline", idx.len()),
            ClientError::Failed(jobs) => write!(
                f,
                "{} spec(s) failed server-side (first: {})",
                jobs.len(),
                jobs.first().map_or("", |(_, m)| m.as_str())
            ),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Per-submission options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Deadline in milliseconds from admission (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Bypass the server's run cache.
    pub no_cache: bool,
    /// Interval-sampling cadence (0 = no sample stream).
    pub sample_interval: u64,
}

/// Handle onto the underlying socket for deadline control (the boxed
/// reader/writer halves cannot reach `set_read_timeout` through the trait
/// object).
enum TimeoutControl {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// A blocking connection to an `atscale-serve` daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    /// The server's admission-queue capacity, learned from the `Welcome`
    /// handshake (0 until [`Client::hello`] has run). Sizes
    /// [`Client::run_chunked`] batches.
    server_capacity: u64,
    /// Retry policy for [`Client::run_chunked`].
    retry: RetryPolicy,
    /// Socket handle for [`Client::set_read_timeout`].
    control: Option<TimeoutControl>,
    /// Fault plan driving the `ClientWrite`/`ClientRead`/`ClientStall`
    /// sites (chaos machinery).
    #[cfg(feature = "faults")]
    faults: Option<std::sync::Arc<atscale_faults::FaultPlan>>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .field("server_capacity", &self.server_capacity)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to `target`: `unix:<path>` for a Unix socket, anything
    /// else as a TCP `host:port`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established.
    pub fn connect(target: &str) -> std::io::Result<Client> {
        match target.strip_prefix("unix:") {
            Some(path) => Self::connect_unix(Path::new(path)),
            None => Self::connect_tcp(target),
        }
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Frames are small and latency-bound; Nagle would add ~40 ms per
        // round-trip.
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let control = TimeoutControl::Tcp(stream.try_clone()?);
        let mut client = Self::from_halves(Box::new(read_half), Box::new(stream));
        client.control = Some(control);
        Ok(client)
    }

    /// Connects over a Unix socket.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established (or
    /// always, on non-Unix platforms).
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        #[cfg(unix)]
        {
            let stream = UnixStream::connect(path)?;
            let read_half = stream.try_clone()?;
            let control = TimeoutControl::Unix(stream.try_clone()?);
            let mut client = Self::from_halves(Box::new(read_half), Box::new(stream));
            client.control = Some(control);
            Ok(client)
        }
        #[cfg(not(unix))]
        {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("unix sockets unavailable: {}", path.display()),
            ))
        }
    }

    fn from_halves(read: Box<dyn Read + Send>, write: Box<dyn Write + Send>) -> Client {
        Client {
            reader: BufReader::new(read),
            writer: write,
            next_id: 1,
            server_capacity: 0,
            retry: RetryPolicy::default(),
            control: None,
            #[cfg(feature = "faults")]
            faults: None,
        }
    }

    /// Replaces the retry policy [`Client::run_chunked`] uses.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Client {
        self.retry = policy;
        self
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Attaches a fault-injection plan: subsequent socket traffic routes
    /// through the plan's `ClientWrite`/`ClientRead`/`ClientStall` sites.
    /// Chaos-test machinery.
    #[cfg(feature = "faults")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<atscale_faults::FaultPlan>) -> Client {
        self.faults = Some(plan);
        self
    }

    /// Bounds how long any single reply read may block. With a timeout
    /// set, a stalled or dead-but-connected server surfaces as an
    /// explicit [`ClientError::Io`] instead of hanging the call forever.
    ///
    /// # Errors
    ///
    /// Fails with `Unsupported` on a connection without a socket handle
    /// (in-memory test transports), or with the socket's error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.control {
            Some(TimeoutControl::Tcp(stream)) => stream.set_read_timeout(timeout),
            #[cfg(unix)]
            Some(TimeoutControl::Unix(stream)) => stream.set_read_timeout(timeout),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no socket handle for this transport",
            )),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        #[cfg(feature = "faults")]
        if let Some(plan) = &self.faults {
            use atscale_faults::FaultSite;
            if plan.check(FaultSite::ClientWrite).is_some() {
                return Err(ClientError::Io(atscale_faults::injected_io_error(
                    FaultSite::ClientWrite,
                )));
            }
        }
        let mut line = protocol::encode(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        #[cfg(feature = "faults")]
        if let Some(plan) = &self.faults {
            use atscale_faults::FaultSite;
            if let Some(rule) = plan.check(FaultSite::ClientStall) {
                std::thread::sleep(Duration::from_millis(rule.stall_ms));
            }
            if plan.check(FaultSite::ClientRead).is_some() {
                return Err(ClientError::Io(atscale_faults::injected_io_error(
                    FaultSite::ClientRead,
                )));
            }
        }
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "server closed the connection".to_string(),
                ));
            }
            if !line.trim().is_empty() {
                return protocol::decode(line.trim()).map_err(ClientError::Protocol);
            }
        }
    }

    /// Performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, protocol mismatch, or an unexpected reply.
    pub fn hello(&mut self) -> Result<Welcome, ClientError> {
        self.send(&Request::Hello(Hello {
            protocol: PROTOCOL_VERSION,
        }))?;
        match self.read_reply()? {
            Reply::Welcome(w) => {
                self.server_capacity = w.queue_capacity;
                Ok(w)
            }
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// The server's advertised admission-queue capacity (`None` before
    /// [`Client::hello`]).
    pub fn server_capacity(&self) -> Option<u64> {
        (self.server_capacity > 0).then_some(self.server_capacity)
    }

    /// Submits a batch and blocks until every spec resolves, returning
    /// records in spec order — `Harness::run_many` over the wire.
    ///
    /// # Errors
    ///
    /// Fails on rejection ([`ClientError::Overloaded`] /
    /// [`ClientError::Server`]), connection loss, or missed deadlines.
    pub fn run_many(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
    ) -> Result<Vec<RunRecord>, ClientError> {
        self.run_many_with(specs, opts, |_| {})
    }

    /// [`Client::run_many`] with a frame observer: every streamed reply
    /// (samples, progress, records) passes through `on_event` before the
    /// records are reassembled.
    ///
    /// # Errors
    ///
    /// As [`Client::run_many`].
    pub fn run_many_with(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
        mut on_event: impl FnMut(&Reply),
    ) -> Result<Vec<RunRecord>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Submit(Submit {
            id,
            specs: specs.to_vec(),
            deadline_ms: opts.deadline_ms,
            no_cache: opts.no_cache,
            sample_interval: opts.sample_interval,
        }))?;
        let mut slots: Vec<Option<RunRecord>> = vec![None; specs.len()];
        let mut expired: Vec<u64> = Vec::new();
        let mut failed: Vec<(u64, String)> = Vec::new();
        loop {
            let reply = self.read_reply()?;
            on_event(&reply);
            match reply {
                Reply::Accepted(a) if a.id == id => {}
                Reply::Overloaded(o) if o.id == id => return Err(ClientError::Overloaded(o)),
                Reply::Error(e) if e.id == id => return Err(ClientError::Server(e.message)),
                Reply::Record(r) if r.id == id => {
                    let index = usize::try_from(r.index)
                        .map_err(|_| ClientError::Protocol("index overflow".to_string()))?;
                    let slot = slots.get_mut(index).ok_or_else(|| {
                        ClientError::Protocol(format!("record index {index} out of range"))
                    })?;
                    *slot = Some(r.record);
                }
                Reply::Deadline(d) if d.id == id => expired.push(d.index),
                // Collected, not returned: the stream must drain to
                // `BatchDone` so the connection stays clean for the next
                // request.
                Reply::Failed(fail) if fail.id == id => failed.push((fail.index, fail.message)),
                Reply::BatchDone(b) if b.id == id => break,
                Reply::Sample(_) | Reply::Progress(_) => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame mid-batch: {other:?}"
                    )))
                }
            }
        }
        if !failed.is_empty() {
            failed.sort_unstable_by_key(|(index, _)| *index);
            return Err(ClientError::Failed(failed));
        }
        if !expired.is_empty() {
            expired.sort_unstable();
            return Err(ClientError::Expired(expired));
        }
        slots
            .into_iter()
            .map(|s| {
                s.ok_or_else(|| ClientError::Protocol("batch done with missing record".to_string()))
            })
            .collect()
    }

    /// [`Client::run_many`] for batches of any size: splits `specs` into
    /// chunks the server's admission queue can hold (sized from the
    /// `Welcome` handshake) and retries a chunk under the client's
    /// [`RetryPolicy`] when the server answers `Overloaded` — the one
    /// rejection that is provably idempotent to resubmit (the batch was
    /// rejected atomically, nothing enqueued). Records come back in spec
    /// order, exactly as `run_many`.
    ///
    /// Call [`Client::hello`] first so the chunk size matches the server;
    /// without it a conservative fallback is used. A `deadline_ms` applies
    /// per chunk, from that chunk's admission.
    ///
    /// # Errors
    ///
    /// As [`Client::run_many`], except `Overloaded` is only surfaced after
    /// the policy's attempt budget or overall deadline is exhausted (the
    /// server stayed full for the whole window).
    pub fn run_chunked(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
    ) -> Result<Vec<RunRecord>, ClientError> {
        self.run_chunked_with(specs, opts, |_| {})
    }

    /// [`Client::run_chunked`] with a frame observer, as
    /// [`Client::run_many_with`].
    ///
    /// # Errors
    ///
    /// As [`Client::run_chunked`].
    pub fn run_chunked_with(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
        mut on_event: impl FnMut(&Reply),
    ) -> Result<Vec<RunRecord>, ClientError> {
        let chunk = self.chunk_size();
        let policy = self.retry;
        let started = Instant::now();
        let mut records = Vec::with_capacity(specs.len());
        let mut offset = 0u64;
        for chunk_specs in specs.chunks(chunk) {
            let mut attempt = 0u32;
            loop {
                match self.run_many_with(chunk_specs, opts, &mut on_event) {
                    Ok(mut chunk_records) => {
                        records.append(&mut chunk_records);
                        break;
                    }
                    // The only retried failure: atomically-rejected
                    // batches are idempotent to resubmit.
                    Err(ClientError::Overloaded(o)) => {
                        attempt += 1;
                        let out_of_time = policy
                            .overall_deadline
                            .is_some_and(|budget| started.elapsed() >= budget);
                        if attempt >= policy.max_attempts || out_of_time {
                            return Err(ClientError::Overloaded(o));
                        }
                        let mut pause = policy.backoff(attempt - 1);
                        if let Some(budget) = policy.overall_deadline {
                            pause = pause.min(budget.saturating_sub(started.elapsed()));
                        }
                        std::thread::sleep(pause);
                    }
                    // Rebase chunk-local spec indices onto the full batch.
                    Err(ClientError::Expired(indices)) => {
                        return Err(ClientError::Expired(
                            indices.into_iter().map(|i| i + offset).collect(),
                        ));
                    }
                    Err(ClientError::Failed(jobs)) => {
                        return Err(ClientError::Failed(
                            jobs.into_iter()
                                .map(|(i, message)| (i + offset, message))
                                .collect(),
                        ));
                    }
                    Err(e) => return Err(e),
                }
            }
            offset += chunk_specs.len() as u64;
        }
        Ok(records)
    }

    /// How many specs [`Client::run_chunked`] submits per batch: half the
    /// advertised queue capacity, leaving admission headroom for jobs
    /// already queued and for other clients.
    fn chunk_size(&self) -> usize {
        match usize::try_from(self.server_capacity) {
            Ok(0) | Err(_) => FALLBACK_CHUNK,
            Ok(capacity) => (capacity / 2).max(1),
        }
    }

    /// Fetches the server's run-cache occupancy.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unexpected reply.
    pub fn cache_stats(&mut self) -> Result<StoreStats, ClientError> {
        self.send(&Request::CacheStats)?;
        match self.read_reply()? {
            Reply::CacheStats(s) => Ok(s),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected CacheStats, got {other:?}"
            ))),
        }
    }

    /// Fetches the scheduler's counters.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unexpected reply.
    pub fn server_stats(&mut self) -> Result<ServerStatsReply, ClientError> {
        self.send(&Request::ServerStats)?;
        match self.read_reply()? {
            Reply::ServerStats(s) => Ok(s),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected ServerStats, got {other:?}"
            ))),
        }
    }

    /// Runs an aggregate query against the server's segment-backed results
    /// store: count, mean/p50/p99 WCPI, and the fitted β/c over the
    /// matching groups — answered from per-group aggregate state, never by
    /// replaying records.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, an unexpected reply, or
    /// [`ClientError::Server`] when the server has no segment store.
    pub fn query(&mut self, filter: &QueryFilter) -> Result<QueryResult, ClientError> {
        self.send(&Request::Query(filter.clone()))?;
        match self.read_reply()? {
            Reply::QueryResult(r) => Ok(r),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected QueryResult, got {other:?}"
            ))),
        }
    }

    /// Compacts the server's segment-backed results store down to its live
    /// rows.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, an unexpected reply, or
    /// [`ClientError::Server`] when the server has no segment store or the
    /// compaction itself failed.
    pub fn compact(&mut self) -> Result<CompactStats, ClientError> {
        self.send(&Request::Compact)?;
        match self.read_reply()? {
            Reply::Compacted(stats) => Ok(stats),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected Compacted, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's segment-store occupancy.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, an unexpected reply, or
    /// [`ClientError::Server`] when the server has no segment store.
    pub fn seg_stats(&mut self) -> Result<SegStats, ClientError> {
        self.send(&Request::StoreSegStats)?;
        match self.read_reply()? {
            Reply::StoreSegStats(stats) => Ok(stats),
            Reply::Error(e) => Err(ClientError::Server(e.message)),
            other => Err(ClientError::Protocol(format!(
                "expected StoreSegStats, got {other:?}"
            ))),
        }
    }

    /// Requests graceful shutdown; the server acknowledges, drains, and
    /// exits.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.read_reply()? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}

/// A topology-aware client: one persistent framed connection per shard,
/// every spec routed to the shard that owns its record hash.
///
/// Connect to *any* member of a topology; the v6 `Welcome` advertises the
/// full address list, and every subsequent batch is partitioned by
/// [`ShardMap`] over [`atscale::RunStore::key_hash`] — the same function
/// that names the record in each shard's store, so single-flight dedup
/// and the record cache stay exact per shard. Connections persist across
/// [`ShardedClient::run_chunked`] calls (no reconnect per chunk); a
/// dropped connection is re-dialled under the [`RetryPolicy`] and its
/// chunk resubmitted, which is safe because execution is deterministic
/// and cache-first — a replayed chunk returns byte-identical records.
///
/// Against a standalone (pre-topology) daemon this degrades to exactly
/// one connection and no routing.
pub struct ShardedClient {
    /// Every shard's address, in shard-index order.
    topology: Vec<String>,
    map: ShardMap,
    /// Lazily-dialled persistent connection per shard.
    conns: Vec<Option<Client>>,
    retry: RetryPolicy,
    /// The machine configuration keys are computed against — must match
    /// the servers' (both default to Haswell).
    machine: MachineConfig,
    #[cfg(feature = "faults")]
    faults: Option<std::sync::Arc<atscale_faults::FaultPlan>>,
}

impl std::fmt::Debug for ShardedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedClient")
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl ShardedClient {
    /// Connects to one member of a topology and discovers the rest from
    /// its `Welcome`.
    ///
    /// # Errors
    ///
    /// Fails on connection or handshake errors against the seed address.
    pub fn connect(seed: &str) -> Result<ShardedClient, ClientError> {
        let mut first = Client::connect(seed)?;
        let welcome = first.hello()?;
        let topology = if welcome.topology.is_empty() {
            vec![seed.to_string()]
        } else {
            welcome.topology.clone()
        };
        let mut conns: Vec<Option<Client>> = Vec::new();
        conns.resize_with(topology.len(), || None);
        // Keep the seed connection in its shard's slot instead of
        // dialling it twice.
        if let Some(slot) = usize::try_from(welcome.shard)
            .ok()
            .and_then(|i| conns.get_mut(i))
        {
            *slot = Some(first);
        }
        Ok(ShardedClient {
            map: ShardMap::new(topology.len()),
            topology,
            conns,
            retry: RetryPolicy::default(),
            machine: MachineConfig::haswell(),
            #[cfg(feature = "faults")]
            faults: None,
        })
    }

    /// Replaces the retry policy (applies to `Overloaded` backoff inside
    /// each shard's chunked run *and* to reconnect-on-drop).
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> ShardedClient {
        self.retry = policy;
        for conn in self.conns.iter_mut().flatten() {
            conn.retry = policy;
        }
        self
    }

    /// Overrides the machine configuration records are keyed against
    /// (must match the servers'; both default to Haswell).
    #[must_use]
    pub fn with_machine(mut self, machine: MachineConfig) -> ShardedClient {
        self.machine = machine;
        self
    }

    /// Attaches a fault-injection plan, propagated to every per-shard
    /// connection (chaos machinery).
    #[cfg(feature = "faults")]
    #[must_use]
    pub fn with_fault_plan(
        mut self,
        plan: std::sync::Arc<atscale_faults::FaultPlan>,
    ) -> ShardedClient {
        self.faults = Some(plan);
        self
    }

    /// The topology size.
    pub fn shards(&self) -> usize {
        self.topology.len()
    }

    /// Every shard's address in shard order.
    pub fn topology(&self) -> &[String] {
        &self.topology
    }

    /// The shard that owns a spec's record.
    pub fn shard_of(&self, spec: &RunSpec) -> usize {
        self.map.shard_for(spec, &self.machine)
    }

    /// The persistent connection to `shard`, dialling (and handshaking)
    /// it on first use or after a drop.
    fn ensure_conn(&mut self, shard: usize) -> Result<&mut Client, ClientError> {
        let addr = self
            .topology
            .get(shard)
            .ok_or_else(|| ClientError::Protocol(format!("shard {shard} outside topology")))?
            .clone();
        let slot = self
            .conns
            .get_mut(shard)
            .ok_or_else(|| ClientError::Protocol(format!("shard {shard} outside topology")))?;
        if slot.is_none() {
            #[allow(unused_mut)]
            let mut client = Client::connect(&addr)?.with_retry_policy(self.retry);
            #[cfg(feature = "faults")]
            let mut client = match &self.faults {
                Some(plan) => client.with_fault_plan(std::sync::Arc::clone(plan)),
                None => client,
            };
            client.hello()?;
            *slot = Some(client);
        }
        slot.as_mut()
            .ok_or_else(|| ClientError::Protocol("connection slot vanished".to_string()))
    }

    /// The seed shard's advertised admission capacity, dialling it if no
    /// connection is up yet. `None` when the topology is unreachable.
    pub fn server_capacity(&mut self) -> Option<u64> {
        self.ensure_conn(0).ok().and_then(|c| c.server_capacity())
    }

    /// [`Client::run_chunked`] across the topology: specs partitioned by
    /// owning shard, each partition chunk-submitted on that shard's
    /// persistent connection, records reassembled into spec order.
    ///
    /// # Errors
    ///
    /// As [`Client::run_chunked`]; connection drops are re-dialled under
    /// the retry policy before surfacing, and `Expired`/`Failed` indices
    /// refer to the original batch.
    pub fn run_chunked(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
    ) -> Result<Vec<RunRecord>, ClientError> {
        self.run_chunked_with(specs, opts, |_| {})
    }

    /// [`ShardedClient::run_chunked`] with a frame observer, as
    /// [`Client::run_chunked_with`] — streamed `Sample`/`Progress` frames
    /// from every shard pass through the one observer (in shard order,
    /// since partitions run sequentially on this thread).
    ///
    /// # Errors
    ///
    /// As [`ShardedClient::run_chunked`].
    pub fn run_chunked_with(
        &mut self,
        specs: &[RunSpec],
        opts: SubmitOptions,
        mut on_event: impl FnMut(&Reply),
    ) -> Result<Vec<RunRecord>, ClientError> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards()];
        for (i, spec) in specs.iter().enumerate() {
            let shard = self.map.shard_for(spec, &self.machine);
            if let Some(bucket) = by_shard.get_mut(shard) {
                bucket.push(i);
            }
        }
        let mut slots: Vec<Option<RunRecord>> = vec![None; specs.len()];
        for (shard, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard_specs: Vec<RunSpec> = indices
                .iter()
                .filter_map(|&i| specs.get(i).copied())
                .collect();
            let records = self.run_shard(shard, &shard_specs, opts, indices, &mut on_event)?;
            for (&i, record) in indices.iter().zip(records) {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(record);
                }
            }
        }
        slots
            .into_iter()
            .map(|s| {
                s.ok_or_else(|| ClientError::Protocol("shard done with missing record".to_string()))
            })
            .collect()
    }

    /// One shard's partition: chunk-run on the persistent connection,
    /// reconnecting and resubmitting on drop, remapping error indices
    /// back to the original batch.
    fn run_shard(
        &mut self,
        shard: usize,
        shard_specs: &[RunSpec],
        opts: SubmitOptions,
        indices: &[usize],
        on_event: &mut dyn FnMut(&Reply),
    ) -> Result<Vec<RunRecord>, ClientError> {
        let policy = self.retry;
        let remap = |local: u64| -> u64 {
            usize::try_from(local)
                .ok()
                .and_then(|i| indices.get(i))
                .map_or(local, |&orig| orig as u64)
        };
        let mut attempt = 0u32;
        loop {
            let result = self
                .ensure_conn(shard)
                .and_then(|conn| conn.run_chunked_with(shard_specs, opts, &mut *on_event));
            match result {
                Ok(records) => return Ok(records),
                // Reconnect-on-drop: a dead socket (or a server that
                // closed mid-stream) costs the connection, not the sweep.
                // Resubmitting the whole partition is safe — execution is
                // deterministic and cache-first, so the replay returns
                // byte-identical records without double-charging fresh
                // executions for anything already cached.
                Err(ClientError::Io(_)) if attempt + 1 < policy.max_attempts => {
                    if let Some(slot) = self.conns.get_mut(shard) {
                        *slot = None;
                    }
                    attempt += 1;
                    std::thread::sleep(policy.backoff(attempt - 1));
                }
                Err(ClientError::Expired(indices)) => {
                    return Err(ClientError::Expired(
                        indices.into_iter().map(remap).collect(),
                    ));
                }
                Err(ClientError::Failed(jobs)) => {
                    return Err(ClientError::Failed(
                        jobs.into_iter().map(|(i, m)| (remap(i), m)).collect(),
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            jitter_seed: 0xfeed,
            ..RetryPolicy::default()
        };
        for attempt in 0..24 {
            let a = policy.backoff(attempt);
            let b = policy.backoff(attempt);
            assert_eq!(a, b, "same attempt, same pause");
            let cap = policy
                .base_backoff
                .saturating_mul(1u32 << attempt.min(16))
                .min(policy.max_backoff);
            assert!(a < cap, "jitter stays under the exponential cap");
            assert!(a >= cap / 2, "jitter keeps at least half the cap");
        }
        assert!(policy.backoff(30) <= policy.max_backoff);
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let a = RetryPolicy {
            jitter_seed: 1,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            jitter_seed: 2,
            ..RetryPolicy::default()
        };
        let differs = (0..8).any(|n| a.backoff(n) != b.backoff(n));
        assert!(differs, "seeds decorrelate retry cadence");
    }

    #[test]
    fn backoff_grows_geometrically_until_the_ceiling() {
        let policy = RetryPolicy::default();
        // The jittered pause for attempt n+2 always exceeds attempt n's
        // (a 4x cap beats any jitter down to 1/2), until the ceiling.
        for n in 0..4 {
            assert!(policy.backoff(n + 2) > policy.backoff(n));
        }
    }
}
