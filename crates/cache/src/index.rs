//! Strength-reduced set indexing.
//!
//! Every set-associative structure in the simulator maps a key to a set via
//! `key % sets`. A hardware divide sits on the per-access hot path of every
//! TLB array, paging-structure cache and cache level — up to five of them
//! per simulated access. This module precomputes the division away:
//!
//! * power-of-two set counts become a mask (`key & (sets - 1)`);
//! * other counts (the Haswell L3 has 24576 sets = 2¹³·3) use the 64-bit
//!   Lemire fastmod: with `M = ⌊2¹²⁸ / d⌋ + 1`, `n % d` equals the high
//!   64 bits of `(M·n mod 2¹²⁸) · d` — two multiplies, no divide.
//!
//! Both paths compute *exactly* `key % sets`, so swapping the indexer in is
//! bit-for-bit neutral: the same keys land in the same sets.

/// A precomputed `key % sets` evaluator.
///
/// # Example
///
/// ```
/// use atscale_cache::SetIndexer;
///
/// let pow2 = SetIndexer::new(64);
/// assert_eq!(pow2.index(1000), (1000 % 64) as usize);
/// let l3 = SetIndexer::new(24576); // not a power of two
/// assert_eq!(l3.index(u64::MAX), (u64::MAX % 24576) as usize);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SetIndexer {
    sets: u64,
    /// `sets - 1`; consulted only when `pow2` is set.
    mask: u64,
    /// `⌊2¹²⁸ / sets⌋ + 1`; consulted only when `pow2` is clear.
    magic: u128,
    pow2: bool,
}

impl SetIndexer {
    /// Precomputes the indexer for a set count.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: u64) -> Self {
        assert!(sets > 0, "a set-associative structure needs at least 1 set");
        let pow2 = sets.is_power_of_two();
        let magic = if pow2 {
            0
        } else {
            // sets >= 3 here (1 and 2 are powers of two), so no overflow.
            u128::MAX / u128::from(sets) + 1
        };
        SetIndexer {
            sets,
            mask: sets - 1,
            magic,
            pow2,
        }
    }

    /// The set count this indexer was built for.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Computes `key % sets` without dividing.
    #[inline]
    pub fn index(&self, key: u64) -> usize {
        if self.pow2 {
            (key & self.mask) as usize
        } else {
            let low = self.magic.wrapping_mul(u128::from(key));
            mulhi_u128_u64(low, self.sets) as usize
        }
    }
}

/// High 64 bits of a 128×64-bit product.
#[inline]
fn mulhi_u128_u64(a: u128, b: u64) -> u64 {
    let b = u128::from(b);
    let lo = (a as u64) as u128;
    let hi = a >> 64;
    // hi·b ≤ (2⁶⁴−1)² and the carry term is < 2⁶⁴, so the sum fits in u128.
    let carry = (lo * b) >> 64;
    ((hi * b + carry) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_modulo_for_small_cases() {
        for sets in [1u64, 2, 3, 5, 7, 8, 24, 64, 513, 24576] {
            let ix = SetIndexer::new(sets);
            for key in [0u64, 1, 2, sets - 1, sets, sets + 1, 1 << 40, u64::MAX] {
                assert_eq!(ix.index(key), (key % sets) as usize, "{key} % {sets}");
            }
        }
    }

    #[test]
    fn haswell_l3_sets_take_the_fastmod_path() {
        let ix = SetIndexer::new(24576);
        assert_eq!(ix.sets(), 24576);
        // Block indices past 2³² (≈600 GB footprints) must stay exact.
        for key in [1u64 << 33, (1 << 45) + 12345, u64::MAX - 1] {
            assert_eq!(ix.index(key), (key % 24576) as usize);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 set")]
    fn zero_sets_rejected() {
        SetIndexer::new(0);
    }

    proptest! {
        #[test]
        fn index_equals_modulo(key in 0u64..=u64::MAX, sets in 1u64..=1 << 48) {
            let ix = SetIndexer::new(sets);
            prop_assert_eq!(ix.index(key), (key % sets) as usize);
        }

        #[test]
        fn index_equals_modulo_for_non_pow2(key in 0u64..=u64::MAX, raw in 1u64..=1 << 30) {
            // Bias towards non-powers-of-two by offsetting.
            let sets = raw * 3;
            let ix = SetIndexer::new(sets);
            prop_assert_eq!(ix.index(key), (key % sets) as usize);
        }
    }
}
