//! Three-level cache hierarchy with DRAM backstop.

use crate::stats::HierarchyStats;
use crate::{HierarchyConfig, SetAssocCache};
use atscale_vm::{CheckInvariants, PhysAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of agent issued a memory access.
///
/// The distinction drives the paper's Figure 8 (PTE access-location
/// distribution) and the PTE/data contention analysis in §V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An ordinary program load or store.
    Data,
    /// A page-table-walker fetch of a page-table entry.
    PageTable,
}

/// The level of the hierarchy that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Serviced by the L1 data cache.
    L1,
    /// Serviced by the unified L2.
    L2,
    /// Serviced by the shared last-level cache.
    L3,
    /// Missed everywhere; serviced by DRAM.
    Memory,
}

impl HitLevel {
    /// All levels, fastest first.
    pub const ALL: [HitLevel; 4] = [HitLevel::L1, HitLevel::L2, HitLevel::L3, HitLevel::Memory];

    /// Short label used in reports ("L1", "L2", "L3", "Mem").
    pub const fn label(self) -> &'static str {
        match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::L3 => "L3",
            HitLevel::Memory => "Mem",
        }
    }
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheResponse {
    /// Which level serviced the access.
    pub level: HitLevel,
    /// Load-to-use latency in core cycles.
    pub latency: u32,
}

/// A three-level cache hierarchy backed by DRAM.
///
/// Fill policy is mostly-inclusive: a line fetched from DRAM (or from an
/// outer level) is installed in every level closer to the core, like the
/// paper's Haswell machine. Replacement is exact LRU per level.
///
/// # Example
///
/// ```
/// use atscale_cache::{AccessKind, CacheHierarchy, HierarchyConfig, HitLevel};
/// use atscale_vm::PhysAddr;
///
/// let mut caches = CacheHierarchy::new(HierarchyConfig::tiny());
/// caches.access(PhysAddr::new(0), AccessKind::PageTable);
/// let stats = caches.stats();
/// assert_eq!(stats.pte.total(), 1);
/// assert_eq!(stats.data.total(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    config: HierarchyConfig,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            config,
            stats: HierarchyStats::default(),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one access, filling caches along the way, and returns the
    /// servicing level and its latency.
    pub fn access(&mut self, paddr: PhysAddr, kind: AccessKind) -> CacheResponse {
        let addr = paddr.as_u64();
        let lat = &self.config.latency;
        let level = if self.l1.access(addr) {
            HitLevel::L1
        } else if self.l2.access(addr) {
            HitLevel::L2
        } else if self.l3.access(addr) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };
        let latency = match level {
            HitLevel::L1 => lat.l1,
            HitLevel::L2 => lat.l2,
            HitLevel::L3 => lat.l3,
            HitLevel::Memory => lat.memory,
        };
        self.stats.record(kind, level);
        CacheResponse { level, latency }
    }

    /// Accumulated hit statistics by access kind and level.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Clears statistics but keeps cache contents — used after warm-up, the
    /// simulator's analogue of the paper's 60-second dry run.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Invalidates all levels and clears statistics.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.stats = HierarchyStats::default();
    }
}

impl CheckInvariants for CacheHierarchy {
    fn check_invariants(&self) {
        let lat = &self.config.latency;
        atscale_vm::invariant!(
            lat.l1 <= lat.l2 && lat.l2 <= lat.l3 && lat.l3 <= lat.memory,
            "latencies must grow outward: l1={} l2={} l3={} mem={}",
            lat.l1,
            lat.l2,
            lat.l3,
            lat.memory
        );
        // Lookups filter strictly downward: an outer level is consulted
        // exactly once per inner-level miss. Per-cache counters survive
        // `reset_stats`, so these equalities hold over the whole run.
        atscale_vm::invariant!(
            self.l2.hits() + self.l2.misses() == self.l1.misses(),
            "L2 saw {} accesses but L1 recorded {} misses",
            self.l2.hits() + self.l2.misses(),
            self.l1.misses()
        );
        atscale_vm::invariant!(
            self.l3.hits() + self.l3.misses() == self.l2.misses(),
            "L3 saw {} accesses but L2 recorded {} misses",
            self.l3.hits() + self.l3.misses(),
            self.l2.misses()
        );
        // Window stats (reset after warm-up) never exceed cumulative counts.
        atscale_vm::invariant!(
            self.stats.data.total() + self.stats.pte.total() <= self.l1.hits() + self.l1.misses(),
            "windowed stats exceed cumulative L1 accesses"
        );
        self.l1.check_invariants();
        self.l2.check_invariants();
        self.l3.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn miss_fills_all_levels() {
        let mut h = tiny();
        assert_eq!(
            h.access(PhysAddr::new(0), AccessKind::Data).level,
            HitLevel::Memory
        );
        assert_eq!(
            h.access(PhysAddr::new(0), AccessKind::Data).level,
            HitLevel::L1
        );
    }

    #[test]
    fn eviction_from_l1_falls_back_to_l2() {
        let mut h = tiny();
        // L1 tiny(): 256 B, 2-way, 64 B lines → 2 sets. Fill set 0 beyond 2 ways.
        let stride = 2 * 64; // set-0 addresses
        for i in 0..4u64 {
            h.access(PhysAddr::new(i * stride), AccessKind::Data);
        }
        // First block evicted from L1 but still in L2 (L2 has 4 sets × 4 ways).
        let r = h.access(PhysAddr::new(0), AccessKind::Data);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn latencies_match_config() {
        let mut h = tiny();
        let lat = h.config().latency;
        assert_eq!(
            h.access(PhysAddr::new(0x100), AccessKind::Data).latency,
            lat.memory
        );
        assert_eq!(
            h.access(PhysAddr::new(0x100), AccessKind::Data).latency,
            lat.l1
        );
    }

    #[test]
    fn stats_split_by_kind() {
        let mut h = tiny();
        h.access(PhysAddr::new(0), AccessKind::Data);
        h.access(PhysAddr::new(0x40), AccessKind::PageTable);
        h.access(PhysAddr::new(0x40), AccessKind::PageTable);
        let s = h.stats();
        assert_eq!(s.data.total(), 1);
        assert_eq!(s.pte.total(), 2);
        assert_eq!(s.pte.at(HitLevel::Memory), 1);
        assert_eq!(s.pte.at(HitLevel::L1), 1);
    }

    #[test]
    fn pte_and_data_contend_for_the_same_sets() {
        let mut h = tiny();
        let pte_addr = PhysAddr::new(0);
        h.access(pte_addr, AccessKind::PageTable);
        // Blast enough conflicting data through every level to evict the PTE.
        for i in 1..2000u64 {
            h.access(PhysAddr::new(i * 64), AccessKind::Data);
        }
        let r = h.access(pte_addr, AccessKind::PageTable);
        assert_eq!(
            r.level,
            HitLevel::Memory,
            "data traffic evicted the PTE line"
        );
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = tiny();
        h.access(PhysAddr::new(0), AccessKind::Data);
        h.reset_stats();
        assert_eq!(h.stats().data.total(), 0);
        assert_eq!(
            h.access(PhysAddr::new(0), AccessKind::Data).level,
            HitLevel::L1
        );
    }

    #[test]
    fn flush_cools_everything() {
        let mut h = tiny();
        h.access(PhysAddr::new(0), AccessKind::Data);
        h.flush();
        assert_eq!(
            h.access(PhysAddr::new(0), AccessKind::Data).level,
            HitLevel::Memory
        );
    }

    #[test]
    fn hit_levels_are_ordered_and_labelled() {
        assert!(HitLevel::L1 < HitLevel::Memory);
        assert_eq!(HitLevel::L3.to_string(), "L3");
        assert_eq!(HitLevel::ALL.len(), 4);
    }
}
