//! # atscale-cache — physically-indexed cache hierarchy simulator
//!
//! Models the paper's Table III memory system: per-core L1D and L2, a shared
//! L3, and DRAM, with LRU set-associative arrays. Every access is tagged with
//! an [`AccessKind`] (`Data` or `PageTable`) so the simulator can report
//! *where page-table entries are found* — the paper's Figure 8 — and so PTE
//! and data traffic genuinely contend for the same cache sets (the mechanism
//! behind the paper's "PTEs outcompete regular data" observation for `mcf`).
//!
//! The hierarchy is deliberately simple where the paper's analysis does not
//! need detail: it is mostly-inclusive, write-allocate with no write-back
//! traffic modelling, and has no hardware prefetcher (prefetching affects
//! data-stall magnitude but none of the address-translation metrics the
//! paper studies; the latency constants absorb its average effect).
//!
//! ## Example
//!
//! ```
//! use atscale_cache::{AccessKind, CacheHierarchy, HierarchyConfig, HitLevel};
//! use atscale_vm::PhysAddr;
//!
//! let mut caches = CacheHierarchy::new(HierarchyConfig::haswell());
//! let first = caches.access(PhysAddr::new(0x4000), AccessKind::Data);
//! assert_eq!(first.level, HitLevel::Memory);
//! let again = caches.access(PhysAddr::new(0x4000), AccessKind::Data);
//! assert_eq!(again.level, HitLevel::L1);
//! assert!(again.latency < first.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hierarchy;
mod index;
mod set_assoc;
mod stats;

pub use config::{CacheConfig, HierarchyConfig, LatencyConfig};
pub use hierarchy::{AccessKind, CacheHierarchy, CacheResponse, HitLevel};
pub use index::SetIndexer;
pub use set_assoc::SetAssocCache;
pub use stats::{HierarchyStats, LevelCounts, PteLocationDistribution};
