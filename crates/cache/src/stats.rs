//! Hit-level statistics, including the paper's Figure 8 distribution.

use crate::{AccessKind, HitLevel};
use serde::{Deserialize, Serialize};

/// Per-level access counts for one access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelCounts {
    counts: [u64; 4],
}

impl LevelCounts {
    /// Count of accesses serviced at `level`.
    pub fn at(&self, level: HitLevel) -> u64 {
        self.counts[Self::index(level)]
    }

    /// Total accesses across all levels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of accesses serviced at `level` (0 if no accesses).
    pub fn fraction(&self, level: HitLevel) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.at(level) as f64 / total as f64
        }
    }

    pub(crate) fn record(&mut self, level: HitLevel) {
        self.counts[Self::index(level)] += 1;
    }

    fn index(level: HitLevel) -> usize {
        match level {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::L3 => 2,
            HitLevel::Memory => 3,
        }
    }
}

/// Where page-table entries were found, as fractions per level — the
/// quantity plotted in the paper's Figure 8 for `pr-kron`.
///
/// Fractions sum to 1 when any PTE access occurred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PteLocationDistribution {
    /// Fraction of PTE fetches serviced by L1.
    pub l1: f64,
    /// Fraction serviced by L2.
    pub l2: f64,
    /// Fraction serviced by L3.
    pub l3: f64,
    /// Fraction serviced by DRAM.
    pub memory: f64,
}

/// Aggregate statistics for a [`crate::CacheHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Counts for ordinary data accesses.
    pub data: LevelCounts,
    /// Counts for page-table-walker accesses.
    pub pte: LevelCounts,
}

impl HierarchyStats {
    pub(crate) fn record(&mut self, kind: AccessKind, level: HitLevel) {
        match kind {
            AccessKind::Data => self.data.record(level),
            AccessKind::PageTable => self.pte.record(level),
        }
    }

    /// The Figure 8 distribution: where the walker found PTEs.
    pub fn pte_location_distribution(&self) -> PteLocationDistribution {
        PteLocationDistribution {
            l1: self.pte.fraction(HitLevel::L1),
            l2: self.pte.fraction(HitLevel::L2),
            l3: self.pte.fraction(HitLevel::L3),
            memory: self.pte.fraction(HitLevel::Memory),
        }
    }

    /// Average PTE fetch latency implied by the given latency config —
    /// the "latency per walk access" term of the paper's Equation 1.
    pub fn mean_pte_latency(&self, latency: &crate::LatencyConfig) -> f64 {
        let total = self.pte.total();
        if total == 0 {
            return 0.0;
        }
        let cycles = self.pte.at(HitLevel::L1) as u128 * latency.l1 as u128
            + self.pte.at(HitLevel::L2) as u128 * latency.l2 as u128
            + self.pte.at(HitLevel::L3) as u128 * latency.l3 as u128
            + self.pte.at(HitLevel::Memory) as u128 * latency.memory as u128;
        cycles as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyConfig;

    #[test]
    fn fractions_sum_to_one() {
        let mut s = HierarchyStats::default();
        s.record(AccessKind::PageTable, HitLevel::L1);
        s.record(AccessKind::PageTable, HitLevel::L1);
        s.record(AccessKind::PageTable, HitLevel::L3);
        s.record(AccessKind::PageTable, HitLevel::Memory);
        let d = s.pte_location_distribution();
        assert!((d.l1 + d.l2 + d.l3 + d.memory - 1.0).abs() < 1e-12);
        assert_eq!(d.l1, 0.5);
        assert_eq!(d.l2, 0.0);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let s = HierarchyStats::default();
        let d = s.pte_location_distribution();
        assert_eq!(d, PteLocationDistribution::default());
        assert_eq!(s.mean_pte_latency(&LatencyConfig::haswell()), 0.0);
    }

    #[test]
    fn mean_pte_latency_weights_by_level() {
        let mut s = HierarchyStats::default();
        let lat = LatencyConfig::haswell();
        s.record(AccessKind::PageTable, HitLevel::L1);
        s.record(AccessKind::PageTable, HitLevel::Memory);
        let expected = (lat.l1 as f64 + lat.memory as f64) / 2.0;
        assert_eq!(s.mean_pte_latency(&lat), expected);
    }

    #[test]
    fn data_counts_do_not_pollute_pte_distribution() {
        let mut s = HierarchyStats::default();
        s.record(AccessKind::Data, HitLevel::Memory);
        s.record(AccessKind::PageTable, HitLevel::L1);
        let d = s.pte_location_distribution();
        assert_eq!(d.l1, 1.0);
        assert_eq!(d.memory, 0.0);
        assert_eq!(s.data.at(HitLevel::Memory), 1);
    }
}
