//! Generic LRU set-associative cache array.

use crate::CacheConfig;

const INVALID: u64 = u64::MAX;

/// An LRU set-associative cache of block tags.
///
/// The array stores one 64-bit tag per way; each set keeps its ways in
/// recency order (most recent first), so a hit performs a move-to-front and
/// a miss evicts the last way. This is exact LRU — adequate for the paper's
/// cache sizes and far simpler than tree-PLRU, whose differences are noise
/// at this level of modelling.
///
/// # Example
///
/// ```
/// use atscale_cache::{CacheConfig, SetAssocCache};
///
/// let mut cache = SetAssocCache::new(CacheConfig::new(1024, 4, 64));
/// assert!(!cache.access(0x40)); // cold miss, now filled
/// assert!(cache.access(0x40));  // hit
/// assert!(cache.access(0x7f));  // same 64-byte line → hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `sets * ways` tags, each set contiguous, recency-ordered.
    tags: Vec<u64>,
    sets: u64,
    ways: usize,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways as usize;
        SetAssocCache {
            config,
            tags: vec![INVALID; (sets as usize) * ways],
            sets,
            ways,
            line_shift: config.line_shift(),
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Looks up the block containing `addr`; fills it on miss.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block % self.sets) as usize;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        match ways.iter().position(|&t| t == block) {
            Some(0) => {
                self.hits += 1;
                true
            }
            Some(pos) => {
                // Move to front: rotate [0..=pos] right by one.
                ways[..=pos].rotate_right(1);
                self.hits += 1;
                true
            }
            None => {
                // Evict LRU (last), insert at front.
                ways.rotate_right(1);
                ways[0] = block;
                self.misses += 1;
                false
            }
        }
    }

    /// Looks up without filling or updating recency. Returns `true` if the
    /// block is present. Useful for inclusive-hierarchy probes and tests.
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block % self.sets) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&block)
    }

    /// Invalidates every line and clears hit/miss counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.hits = 0;
        self.misses = 0;
    }

    /// Hits recorded since construction or the last flush.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded since construction or the last flush.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of valid (filled) ways — a warm-up indicator.
    pub fn occupancy(&self) -> f64 {
        let valid = self.tags.iter().filter(|&&t| t != INVALID).count();
        valid as f64 / self.tags.len() as f64
    }
}

impl atscale_vm::CheckInvariants for SetAssocCache {
    fn check_invariants(&self) {
        atscale_vm::invariant!(
            self.tags.len() == (self.sets as usize) * self.ways,
            "tag array holds {} entries for {} sets x {} ways",
            self.tags.len(),
            self.sets,
            self.ways
        );
        for (set, ways) in self.tags.chunks(self.ways).enumerate() {
            for (i, &tag) in ways.iter().enumerate() {
                if tag == INVALID {
                    continue;
                }
                atscale_vm::invariant!(
                    !ways[..i].contains(&tag),
                    "duplicate block {tag:#x} in set {set}"
                );
                atscale_vm::invariant!(
                    (tag % self.sets) as usize == set,
                    "block {tag:#x} stored in set {set}, indexes to {}",
                    tag % self.sets
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets, 2 ways, 64 B lines.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn working_set_within_ways_always_hits() {
        let mut c = small();
        // Two blocks mapping to the same set (stride = sets * line).
        let a = 0u64;
        let b = 4 * 64;
        c.access(a);
        c.access(b);
        for _ in 0..100 {
            assert!(c.access(a));
            assert!(c.access(b));
        }
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64); // all set 0
        c.access(a);
        c.access(b);
        c.access(a); // a most recent
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn same_line_addresses_share_a_block() {
        let mut c = small();
        c.access(0x00);
        assert!(c.access(0x3f));
        assert!(!c.access(0x40), "next line is a different block");
    }

    #[test]
    fn probe_does_not_fill_or_touch_lru() {
        let mut c = small();
        assert!(!c.probe(0));
        assert!(!c.access(0));
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(b);
        // Probing `a` must not refresh it.
        assert!(c.probe(a));
        c.access(d); // should evict a (LRU), not b
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }

    #[test]
    fn flush_clears_contents_and_counters() {
        let mut c = small();
        c.access(0);
        c.access(0);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!(c.occupancy() > 0.0);
        c.flush();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.occupancy(), 0.0);
        assert!(!c.probe(0));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // 8 blocks across 4 sets (2 per set) all fit.
        for i in 0..8u64 {
            c.access(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.probe(i * 64), "block {i} evicted unexpectedly");
        }
    }
}
