//! Generic LRU set-associative cache array.

use crate::{CacheConfig, SetIndexer};

const INVALID: u64 = u64::MAX;

/// An LRU set-associative cache of block tags.
///
/// The array stores one 64-bit tag per way; each set keeps its ways in
/// recency order (most recent first), so a hit performs a move-to-front and
/// a miss evicts the last way. Set indexing goes through a precomputed
/// [`SetIndexer`] instead of a hardware divide, and the scan runs over a
/// set-local slice so the bounds check is paid once per access rather than
/// once per way.
///
/// Move-to-front was benchmarked against a packed-timestamp representation
/// (per-way recency stamps, min-stamp eviction — see the `StampLru` model in
/// the tests, which proves the two make identical hit/evict decisions). The
/// timestamp layout lost by a wide margin on the real sweeps: it writes a
/// stamp on *every* hit where move-to-front's dominant MRU-position hit is
/// read-only, and the second per-way array doubles the model's memory
/// traffic on miss-heavy streams. Exact LRU either way — adequate for the
/// paper's cache sizes and far simpler than tree-PLRU, whose differences
/// are noise at this level of modelling.
///
/// # Example
///
/// ```
/// use atscale_cache::{CacheConfig, SetAssocCache};
///
/// let mut cache = SetAssocCache::new(CacheConfig::new(1024, 4, 64));
/// assert!(!cache.access(0x40)); // cold miss, now filled
/// assert!(cache.access(0x40));  // hit
/// assert!(cache.access(0x7f));  // same 64-byte line → hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `sets * ways` tags, each set contiguous, recency-ordered.
    tags: Vec<u64>,
    indexer: SetIndexer,
    ways: usize,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways as usize;
        debug_assert!(ways >= 1, "a cache needs at least one way");
        SetAssocCache {
            config,
            tags: vec![INVALID; (sets as usize) * ways],
            indexer: SetIndexer::new(sets),
            ways,
            line_shift: config.line_shift(),
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Index range of the set holding `block`.
    #[inline]
    fn set_slice(&self, block: u64) -> std::ops::Range<usize> {
        let base = self.indexer.index(block) * self.ways;
        base..base + self.ways
    }

    /// Looks up the block containing `addr`; fills it on miss.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = self.set_slice(block);
        let ways = &mut self.tags[set];
        match ways.iter().position(|&t| t == block) {
            Some(0) => {
                self.hits += 1;
                true
            }
            Some(pos) => {
                // Move to front: rotate [0..=pos] right by one.
                ways[..=pos].rotate_right(1);
                self.hits += 1;
                true
            }
            None => {
                // Evict LRU (last), insert at front.
                ways.rotate_right(1);
                ways[0] = block;
                self.misses += 1;
                false
            }
        }
    }

    /// Looks up without filling or updating recency. Returns `true` if the
    /// block is present. Useful for inclusive-hierarchy probes and tests.
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        self.tags[self.set_slice(block)].contains(&block)
    }

    /// Invalidates every line and clears hit/miss counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.hits = 0;
        self.misses = 0;
    }

    /// Hits recorded since construction or the last flush.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded since construction or the last flush.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of valid (filled) ways — a warm-up indicator.
    pub fn occupancy(&self) -> f64 {
        let valid = self.tags.iter().filter(|&&t| t != INVALID).count();
        valid as f64 / self.tags.len() as f64
    }
}

impl atscale_vm::CheckInvariants for SetAssocCache {
    fn check_invariants(&self) {
        atscale_vm::invariant!(
            self.tags.len() == (self.indexer.sets() as usize) * self.ways,
            "tag array holds {} entries for {} sets x {} ways",
            self.tags.len(),
            self.indexer.sets(),
            self.ways
        );
        let sets = self.indexer.sets();
        for (set, ways) in self.tags.chunks(self.ways).enumerate() {
            for (i, &tag) in ways.iter().enumerate() {
                if tag == INVALID {
                    continue;
                }
                atscale_vm::invariant!(
                    !ways[..i].contains(&tag),
                    "duplicate block {tag:#x} in set {set}"
                );
                atscale_vm::invariant!(
                    (tag % sets) as usize == set,
                    "block {tag:#x} stored in set {set}, indexes to {}",
                    tag % sets
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets, 2 ways, 64 B lines.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn working_set_within_ways_always_hits() {
        let mut c = small();
        // Two blocks mapping to the same set (stride = sets * line).
        let a = 0u64;
        let b = 4 * 64;
        c.access(a);
        c.access(b);
        for _ in 0..100 {
            assert!(c.access(a));
            assert!(c.access(b));
        }
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        let (a, b, d) = (0u64, 4 * 64, 8 * 64); // all set 0
        c.access(a);
        c.access(b);
        c.access(a); // a most recent
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn same_line_addresses_share_a_block() {
        let mut c = small();
        c.access(0x00);
        assert!(c.access(0x3f));
        assert!(!c.access(0x40), "next line is a different block");
    }

    #[test]
    fn probe_does_not_fill_or_touch_lru() {
        let mut c = small();
        assert!(!c.probe(0));
        assert!(!c.access(0));
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.access(b);
        // Probing `a` must not refresh it.
        assert!(c.probe(a));
        c.access(d); // should evict a (LRU), not b
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }

    #[test]
    fn flush_clears_contents_and_counters() {
        let mut c = small();
        c.access(0);
        c.access(0);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!(c.occupancy() > 0.0);
        c.flush();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.occupancy(), 0.0);
        assert!(!c.probe(0));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        // 8 blocks across 4 sets (2 per set) all fit.
        for i in 0..8u64 {
            c.access(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.probe(i * 64), "block {i} evicted unexpectedly");
        }
    }

    /// Packed-timestamp LRU: per-way recency stamps, min-stamp eviction.
    /// This was the candidate replacement representation; it lost the
    /// benchmark (see the module docs) but stays here as an independent
    /// model proving the shipped move-to-front array implements *exact*
    /// LRU — identical hits and identical victims on every access.
    struct StampLru {
        tags: Vec<u64>,
        stamps: Vec<u64>,
        sets: u64,
        ways: usize,
        clock: u64,
    }

    impl StampLru {
        fn new(sets: u64, ways: usize) -> Self {
            StampLru {
                tags: vec![INVALID; sets as usize * ways],
                stamps: vec![0; sets as usize * ways],
                sets,
                ways,
                clock: 0,
            }
        }

        fn access(&mut self, block: u64) -> bool {
            let base = (block % self.sets) as usize * self.ways;
            self.clock += 1;
            let tags = &mut self.tags[base..base + self.ways];
            let stamps = &mut self.stamps[base..base + self.ways];
            if let Some(pos) = tags.iter().position(|&t| t == block) {
                stamps[pos] = self.clock;
                return true;
            }
            // Min-stamp victim, first index on ties (never-used ways carry
            // stamp 0, so empty slots are consumed before evictions).
            let mut victim = 0;
            for (i, &s) in stamps.iter().enumerate().skip(1) {
                if s < stamps[victim] {
                    victim = i;
                }
            }
            tags[victim] = block;
            stamps[victim] = self.clock;
            false
        }
    }

    #[test]
    fn rotate_lru_matches_stamp_lru_exactly() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Non-power-of-two set count exercises the fastmod path too.
        let mut model = StampLru::new(12, 4);
        let mut cache = SetAssocCache::new(CacheConfig::new(12 * 4 * 64, 4, 64));
        let mut rng = SmallRng::seed_from_u64(0xfeed);
        for i in 0..50_000u64 {
            let addr: u64 = rng.gen_range(0u64..4096) * 64;
            let expect = model.access(addr >> 6);
            let got = cache.access(addr);
            assert_eq!(got, expect, "divergence at access {i}, addr {addr:#x}");
            // The two representations must also agree on *contents*: same
            // resident blocks after every eviction decision.
            if i % 1000 == 0 {
                for set in 0..12usize {
                    let mut a: Vec<u64> = cache.tags[set * 4..set * 4 + 4].to_vec();
                    let mut b: Vec<u64> = model.tags[set * 4..set * 4 + 4].to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "resident-set divergence in set {set}");
                }
            }
        }
    }
}
