//! Cache geometry and latency configuration.

use serde::{Deserialize, Serialize};

/// Geometry of one set-associative cache level.
///
/// # Example
///
/// ```
/// use atscale_cache::CacheConfig;
///
/// let l1 = CacheConfig::new(32 * 1024, 8, 64);
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line, or capacity not divisible into whole sets).
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let cfg = CacheConfig {
            size_bytes,
            ways,
            line_bytes,
        };
        assert!(cfg.sets() > 0, "capacity too small for geometry");
        assert_eq!(
            size_bytes,
            cfg.sets() * ways as u64 * line_bytes as u64,
            "capacity must equal sets * ways * line"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// log2 of the line size.
    pub fn line_shift(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }
}

/// Load-to-use latencies, in core cycles, for each hit level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// L1D hit latency.
    pub l1: u32,
    /// L2 hit latency.
    pub l2: u32,
    /// L3 (LLC) hit latency.
    pub l3: u32,
    /// DRAM access latency.
    pub memory: u32,
}

impl LatencyConfig {
    /// Haswell-class latencies at 2.5 GHz (7-cpu.com figures the paper cites:
    /// L1 4, L2 12, L3 ≈ 34–40, DRAM ≈ 200+ cycles).
    pub fn haswell() -> Self {
        LatencyConfig {
            l1: 4,
            l2: 12,
            l3: 40,
            memory: 230,
        }
    }
}

/// Full hierarchy configuration (geometries + latencies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Level-1 data cache.
    pub l1: CacheConfig,
    /// Unified level-2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub l3: CacheConfig,
    /// Hit latencies per level.
    pub latency: LatencyConfig,
}

impl HierarchyConfig {
    /// The paper's Table III machine: 32 KB/8-way L1D, 256 KB/8-way L2,
    /// 30 MB/20-way shared L3 (one socket), 64-byte lines.
    pub fn haswell() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 << 10, 8, 64),
            l2: CacheConfig::new(256 << 10, 8, 64),
            l3: CacheConfig::new(30 << 20, 20, 64),
            latency: LatencyConfig::haswell(),
        }
    }

    /// A tiny hierarchy for fast unit tests (256 B / 1 KiB / 4 KiB).
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(256, 2, 64),
            l2: CacheConfig::new(1024, 4, 64),
            l3: CacheConfig::new(4096, 4, 64),
            latency: LatencyConfig::haswell(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_geometry_matches_table_iii() {
        let cfg = HierarchyConfig::haswell();
        assert_eq!(cfg.l1.size_bytes, 32 << 10);
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.l3.size_bytes, 30 << 20);
        assert_eq!(cfg.l3.ways, 20);
        assert_eq!(cfg.l3.sets(), 24576);
    }

    #[test]
    fn line_shift_is_log2() {
        assert_eq!(CacheConfig::new(1024, 4, 64).line_shift(), 6);
        assert_eq!(CacheConfig::new(2048, 4, 128).line_shift(), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        CacheConfig::new(1024, 4, 48);
    }

    #[test]
    #[should_panic(expected = "sets * ways * line")]
    fn inconsistent_capacity_rejected() {
        CacheConfig::new(1000, 4, 64);
    }

    #[test]
    fn latencies_are_monotonic() {
        let lat = LatencyConfig::haswell();
        assert!(lat.l1 < lat.l2);
        assert!(lat.l2 < lat.l3);
        assert!(lat.l3 < lat.memory);
    }
}
