//! Property tests checking [`atscale_cache::SetAssocCache`] against a
//! naive reference model (per-set `Vec` with explicit LRU ordering), and
//! hierarchy-level invariants.

use atscale_cache::{AccessKind, CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache};
use atscale_vm::PhysAddr;
use proptest::prelude::*;

/// A deliberately simple, obviously-correct LRU set-associative cache.
struct ReferenceCache {
    sets: Vec<Vec<u64>>, // most-recent first
    ways: usize,
    line_shift: u32,
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        ReferenceCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            line_shift: config.line_shift(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        let set = (block % self.sets.len() as u64) as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&b| b == block) {
            entries.remove(pos);
            entries.insert(0, block);
            true
        } else {
            entries.insert(0, block);
            entries.truncate(self.ways);
            false
        }
    }
}

proptest! {
    /// Every access sequence produces identical hit/miss outcomes in the
    /// production cache and the reference model.
    #[test]
    fn set_assoc_cache_matches_reference(
        addrs in prop::collection::vec(0u64..(1 << 16), 1..600),
        ways in 1u32..8,
        sets_log2 in 0u32..5,
    ) {
        let line = 64u32;
        let sets = 1u64 << sets_log2;
        let config = CacheConfig::new(sets * ways as u64 * line as u64, ways, line);
        let mut cache = SetAssocCache::new(config);
        let mut reference = ReferenceCache::new(config);
        for &addr in &addrs {
            let got = cache.access(addr);
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at address {:#x}", addr);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// Probing never changes behaviour: interleaving probes between
    /// accesses leaves the hit/miss sequence untouched.
    #[test]
    fn probe_is_side_effect_free(
        addrs in prop::collection::vec(0u64..(1 << 14), 1..300),
    ) {
        let config = CacheConfig::new(4096, 4, 64);
        let mut plain = SetAssocCache::new(config);
        let mut probed = SetAssocCache::new(config);
        for (i, &addr) in addrs.iter().enumerate() {
            // Probe a pseudo-random address before each access.
            let noise = (addr.rotate_left(i as u32)) ^ 0xabcd;
            let _ = probed.probe(noise);
            prop_assert_eq!(plain.access(addr), probed.access(addr));
        }
    }

    /// Hierarchy monotonicity: an immediate re-access is always an L1 hit,
    /// and latencies match the configured level latencies exactly.
    #[test]
    fn immediate_reaccess_hits_l1(addrs in prop::collection::vec(0u64..(1 << 20), 1..200)) {
        let config = HierarchyConfig::haswell();
        let mut h = CacheHierarchy::new(config);
        for &addr in &addrs {
            let first = h.access(PhysAddr::new(addr), AccessKind::Data);
            let again = h.access(PhysAddr::new(addr), AccessKind::Data);
            prop_assert_eq!(again.level, atscale_cache::HitLevel::L1);
            prop_assert_eq!(again.latency, config.latency.l1);
            let valid = [
                config.latency.l1,
                config.latency.l2,
                config.latency.l3,
                config.latency.memory,
            ];
            prop_assert!(valid.contains(&first.latency));
        }
    }

    /// Stats conservation: data + pte totals equal the number of accesses,
    /// regardless of interleaving.
    #[test]
    fn stats_conserve_access_counts(
        ops in prop::collection::vec((0u64..(1 << 18), prop::bool::ANY), 1..400),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        let mut pte_count = 0u64;
        for &(addr, is_pte) in &ops {
            let kind = if is_pte { AccessKind::PageTable } else { AccessKind::Data };
            pte_count += is_pte as u64;
            h.access(PhysAddr::new(addr), kind);
        }
        let stats = h.stats();
        prop_assert_eq!(stats.pte.total(), pte_count);
        prop_assert_eq!(stats.data.total() + stats.pte.total(), ops.len() as u64);
        let d = stats.pte_location_distribution();
        let sum = d.l1 + d.l2 + d.l3 + d.memory;
        if pte_count > 0 {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }
}
