//! Phase-scoped span tracing with a process-global registry.
//!
//! A [`span`] times a phase of harness execution ("sweep", "run",
//! "warmup", "generator-setup", …). Spans nest: a span opened while another
//! is active on the same thread records under the parent's path
//! (`"sweep/run"`), so the summary table shows *where inside* a sweep the
//! wall-clock went. Aggregation is per-path across all threads — each
//! worker accumulates locally-scoped guards into the shared registry on
//! drop — and the registry additionally counts how many distinct threads
//! contributed to each path.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Debug, Default)]
struct SpanStats {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    threads: HashSet<ThreadId>,
}

static REGISTRY: Mutex<BTreeMap<String, SpanStats>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for one span path, as exported by
/// [`span_records`] and the JSONL `span` event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Slash-joined nesting path, e.g. `"sweep/run"`.
    pub path: String,
    /// Times a guard with this path was dropped.
    pub count: u64,
    /// Total nanoseconds across all guards (includes nested child time).
    pub total_ns: u64,
    /// Longest single guard in nanoseconds.
    pub max_ns: u64,
    /// Distinct threads that recorded this path.
    pub threads: u64,
}

/// An active span; records elapsed wall-clock into the global registry on
/// drop. Obtain via [`span`] or the [`span!`](crate::span!) macro.
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    start: Instant,
}

/// Opens a span named `name`, nested under the calling thread's innermost
/// active span.
pub fn span(name: &str) -> SpanGuard {
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        path,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop innermost-first; if a guard outlives its
            // parent (moved out of scope order) fall back to removal by path.
            if stack.last() == Some(&self.path) {
                stack.pop();
            } else if let Some(i) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(i);
            }
        });
        let mut registry = REGISTRY.lock();
        let stats = registry.entry(self.path.clone()).or_default();
        stats.count += 1;
        stats.total_ns += elapsed;
        stats.max_ns = stats.max_ns.max(elapsed);
        stats.threads.insert(std::thread::current().id());
    }
}

/// Opens a span; expands to [`span`].
///
/// ```
/// let _guard = atscale_telemetry::span!("sweep");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Snapshot of every recorded span path, sorted by path.
pub fn span_records() -> Vec<SpanRecord> {
    REGISTRY
        .lock()
        .iter()
        .map(|(path, s)| SpanRecord {
            path: path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            max_ns: s.max_ns,
            threads: s.threads.len() as u64,
        })
        .collect()
}

/// Clears the registry (tests and repeated in-process harness runs).
pub fn reset_spans() {
    REGISTRY.lock().clear();
}

/// Renders the per-phase timing table: one row per span path with count,
/// total/mean/max milliseconds, and the share of the total root time.
pub fn render_spans() -> String {
    let records = span_records();
    if records.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let root_total: u64 = records
        .iter()
        .filter(|r| !r.path.contains('/'))
        .map(|r| r.total_ns)
        .sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>7} {:>12} {:>10} {:>10} {:>7} {:>6}\n",
        "phase", "count", "total ms", "mean ms", "max ms", "threads", "%root"
    ));
    for r in &records {
        let ms = |ns: u64| ns as f64 / 1e6;
        let share = if root_total == 0 {
            0.0
        } else {
            100.0 * r.total_ns as f64 / root_total as f64
        };
        out.push_str(&format!(
            "{:<28} {:>7} {:>12.2} {:>10.3} {:>10.2} {:>7} {:>6.1}\n",
            r.path,
            r.count,
            ms(r.total_ns),
            ms(r.total_ns) / r.count.max(1) as f64,
            ms(r.max_ns),
            r.threads,
            share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global registry, so they run in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn spans_nest_aggregate_and_reset() {
        reset_spans();
        {
            let _outer = span("outer-test");
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _again = span("inner");
        }
        let records = span_records();
        let paths: Vec<&str> = records.iter().map(|r| r.path.as_str()).collect();
        assert!(paths.contains(&"outer-test"));
        assert!(paths.contains(&"outer-test/inner"));
        let inner = records
            .iter()
            .find(|r| r.path == "outer-test/inner")
            .unwrap();
        assert_eq!(inner.count, 2);
        assert!(inner.total_ns >= 1_000_000, "sleep was timed");
        assert_eq!(inner.threads, 1);

        let outer = records.iter().find(|r| r.path == "outer-test").unwrap();
        assert!(outer.total_ns >= inner.total_ns, "parent includes child");

        let table = render_spans();
        assert!(table.contains("outer-test/inner"));
        assert!(table.contains("%root"));

        // Worker threads land on the same path, tallied separately.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = span("outer-test");
                });
            }
        });
        let outer_after = span_records()
            .into_iter()
            .find(|r| r.path == "outer-test")
            .unwrap();
        assert_eq!(outer_after.count, 3);
        assert_eq!(outer_after.threads, 3);

        reset_spans();
        assert!(span_records().is_empty());
        assert_eq!(render_spans(), "no spans recorded\n");
    }
}
