//! JSONL schema validation for the telemetry event stream.
//!
//! The stream is newline-delimited JSON objects, each carrying a `type`
//! discriminator. The schema is versioned by the leading `meta` event
//! ([`crate::SCHEMA_VERSION`]); [`validate_stream`] enforces both the
//! per-event shapes and the stream-level protocol (meta first, exactly one
//! trailing `summary`). CI runs this validator over a real `fig1` sample
//! stream, and the golden-schema test pins the exact key sets so schema
//! drift is an explicit, reviewed change.

use crate::{LatencyMetric, SCHEMA_VERSION};
use serde::Value;
use std::collections::BTreeMap;

/// Rates every `sample` event must carry — the interval series the paper
/// reproduction is observed through.
pub const REQUIRED_RATES: [&str; 3] = ["wcpi", "stlb_mpki", "aborted_frac"];

/// Counters every `sample` event must carry (cumulative values).
pub const REQUIRED_COUNTERS: [&str; 2] = ["inst_retired.any", "dtlb_misses.walk_duration"];

fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn need<'a>(map: &'a [(String, Value)], key: &str, event: &str) -> Result<&'a Value, String> {
    field(map, key).ok_or_else(|| format!("{event} event missing required key `{key}`"))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        other => Err(format!(
            "{what} must be a non-negative integer, got {other:?}"
        )),
    }
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(format!("{what} must be a string, got {other:?}")),
    }
}

fn as_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::F64(x) => Ok(*x),
        Value::U64(n) => Ok(*n as f64),
        Value::I64(n) => Ok(*n as f64),
        // Non-finite floats serialize as null in JSON.
        Value::Null => Ok(f64::NAN),
        other => Err(format!("{what} must be a number, got {other:?}")),
    }
}

/// Validates a `[[name, value], ...]` pair list, returning the names.
fn pair_names(v: &Value, what: &str, numeric: bool) -> Result<Vec<String>, String> {
    let items = v
        .as_seq()
        .map_err(|_| format!("{what} must be an array of [name, value] pairs"))?;
    let mut names = Vec::with_capacity(items.len());
    for item in items {
        let pair = item
            .as_seq()
            .map_err(|_| format!("{what} entries must be [name, value] pairs"))?;
        if pair.len() != 2 {
            return Err(format!("{what} entries must have exactly 2 elements"));
        }
        let name = as_str(&pair[0], &format!("{what} entry name"))?;
        if numeric {
            as_f64(&pair[1], &format!("{what} `{name}` value"))?;
        } else {
            as_u64(&pair[1], &format!("{what} `{name}` value"))?;
        }
        names.push(name.to_string());
    }
    Ok(names)
}

fn validate_sample(map: &[(String, Value)]) -> Result<(), String> {
    as_str(need(map, "run", "sample")?, "sample.run")?;
    as_u64(need(map, "instr", "sample")?, "sample.instr")?;
    as_u64(need(map, "cycles", "sample")?, "sample.cycles")?;
    let counters = pair_names(need(map, "counters", "sample")?, "sample.counters", false)?;
    for required in REQUIRED_COUNTERS {
        if !counters.iter().any(|n| n == required) {
            return Err(format!("sample.counters missing required `{required}`"));
        }
    }
    let rates = pair_names(need(map, "rates", "sample")?, "sample.rates", true)?;
    for required in REQUIRED_RATES {
        if !rates.iter().any(|n| n == required) {
            return Err(format!("sample.rates missing required `{required}`"));
        }
    }
    Ok(())
}

fn validate_hist(map: &[(String, Value)]) -> Result<(), String> {
    let metric = as_str(need(map, "metric", "hist")?, "hist.metric")?;
    if LatencyMetric::parse(metric).is_none() {
        return Err(format!(
            "hist.metric `{metric}` is not a known LatencyMetric"
        ));
    }
    as_str(need(map, "unit", "hist")?, "hist.unit")?;
    let count = as_u64(need(map, "count", "hist")?, "hist.count")?;
    as_u64(need(map, "sum", "hist")?, "hist.sum")?;
    as_u64(need(map, "min", "hist")?, "hist.min")?;
    as_u64(need(map, "max", "hist")?, "hist.max")?;
    let buckets = need(map, "buckets", "hist")?
        .as_seq()
        .map_err(|_| "hist.buckets must be an array".to_string())?;
    let mut total = 0u64;
    for b in buckets {
        let entries = b
            .as_map()
            .map_err(|_| "hist bucket must be an object".to_string())?;
        let lo = as_u64(need(entries, "lo", "hist bucket")?, "bucket.lo")?;
        let hi = as_u64(need(entries, "hi", "hist bucket")?, "bucket.hi")?;
        if lo > hi {
            return Err(format!("hist bucket has lo {lo} > hi {hi}"));
        }
        total += as_u64(need(entries, "count", "hist bucket")?, "bucket.count")?;
    }
    if total != count {
        return Err(format!(
            "hist bucket counts sum to {total} but count says {count}"
        ));
    }
    Ok(())
}

fn validate_span(map: &[(String, Value)]) -> Result<(), String> {
    as_str(need(map, "path", "span")?, "span.path")?;
    as_u64(need(map, "count", "span")?, "span.count")?;
    as_u64(need(map, "total_ns", "span")?, "span.total_ns")?;
    as_u64(need(map, "max_ns", "span")?, "span.max_ns")?;
    as_u64(need(map, "threads", "span")?, "span.threads")?;
    Ok(())
}

fn validate_fault(map: &[(String, Value)]) -> Result<(), String> {
    as_str(need(map, "site", "fault")?, "fault.site")?;
    as_u64(need(map, "hit", "fault")?, "fault.hit")?;
    Ok(())
}

fn validate_progress(map: &[(String, Value)]) -> Result<(), String> {
    as_u64(need(map, "completed", "progress")?, "progress.completed")?;
    as_u64(need(map, "total", "progress")?, "progress.total")?;
    as_str(need(map, "label", "progress")?, "progress.label")?;
    as_u64(need(map, "wall_ms", "progress")?, "progress.wall_ms")?;
    Ok(())
}

fn validate_meta(map: &[(String, Value)]) -> Result<(), String> {
    let schema = as_u64(need(map, "schema", "meta")?, "meta.schema")?;
    if schema != SCHEMA_VERSION {
        return Err(format!(
            "meta.schema {schema} does not match supported version {SCHEMA_VERSION}"
        ));
    }
    as_str(need(map, "stream", "meta")?, "meta.stream")?;
    Ok(())
}

fn validate_summary(map: &[(String, Value)]) -> Result<(), String> {
    as_u64(need(map, "samples", "summary")?, "summary.samples")?;
    as_u64(need(map, "progress", "summary")?, "summary.progress")?;
    as_u64(need(map, "spans", "summary")?, "summary.spans")?;
    Ok(())
}

/// Validates one JSONL line, returning the event type on success.
///
/// # Errors
///
/// Returns a human-readable description of the first schema violation.
pub fn validate_line(line: &str) -> Result<String, String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("line is not valid JSON: {e:?}"))?;
    let map = value
        .as_map()
        .map_err(|_| "event must be a JSON object".to_string())?;
    let event_type = as_str(need(map, "type", "event")?, "event.type")?.to_string();
    match event_type.as_str() {
        "meta" => validate_meta(map)?,
        "sample" => validate_sample(map)?,
        "hist" => validate_hist(map)?,
        "span" => validate_span(map)?,
        "fault" => validate_fault(map)?,
        "progress" => validate_progress(map)?,
        "summary" => validate_summary(map)?,
        other => return Err(format!("unknown event type `{other}`")),
    }
    Ok(event_type)
}

/// Per-type event counts of a validated stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Non-empty lines validated.
    pub lines: usize,
    /// Events per `type` discriminator.
    pub by_type: BTreeMap<String, usize>,
}

/// Validates a whole JSONL stream: every line must pass [`validate_line`],
/// the first event must be `meta`, and the last must be `summary`.
///
/// # Errors
///
/// Returns `(line_number, description)` of the first violation (line
/// numbers are 1-based; protocol-level violations report line 0).
pub fn validate_stream(text: &str) -> Result<StreamSummary, (usize, String)> {
    let mut summary = StreamSummary::default();
    let mut last_type = String::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event_type = validate_line(line).map_err(|e| (i + 1, e))?;
        if summary.lines == 0 && event_type != "meta" {
            return Err((
                i + 1,
                format!("stream must open with a meta event, got `{event_type}`"),
            ));
        }
        summary.lines += 1;
        *summary.by_type.entry(event_type.clone()).or_default() += 1;
        last_type = event_type;
    }
    if summary.lines == 0 {
        return Err((0, "stream contains no events".to_string()));
    }
    if last_type != "summary" {
        return Err((
            0,
            format!("stream must end with a summary event, got `{last_type}`"),
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_line_validates() {
        let line = r#"{"type":"meta","schema":2,"stream":"atscale-telemetry"}"#;
        assert_eq!(validate_line(line).unwrap(), "meta");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let line = r#"{"type":"meta","schema":99,"stream":"atscale-telemetry"}"#;
        assert!(validate_line(line).unwrap_err().contains("schema"));
    }

    #[test]
    fn sample_requires_the_headline_rates() {
        let line = r#"{"type":"sample","run":"r","instr":10,"cycles":20,
            "counters":[["inst_retired.any",10],["dtlb_misses.walk_duration",4]],
            "rates":[["wcpi",0.4],["stlb_mpki",1.0]]}"#
            .replace('\n', " ");
        let err = validate_line(&line).unwrap_err();
        assert!(err.contains("aborted_frac"), "got: {err}");
    }

    #[test]
    fn hist_bucket_counts_must_reconcile() {
        let line = r#"{"type":"hist","metric":"walk_cycles","unit":"cycles","count":3,
            "sum":10,"min":1,"max":5,"buckets":[{"lo":1,"hi":1,"count":1}]}"#
            .replace('\n', " ");
        let err = validate_line(&line).unwrap_err();
        assert!(err.contains("sum to 1"), "got: {err}");
    }

    #[test]
    fn stream_protocol_is_enforced() {
        let good = concat!(
            r#"{"type":"meta","schema":2,"stream":"atscale-telemetry"}"#,
            "\n",
            r#"{"type":"summary","samples":0,"progress":0,"spans":0}"#,
            "\n"
        );
        let s = validate_stream(good).unwrap();
        assert_eq!(s.lines, 2);
        assert_eq!(s.by_type.get("meta"), Some(&1));

        let no_meta = r#"{"type":"summary","samples":0,"progress":0,"spans":0}"#;
        assert!(validate_stream(no_meta).is_err());

        let no_summary = r#"{"type":"meta","schema":2,"stream":"atscale-telemetry"}"#;
        assert!(validate_stream(no_summary).is_err());

        assert!(validate_stream("").is_err());
    }
}
