//! JSONL schema validation for the telemetry event stream.
//!
//! The stream is newline-delimited JSON objects, each carrying a `type`
//! discriminator. The schema is versioned by the leading `meta` event
//! ([`crate::SCHEMA_VERSION`]); [`validate_stream`] enforces both the
//! per-event shapes and the stream-level protocol (meta first, exactly one
//! trailing `summary`). CI runs this validator over real `fig1` and
//! `perf_native` sample streams, and the golden-schema test pins the exact
//! key sets so schema drift is an explicit, reviewed change.
//!
//! ## Versions
//!
//! * **v1** — initial stream (meta/sample/hist/span/progress/summary).
//! * **v2** — added the `fault` event (deterministic fault injection).
//! * **v3** — every event carries a `source` tag (`"sim"` for simulator
//!   streams, `"native"` for the hardware-counter harness), and the
//!   `native_unavailable` event records an explicit skip when
//!   `perf_event_open` is denied. Streams announcing v2 in their meta
//!   event are still accepted under the v2 rules.
//!
//! Validation reports **every** violation it can find in one pass
//! ([`validate_stream_all`]), not just the first — a sim-vs-native schema
//! diff must be debuggable in a single run.

use crate::{LatencyMetric, SCHEMA_VERSION};
use serde::Value;
use std::collections::BTreeMap;

/// Oldest stream version [`validate_stream`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 2;

/// The admissible values of the schema-v3 `source` tag.
pub const SOURCES: [&str; 2] = ["sim", "native"];

/// Rates every `sample` event must carry — the interval series the paper
/// reproduction is observed through.
pub const REQUIRED_RATES: [&str; 3] = ["wcpi", "stlb_mpki", "aborted_frac"];

/// Counters every `sample` event must carry (cumulative values).
pub const REQUIRED_COUNTERS: [&str; 2] = ["inst_retired.any", "dtlb_misses.walk_duration"];

fn field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn need<'a>(map: &'a [(String, Value)], key: &str, event: &str) -> Result<&'a Value, String> {
    field(map, key).ok_or_else(|| format!("{event} event missing required key `{key}`"))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        other => Err(format!(
            "{what} must be a non-negative integer, got {other:?}"
        )),
    }
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(format!("{what} must be a string, got {other:?}")),
    }
}

fn as_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::F64(x) => Ok(*x),
        Value::U64(n) => Ok(*n as f64),
        Value::I64(n) => Ok(*n as f64),
        // Non-finite floats serialize as null in JSON.
        Value::Null => Ok(f64::NAN),
        other => Err(format!("{what} must be a number, got {other:?}")),
    }
}

/// Pushes the error of a failed check, keeping the pass going.
fn check<T>(errs: &mut Vec<String>, result: Result<T, String>) -> Option<T> {
    match result {
        Ok(v) => Some(v),
        Err(e) => {
            errs.push(e);
            None
        }
    }
}

/// Required `u64` key: records the error and keeps scanning.
fn need_u64(map: &[(String, Value)], key: &str, event: &str, errs: &mut Vec<String>) {
    let checked =
        need(map, key, event).and_then(|v| as_u64(v, &format!("{event}.{key}")).map(|_| ()));
    check(errs, checked);
}

/// Required string key: records the error and keeps scanning.
fn need_str(map: &[(String, Value)], key: &str, event: &str, errs: &mut Vec<String>) {
    let checked =
        need(map, key, event).and_then(|v| as_str(v, &format!("{event}.{key}")).map(|_| ()));
    check(errs, checked);
}

/// Validates a `[[name, value], ...]` pair list, returning the names it
/// could parse and recording every malformed entry.
fn pair_names(v: &Value, what: &str, numeric: bool, errs: &mut Vec<String>) -> Vec<String> {
    let Some(items) = check(
        errs,
        v.as_seq()
            .map_err(|_| format!("{what} must be an array of [name, value] pairs")),
    ) else {
        return Vec::new();
    };
    let mut names = Vec::with_capacity(items.len());
    for item in items {
        let Some(pair) = check(
            errs,
            item.as_seq()
                .map_err(|_| format!("{what} entries must be [name, value] pairs")),
        ) else {
            continue;
        };
        if pair.len() != 2 {
            errs.push(format!("{what} entries must have exactly 2 elements"));
            continue;
        }
        let Some(name) = check(errs, as_str(&pair[0], &format!("{what} entry name"))) else {
            continue;
        };
        if numeric {
            check(errs, as_f64(&pair[1], &format!("{what} `{name}` value")));
        } else {
            check(errs, as_u64(&pair[1], &format!("{what} `{name}` value")));
        }
        names.push(name.to_string());
    }
    names
}

fn validate_sample(map: &[(String, Value)], errs: &mut Vec<String>) {
    need_str(map, "run", "sample", errs);
    need_u64(map, "instr", "sample", errs);
    need_u64(map, "cycles", "sample", errs);
    if let Some(v) = check(errs, need(map, "counters", "sample")) {
        let counters = pair_names(v, "sample.counters", false, errs);
        for required in REQUIRED_COUNTERS {
            if !counters.iter().any(|n| n == required) {
                errs.push(format!("sample.counters missing required `{required}`"));
            }
        }
    }
    if let Some(v) = check(errs, need(map, "rates", "sample")) {
        let rates = pair_names(v, "sample.rates", true, errs);
        for required in REQUIRED_RATES {
            if !rates.iter().any(|n| n == required) {
                errs.push(format!("sample.rates missing required `{required}`"));
            }
        }
    }
}

fn validate_hist(map: &[(String, Value)], errs: &mut Vec<String>) {
    if let Some(metric) =
        check(errs, need(map, "metric", "hist")).and_then(|v| check(errs, as_str(v, "hist.metric")))
    {
        if LatencyMetric::parse(metric).is_none() {
            errs.push(format!(
                "hist.metric `{metric}` is not a known LatencyMetric"
            ));
        }
    }
    need_str(map, "unit", "hist", errs);
    let count =
        check(errs, need(map, "count", "hist")).and_then(|v| check(errs, as_u64(v, "hist.count")));
    need_u64(map, "sum", "hist", errs);
    need_u64(map, "min", "hist", errs);
    need_u64(map, "max", "hist", errs);
    let Some(buckets) = check(errs, need(map, "buckets", "hist")).and_then(|v| {
        check(
            errs,
            v.as_seq()
                .map_err(|_| "hist.buckets must be an array".to_string()),
        )
    }) else {
        return;
    };
    let mut total = 0u64;
    for b in buckets {
        let Some(entries) = check(
            errs,
            b.as_map()
                .map_err(|_| "hist bucket must be an object".to_string()),
        ) else {
            continue;
        };
        let lo = check(errs, need(entries, "lo", "hist bucket"))
            .and_then(|v| check(errs, as_u64(v, "bucket.lo")));
        let hi = check(errs, need(entries, "hi", "hist bucket"))
            .and_then(|v| check(errs, as_u64(v, "bucket.hi")));
        if let (Some(lo), Some(hi)) = (lo, hi) {
            if lo > hi {
                errs.push(format!("hist bucket has lo {lo} > hi {hi}"));
            }
        }
        if let Some(n) = check(errs, need(entries, "count", "hist bucket"))
            .and_then(|v| check(errs, as_u64(v, "bucket.count")))
        {
            total += n;
        }
    }
    if let Some(count) = count {
        if total != count {
            errs.push(format!(
                "hist bucket counts sum to {total} but count says {count}"
            ));
        }
    }
}

fn validate_span(map: &[(String, Value)], errs: &mut Vec<String>) {
    need_str(map, "path", "span", errs);
    need_u64(map, "count", "span", errs);
    need_u64(map, "total_ns", "span", errs);
    need_u64(map, "max_ns", "span", errs);
    need_u64(map, "threads", "span", errs);
}

fn validate_fault(map: &[(String, Value)], errs: &mut Vec<String>) {
    need_str(map, "site", "fault", errs);
    need_u64(map, "hit", "fault", errs);
}

fn validate_progress(map: &[(String, Value)], errs: &mut Vec<String>) {
    need_u64(map, "completed", "progress", errs);
    need_u64(map, "total", "progress", errs);
    need_str(map, "label", "progress", errs);
    need_u64(map, "wall_ms", "progress", errs);
}

fn validate_meta(map: &[(String, Value)], errs: &mut Vec<String>) -> Option<u64> {
    let schema = check(errs, need(map, "schema", "meta"))
        .and_then(|v| check(errs, as_u64(v, "meta.schema")));
    if let Some(schema) = schema {
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            errs.push(format!(
                "meta.schema {schema} is outside the supported range \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
            ));
            return None;
        }
    }
    need_str(map, "stream", "meta", errs);
    schema
}

fn validate_native_unavailable(map: &[(String, Value)], errs: &mut Vec<String>) {
    need_str(map, "reason", "native_unavailable", errs);
}

fn validate_summary(map: &[(String, Value)], errs: &mut Vec<String>) {
    need_u64(map, "samples", "summary", errs);
    need_u64(map, "progress", "summary", errs);
    need_u64(map, "spans", "summary", errs);
}

/// The schema-v3 `source` tag every event must carry.
fn validate_source(map: &[(String, Value)], event: &str, errs: &mut Vec<String>) {
    if let Some(source) = check(errs, need(map, "source", event))
        .and_then(|v| check(errs, as_str(v, &format!("{event}.source"))))
    {
        if !SOURCES.contains(&source) {
            errs.push(format!(
                "{event}.source `{source}` is not one of {SOURCES:?}"
            ));
        }
    }
}

/// Validates one JSONL line under stream version `version`, returning the
/// event type (when one could be read at all) plus **every** violation
/// found — missing keys are reported together, not one per run.
pub fn validate_line_all(line: &str, version: u64) -> (Option<String>, Vec<String>) {
    let mut errs = Vec::new();
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            errs.push(format!("line is not valid JSON: {e:?}"));
            return (None, errs);
        }
    };
    let Some(map) = check(
        &mut errs,
        value
            .as_map()
            .map_err(|_| "event must be a JSON object".to_string()),
    ) else {
        return (None, errs);
    };
    let Some(event_type) = check(&mut errs, need(map, "type", "event"))
        .and_then(|v| check(&mut errs, as_str(v, "event.type")))
        .map(ToString::to_string)
    else {
        return (None, errs);
    };
    // The meta event declares the version the rest of the stream (and its
    // own shape) is validated under.
    let version = match event_type.as_str() {
        "meta" => validate_meta(map, &mut errs).unwrap_or(version),
        "sample" => {
            validate_sample(map, &mut errs);
            version
        }
        "hist" => {
            validate_hist(map, &mut errs);
            version
        }
        "span" => {
            validate_span(map, &mut errs);
            version
        }
        "fault" => {
            validate_fault(map, &mut errs);
            version
        }
        "progress" => {
            validate_progress(map, &mut errs);
            version
        }
        "native_unavailable" => {
            if version < 3 {
                errs.push(format!(
                    "native_unavailable events require schema v3 (stream is v{version})"
                ));
            }
            validate_native_unavailable(map, &mut errs);
            version
        }
        "summary" => {
            validate_summary(map, &mut errs);
            version
        }
        other => {
            errs.push(format!("unknown event type `{other}`"));
            return (Some(event_type), errs);
        }
    };
    if version >= 3 {
        validate_source(map, &event_type, &mut errs);
    }
    (Some(event_type), errs)
}

/// Validates one JSONL line under the current [`SCHEMA_VERSION`],
/// returning the event type on success.
///
/// # Errors
///
/// Returns a human-readable description of the first schema violation.
pub fn validate_line(line: &str) -> Result<String, String> {
    let (event_type, errs) = validate_line_all(line, SCHEMA_VERSION);
    match errs.into_iter().next() {
        Some(e) => Err(e),
        None => Ok(event_type.expect("error-free line has a type")),
    }
}

/// Per-type event counts of a validated stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Non-empty lines validated.
    pub lines: usize,
    /// Events per `type` discriminator.
    pub by_type: BTreeMap<String, usize>,
    /// The stream's declared schema version (from the meta event), or the
    /// current [`SCHEMA_VERSION`] when the meta event was unreadable.
    pub schema: u64,
}

/// Validates a whole JSONL stream, collecting **every** violation: every
/// line must pass [`validate_line_all`] under the version the meta event
/// declares, the first event must be `meta`, and the last must be
/// `summary`. Returns the best-effort summary together with all
/// violations as `(line_number, description)` pairs (1-based; stream-level
/// violations report line 0).
pub fn validate_stream_all(text: &str) -> (StreamSummary, Vec<(usize, String)>) {
    let mut summary = StreamSummary {
        schema: SCHEMA_VERSION,
        ..StreamSummary::default()
    };
    let mut violations = Vec::new();
    let mut last_type = String::new();
    let mut version = SCHEMA_VERSION;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if summary.lines == 0 {
            // Peek the declared version first so every line of a v2
            // stream — including the meta event itself — is judged by v2
            // rules.
            if let Ok(v) = serde_json::from_str::<Value>(line) {
                if let Ok(map) = v.as_map() {
                    if let Some(Ok(schema)) = field(map, "schema").map(|s| as_u64(s, "schema")) {
                        if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
                            version = schema;
                            summary.schema = schema;
                        }
                    }
                }
            }
        }
        let (event_type, errs) = validate_line_all(line, version);
        violations.extend(errs.into_iter().map(|e| (i + 1, e)));
        let Some(event_type) = event_type else {
            continue;
        };
        if summary.lines == 0 && event_type != "meta" {
            violations.push((
                i + 1,
                format!("stream must open with a meta event, got `{event_type}`"),
            ));
        }
        summary.lines += 1;
        *summary.by_type.entry(event_type.clone()).or_default() += 1;
        last_type = event_type;
    }
    if summary.lines == 0 {
        violations.push((0, "stream contains no events".to_string()));
    } else if last_type != "summary" {
        violations.push((
            0,
            format!("stream must end with a summary event, got `{last_type}`"),
        ));
    }
    (summary, violations)
}

/// Validates a whole JSONL stream: every line must pass validation, the
/// first event must be `meta`, and the last must be `summary`.
///
/// # Errors
///
/// Returns `(line_number, description)` of the first violation (line
/// numbers are 1-based; protocol-level violations report line 0).
pub fn validate_stream(text: &str) -> Result<StreamSummary, (usize, String)> {
    let (summary, violations) = validate_stream_all(text);
    match violations.into_iter().next() {
        Some(v) => Err(v),
        None => Ok(summary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_line_validates() {
        // A v2 meta event has no source tag; a v3 one requires it.
        let line = r#"{"type":"meta","schema":2,"stream":"atscale-telemetry"}"#;
        assert_eq!(validate_line(line).unwrap(), "meta");
        let line = r#"{"type":"meta","schema":3,"source":"sim","stream":"atscale-telemetry"}"#;
        assert_eq!(validate_line(line).unwrap(), "meta");
        let line = r#"{"type":"meta","schema":3,"stream":"atscale-telemetry"}"#;
        assert!(validate_line(line).unwrap_err().contains("source"));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let line = r#"{"type":"meta","schema":99,"stream":"atscale-telemetry"}"#;
        assert!(validate_line(line).unwrap_err().contains("schema"));
        let line = r#"{"type":"meta","schema":1,"stream":"atscale-telemetry"}"#;
        assert!(validate_line(line).unwrap_err().contains("schema"));
    }

    #[test]
    fn bad_source_values_are_rejected() {
        let line = r#"{"type":"fault","source":"hardware","site":"s","hit":1}"#;
        let err = validate_line(line).unwrap_err();
        assert!(err.contains("hardware"), "got: {err}");
    }

    #[test]
    fn sample_requires_the_headline_rates() {
        let line = r#"{"type":"sample","source":"sim","run":"r","instr":10,"cycles":20,
            "counters":[["inst_retired.any",10],["dtlb_misses.walk_duration",4]],
            "rates":[["wcpi",0.4],["stlb_mpki",1.0]]}"#
            .replace('\n', " ");
        let err = validate_line(&line).unwrap_err();
        assert!(err.contains("aborted_frac"), "got: {err}");
    }

    #[test]
    fn all_violations_are_reported_in_one_pass() {
        // Missing both rates AND both counters AND the source tag: every
        // one of the five defects must surface in a single validation.
        let line = r#"{"type":"sample","run":"r","instr":10,"cycles":20,
            "counters":[],"rates":[["wcpi",0.4]]}"#
            .replace('\n', " ");
        let (event_type, errs) = validate_line_all(&line, SCHEMA_VERSION);
        assert_eq!(event_type.as_deref(), Some("sample"));
        let text = errs.join("\n");
        for needle in [
            "inst_retired.any",
            "dtlb_misses.walk_duration",
            "stlb_mpki",
            "aborted_frac",
            "`source`",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        assert!(errs.len() >= 5, "expected >= 5 errors, got {errs:?}");
    }

    #[test]
    fn native_unavailable_is_v3_only() {
        let line = r#"{"type":"native_unavailable","source":"native","reason":"EPERM"}"#;
        assert_eq!(validate_line(line).unwrap(), "native_unavailable");
        let (_, errs) = validate_line_all(line, 2);
        assert!(
            errs.iter().any(|e| e.contains("schema v3")),
            "got: {errs:?}"
        );
    }

    #[test]
    fn hist_bucket_counts_must_reconcile() {
        let line = r#"{"type":"hist","source":"sim","metric":"walk_cycles","unit":"cycles",
            "count":3,"sum":10,"min":1,"max":5,"buckets":[{"lo":1,"hi":1,"count":1}]}"#
            .replace('\n', " ");
        let err = validate_line(&line).unwrap_err();
        assert!(err.contains("sum to 1"), "got: {err}");
    }

    #[test]
    fn v2_streams_are_accepted_without_source_tags() {
        let v2 = concat!(
            r#"{"type":"meta","schema":2,"stream":"atscale-telemetry"}"#,
            "\n",
            r#"{"type":"fault","site":"StoreTorn","hit":0}"#,
            "\n",
            r#"{"type":"summary","samples":0,"progress":0,"spans":0}"#,
            "\n"
        );
        let s = validate_stream(v2).unwrap();
        assert_eq!(s.schema, 2);
        assert_eq!(s.lines, 3);
    }

    #[test]
    fn v3_streams_require_source_on_every_event() {
        let v3 = concat!(
            r#"{"type":"meta","schema":3,"source":"native","stream":"atscale-native"}"#,
            "\n",
            r#"{"type":"summary","samples":0,"progress":0,"spans":0}"#,
            "\n"
        );
        let (summary, violations) = validate_stream_all(v3);
        assert_eq!(summary.schema, 3);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0]
            .1
            .contains("summary event missing required key `source`"));
    }

    #[test]
    fn stream_protocol_is_enforced() {
        let good = concat!(
            r#"{"type":"meta","schema":3,"source":"sim","stream":"atscale-telemetry"}"#,
            "\n",
            r#"{"type":"summary","source":"sim","samples":0,"progress":0,"spans":0}"#,
            "\n"
        );
        let s = validate_stream(good).unwrap();
        assert_eq!(s.lines, 2);
        assert_eq!(s.schema, 3);
        assert_eq!(s.by_type.get("meta"), Some(&1));

        let no_meta = r#"{"type":"summary","source":"sim","samples":0,"progress":0,"spans":0}"#;
        assert!(validate_stream(no_meta).is_err());

        let no_summary =
            r#"{"type":"meta","schema":3,"source":"sim","stream":"atscale-telemetry"}"#;
        assert!(validate_stream(no_summary).is_err());

        assert!(validate_stream("").is_err());
    }
}
