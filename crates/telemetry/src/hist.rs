//! Log-scale latency histograms with a fixed, merge-able bucket layout.
//!
//! The layout is HDR-style: below [`SUBBUCKETS`] every value has its own
//! bucket; above it, each power-of-two octave is split into [`SUBBUCKETS`]
//! linear sub-buckets, bounding the relative quantile error at
//! `1 / SUBBUCKETS` (12.5%). Because the layout is *fixed* — a pure
//! function of the value, independent of what was recorded — histograms
//! from different threads or runs merge by bucket-wise addition, exactly
//! like `perf`'s latency profiles concatenate.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave; also the direct-mapped range below it.
pub const SUBBUCKETS: u64 = 8;

/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = 3;

/// Number of buckets needed to cover all of `u64`: values below
/// `2 * SUBBUCKETS` are direct-mapped (16 buckets), then 60 octaves of 8.
pub const BUCKETS: usize = 496;

/// A fixed-layout logarithmic histogram of `u64` samples (cycles, nanos).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value. Total function: every `u64` has a bucket.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb.saturating_sub(SUB_BITS);
    (u64::from(shift) * SUBBUCKETS + (v >> shift)) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    let i = index as u64;
    if i < 2 * SUBBUCKETS {
        return (i, i);
    }
    let shift = i / SUBBUCKETS - 1;
    let sub = i % SUBBUCKETS + SUBBUCKETS;
    let lo = sub << shift;
    // Width is 2^shift; adding it to the last bucket's lo would overflow,
    // so derive hi additively.
    (lo, lo + ((1u64 << shift) - 1))
}

/// One non-empty bucket of a histogram snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Smallest value mapping to this bucket.
    pub lo: u64,
    /// Largest value mapping to this bucket.
    pub hi: u64,
    /// Samples recorded in `[lo, hi]`.
    pub count: u64,
}

/// A serializable sparse snapshot of a [`LogHistogram`] (non-empty buckets
/// only), the form embedded in JSONL `hist` events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets in ascending value order.
    pub buckets: Vec<HistBucket>,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (so the true value is never
    /// under-reported by more than the bucket's 12.5% relative width).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets in ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<HistBucket> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                HistBucket { lo, hi, count: c }
            })
            .collect()
    }

    /// A sparse serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            buckets: self.nonzero_buckets(),
        }
    }

    /// Rebuilds a histogram from a snapshot. Counts land on each bucket's
    /// lower bound, which maps back to the same bucket (layout is fixed),
    /// so record → snapshot → restore preserves every bucket count.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> LogHistogram {
        let mut h = LogHistogram::new();
        for b in &snap.buckets {
            h.counts[bucket_of(b.lo)] += b.count;
            h.count += b.count;
        }
        h.sum = snap.sum;
        h.min = if snap.count == 0 { u64::MAX } else { snap.min };
        h.max = snap.max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..2 * SUBBUCKETS {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        for &v in &[0, 1, 7, 8, 15, 16, 17, 100, 1023, 1024, 1 << 20, u64::MAX] {
            let i = bucket_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn bucket_layout_is_contiguous() {
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "gap before bucket {i}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1, "u64::MAX reached before the last bucket");
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("layout never reached u64::MAX");
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((500..=575).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [3u64, 90, 4096, 77777, 12] {
            a.record(v);
            whole.record(v);
        }
        for v in [1u64, 1 << 30, 255] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut h = LogHistogram::new();
        for v in [0u64, 5, 129, 70000] {
            h.record_n(v, 3);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let restored = LogHistogram::from_snapshot(&back);
        assert_eq!(restored.count(), h.count());
        assert_eq!(restored.nonzero_buckets(), h.nonzero_buckets());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
