//! A [`Recorder`] that broadcasts every event to a dynamic set of targets.
//!
//! The serving daemon routes one job's telemetry to every connection
//! subscribed to it — and single-flight deduplication means subscribers
//! can join *while the job is already running*, so the target list must be
//! mutable behind the shared recorder. [`FanoutRecorder`] is that router:
//! instrumentation sites hold it as one `Arc<dyn Recorder>`, and targets
//! are attached/detached concurrently.

use crate::{LatencyMetric, Progress, Recorder, Sample};
use parking_lot::Mutex;
use std::sync::Arc;

/// Broadcasts every [`Recorder`] event to all currently attached targets.
///
/// Events observed before a target attaches are *not* replayed — a late
/// subscriber sees the stream from its attach point onward (the serving
/// layer documents this as the late-subscriber rule).
#[derive(Default)]
pub struct FanoutRecorder {
    targets: Mutex<Vec<Arc<dyn Recorder>>>,
}

impl std::fmt::Debug for FanoutRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutRecorder")
            .field("targets", &self.targets.lock().len())
            .finish()
    }
}

impl FanoutRecorder {
    /// An empty fan-out (events are dropped until a target attaches).
    pub fn new() -> FanoutRecorder {
        FanoutRecorder::default()
    }

    /// Attaches a target; it receives every event from this point on.
    pub fn attach(&self, target: Arc<dyn Recorder>) {
        self.targets.lock().push(target);
    }

    /// Number of currently attached targets.
    pub fn target_count(&self) -> usize {
        self.targets.lock().len()
    }

    /// Snapshot of the current targets, so dispatch happens outside the
    /// list lock (a slow target must not block attachment).
    fn snapshot(&self) -> Vec<Arc<dyn Recorder>> {
        self.targets.lock().clone()
    }
}

impl Recorder for FanoutRecorder {
    fn sample(&self, run: &str, sample: &Sample) {
        for t in self.snapshot() {
            t.sample(run, sample);
        }
    }

    fn latency(&self, metric: LatencyMetric, value: u64) {
        for t in self.snapshot() {
            t.latency(metric, value);
        }
    }

    fn progress(&self, event: &Progress) {
        for t in self.snapshot() {
            t.progress(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    fn sample() -> Sample {
        Sample {
            instr: 10,
            cycles: 25,
            counters: vec![("inst_retired.any".into(), 10)],
            rates: vec![("wcpi".into(), 1.5)],
        }
    }

    #[test]
    fn events_reach_every_attached_target() {
        let fanout = FanoutRecorder::new();
        let a = Arc::new(TelemetrySink::new());
        let b = Arc::new(TelemetrySink::new());
        fanout.sample("early", &sample()); // no targets: dropped
        fanout.attach(a.clone());
        fanout.sample("mid", &sample());
        fanout.attach(b.clone());
        fanout.latency(LatencyMetric::WalkCycles, 40);
        fanout.progress(&Progress {
            completed: 1,
            total: 1,
            label: "r".into(),
            wall_ms: 2,
            cached: false,
        });
        assert_eq!(fanout.target_count(), 2);
        assert_eq!(a.sample_count(), 1, "early event dropped, mid delivered");
        assert_eq!(b.sample_count(), 0, "late subscriber misses prior events");
        assert_eq!(a.histogram(LatencyMetric::WalkCycles).count(), 1);
        assert_eq!(b.histogram(LatencyMetric::WalkCycles).count(), 1);
        assert_eq!(a.progress_count(), 1);
        assert_eq!(b.progress_count(), 1);
    }

    #[test]
    fn attach_during_dispatch_is_safe() {
        let fanout = Arc::new(FanoutRecorder::new());
        let sink = Arc::new(TelemetrySink::new());
        std::thread::scope(|scope| {
            let f = Arc::clone(&fanout);
            let s = Arc::clone(&sink);
            scope.spawn(move || {
                for _ in 0..100 {
                    f.attach(s.clone());
                }
            });
            for _ in 0..100 {
                fanout.sample("r", &sample());
            }
        });
        assert_eq!(fanout.target_count(), 100);
    }
}
