//! The standard [`Recorder`] implementation: in-memory aggregation plus an
//! optional JSONL event stream, and the process-global sink registry the
//! harness binaries install into.

use crate::{span_records, LatencyMetric, LogHistogram, Progress, Recorder, Sample};
use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// JSONL schema version emitted in the `meta` event and checked by the
/// schema validator.
///
/// Version history: 1 — initial stream; 2 — added the `fault` event
/// (deterministic fault-injection observations from chaos runs); 3 —
/// every event carries a `source` tag (`"sim"` | `"native"`) and the
/// `native_unavailable` event records an explicit hardware-counter skip.
pub const SCHEMA_VERSION: u64 = 3;

struct JsonlWriter {
    path: PathBuf,
    file: BufWriter<File>,
    write_errors: u64,
}

impl JsonlWriter {
    fn write_event(&mut self, value: &Value) {
        let mut line = serde_json::to_string(value).unwrap_or_default();
        line.push('\n');
        if self.file.write_all(line.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }
}

#[derive(Default)]
struct SinkState {
    hists: Vec<LogHistogram>,
    samples: Vec<(String, Sample)>,
    progress_events: u64,
    fault_events: u64,
    native_unavailable_events: u64,
    jsonl: Option<JsonlWriter>,
    finished: bool,
}

/// The standard telemetry sink: aggregates latency histograms and sampled
/// series in memory, optionally streaming every event as a JSON line.
///
/// All mutation happens under one internal lock; the instrumented hot
/// paths only reach it on walk-level events and per-interval samples, not
/// per instruction.
pub struct TelemetrySink {
    state: Mutex<SinkState>,
    stderr_progress: bool,
    /// The schema-v3 `source` tag stamped on every emitted event:
    /// `"sim"` (default) or `"native"`.
    source: String,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("TelemetrySink")
            .field("samples", &state.samples.len())
            .field("progress_events", &state.progress_events)
            .field("jsonl", &state.jsonl.as_ref().map(|j| j.path.clone()))
            .finish_non_exhaustive()
    }
}

impl Default for TelemetrySink {
    fn default() -> Self {
        Self::new()
    }
}

fn tagged(event_type: &str, source: &str, head: Vec<(String, Value)>, body: Value) -> Value {
    let mut entries = vec![
        ("type".to_string(), Value::Str(event_type.to_string())),
        ("source".to_string(), Value::Str(source.to_string())),
    ];
    entries.extend(head);
    if let Value::Map(fields) = body {
        entries.extend(fields);
    }
    Value::Map(entries)
}

impl TelemetrySink {
    /// An in-memory sink with no JSONL stream, tagged `source: "sim"`.
    pub fn new() -> TelemetrySink {
        TelemetrySink {
            state: Mutex::new(SinkState {
                hists: vec![LogHistogram::new(); LatencyMetric::ALL.len()],
                ..SinkState::default()
            }),
            stderr_progress: false,
            source: "sim".to_string(),
        }
    }

    /// Sets the schema-v3 `source` tag (`"sim"` or `"native"`) stamped on
    /// every emitted event. Call **before** [`TelemetrySink::with_jsonl`]
    /// so the `meta` header carries the tag too.
    pub fn with_source(mut self, source: impl Into<String>) -> TelemetrySink {
        self.source = source.into();
        self
    }

    /// The stream's `source` tag.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Attaches a JSONL stream at `path` (parent directories are created)
    /// and writes the `meta` header event.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn with_jsonl(self, path: impl AsRef<Path>) -> std::io::Result<TelemetrySink> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut writer = JsonlWriter {
            file: BufWriter::new(File::create(&path)?),
            path,
            write_errors: 0,
        };
        writer.write_event(&Value::Map(vec![
            ("type".to_string(), Value::Str("meta".to_string())),
            ("source".to_string(), Value::Str(self.source.clone())),
            ("schema".to_string(), Value::U64(SCHEMA_VERSION)),
            (
                "stream".to_string(),
                Value::Str("atscale-telemetry".to_string()),
            ),
        ]));
        self.state.lock().jsonl = Some(writer);
        Ok(self)
    }

    /// Also echoes progress events to stderr (for interactive sweeps).
    pub fn with_stderr_progress(mut self, enabled: bool) -> TelemetrySink {
        self.stderr_progress = enabled;
        self
    }

    /// Snapshot of one latency histogram.
    pub fn histogram(&self, metric: LatencyMetric) -> LogHistogram {
        self.state.lock().hists[metric.index()].clone()
    }

    /// All samples delivered so far, as `(run label, sample)` pairs in
    /// arrival order.
    pub fn samples(&self) -> Vec<(String, Sample)> {
        self.state.lock().samples.clone()
    }

    /// Number of samples delivered so far.
    pub fn sample_count(&self) -> usize {
        self.state.lock().samples.len()
    }

    /// Number of progress events delivered so far.
    pub fn progress_count(&self) -> u64 {
        self.state.lock().progress_events
    }

    /// Records one injected-fault firing (from a chaos-test
    /// `FaultPlan` observer): `site` is the fault-site name, `hit` the
    /// site-local arrival ordinal that fired.
    pub fn fault(&self, site: &str, hit: u64) {
        let mut state = self.state.lock();
        state.fault_events += 1;
        let event = Value::Map(vec![
            ("type".to_string(), Value::Str("fault".to_string())),
            ("source".to_string(), Value::Str(self.source.clone())),
            ("site".to_string(), Value::Str(site.to_string())),
            ("hit".to_string(), Value::U64(hit)),
        ]);
        if let Some(writer) = state.jsonl.as_mut() {
            // analyze:allow(lock-io): JSONL events are written under the state lock so the stream order is total; the writer is buffered
            writer.write_event(&event);
        }
    }

    /// Number of fault events delivered so far.
    pub fn fault_count(&self) -> u64 {
        self.state.lock().fault_events
    }

    /// Records that the native hardware-counter harness could not run
    /// (`perf_event_open` denied or unsupported): an explicit, validated
    /// skip marker so CI can tell "no native data" from "harness broke".
    pub fn native_unavailable(&self, reason: &str) {
        let mut state = self.state.lock();
        state.native_unavailable_events += 1;
        let event = Value::Map(vec![
            (
                "type".to_string(),
                Value::Str("native_unavailable".to_string()),
            ),
            ("source".to_string(), Value::Str(self.source.clone())),
            ("reason".to_string(), Value::Str(reason.to_string())),
        ]);
        if let Some(writer) = state.jsonl.as_mut() {
            // analyze:allow(lock-io): skip markers share the ordered JSONL stream; the buffered write stays under the state lock by design
            writer.write_event(&event);
        }
    }

    /// Number of `native_unavailable` events delivered so far.
    pub fn native_unavailable_count(&self) -> u64 {
        self.state.lock().native_unavailable_events
    }

    /// Finalizes the stream: emits `hist` events for every non-empty
    /// metric, `span` events from the global registry, and a trailing
    /// `summary` event, then flushes. Idempotent — only the first call
    /// writes. Returns the JSONL path, if streaming was enabled.
    pub fn finish(&self) -> Option<PathBuf> {
        let mut state = self.state.lock();
        let path = state.jsonl.as_ref().map(|j| j.path.clone());
        if state.finished {
            return path;
        }
        state.finished = true;
        let hist_events: Vec<Value> = LatencyMetric::ALL
            .into_iter()
            .filter(|m| !state.hists[m.index()].is_empty())
            .map(|m| {
                tagged(
                    "hist",
                    &self.source,
                    vec![
                        ("metric".to_string(), Value::Str(m.name().to_string())),
                        ("unit".to_string(), Value::Str(m.unit().to_string())),
                    ],
                    state.hists[m.index()].snapshot().to_value(),
                )
            })
            .collect();
        let span_events: Vec<Value> = span_records()
            .iter()
            .map(|r| tagged("span", &self.source, Vec::new(), r.to_value()))
            .collect();
        let summary = Value::Map(vec![
            ("type".to_string(), Value::Str("summary".to_string())),
            ("source".to_string(), Value::Str(self.source.clone())),
            (
                "samples".to_string(),
                Value::U64(state.samples.len() as u64),
            ),
            ("progress".to_string(), Value::U64(state.progress_events)),
            ("spans".to_string(), Value::U64(span_events.len() as u64)),
        ]);
        if let Some(writer) = state.jsonl.as_mut() {
            for event in hist_events.iter().chain(&span_events) {
                // analyze:allow(lock-io): finalization writes under the state lock so no sample can interleave into the hist/span/summary tail
                writer.write_event(event);
            }
            // analyze:allow(lock-io): the summary must be the last event before the flush; the lock guarantees that ordering
            writer.write_event(&summary);
            // analyze:allow(lock-io): final flush of a finished stream — nothing else will take this lock for writing afterwards
            let _ = writer.file.flush();
        }
        path
    }

    /// Renders the human `--telemetry-summary` report: the per-phase span
    /// table plus one line per non-empty latency histogram.
    pub fn summary(&self) -> String {
        let mut out = String::from("== telemetry: phase timings ==\n");
        out.push_str(&crate::render_spans());
        let state = self.state.lock();
        out.push_str("\n== telemetry: latency histograms ==\n");
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8}\n",
            "metric", "count", "mean", "p50", "p99", "max", "unit"
        ));
        for m in LatencyMetric::ALL {
            let h = &state.hists[m.index()];
            if h.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>10} {:>12.1} {:>10} {:>10} {:>10} {:>8}\n",
                m.name(),
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
                m.unit()
            ));
        }
        out.push_str(&format!(
            "\n{} interval samples from {} runs, {} progress events\n",
            state.samples.len(),
            {
                let mut runs: Vec<&str> = state.samples.iter().map(|(r, _)| r.as_str()).collect();
                runs.sort_unstable();
                runs.dedup();
                runs.len()
            },
            state.progress_events
        ));
        out
    }
}

impl Recorder for TelemetrySink {
    fn sample(&self, run: &str, sample: &Sample) {
        let mut state = self.state.lock();
        let event = tagged(
            "sample",
            &self.source,
            vec![("run".to_string(), Value::Str(run.to_string()))],
            sample.to_value(),
        );
        if let Some(writer) = state.jsonl.as_mut() {
            // analyze:allow(lock-io): samples stream under the state lock so concurrent runs cannot interleave half-ordered events; the writer is buffered
            writer.write_event(&event);
        }
        state.samples.push((run.to_string(), sample.clone()));
    }

    fn latency(&self, metric: LatencyMetric, value: u64) {
        self.state.lock().hists[metric.index()].record(value);
    }

    fn progress(&self, event: &Progress) {
        if self.stderr_progress {
            eprintln!("{}", event.render());
        }
        let mut state = self.state.lock();
        state.progress_events += 1;
        let line = tagged("progress", &self.source, Vec::new(), event.to_value());
        if let Some(writer) = state.jsonl.as_mut() {
            // analyze:allow(lock-io): progress events share the ordered JSONL stream; the buffered write stays under the state lock by design
            writer.write_event(&line);
        }
    }
}

static GLOBAL: Mutex<Option<Arc<TelemetrySink>>> = Mutex::new(None);

/// Installs `sink` as the process-global telemetry sink, returning the
/// previously installed one (if any).
pub fn install(sink: Arc<TelemetrySink>) -> Option<Arc<TelemetrySink>> {
    GLOBAL.lock().replace(sink)
}

/// The process-global sink, if one is installed.
pub fn installed() -> Option<Arc<TelemetrySink>> {
    GLOBAL.lock().clone()
}

/// Removes and returns the process-global sink.
pub fn uninstall() -> Option<Arc<TelemetrySink>> {
    GLOBAL.lock().take()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample {
            instr: 100,
            cycles: 220,
            counters: vec![("inst_retired.any".into(), 100)],
            rates: vec![("wcpi".into(), 0.5)],
        }
    }

    #[test]
    fn sink_aggregates_latencies_and_samples() {
        let sink = TelemetrySink::new();
        sink.latency(LatencyMetric::WalkCycles, 30);
        sink.latency(LatencyMetric::WalkCycles, 90);
        sink.sample("run-a", &sample());
        sink.progress(&Progress {
            completed: 1,
            total: 2,
            label: "run-a".into(),
            wall_ms: 5,
            cached: false,
        });
        assert_eq!(sink.histogram(LatencyMetric::WalkCycles).count(), 2);
        assert!(sink.histogram(LatencyMetric::RunWallNanos).is_empty());
        assert_eq!(sink.sample_count(), 1);
        assert_eq!(sink.progress_count(), 1);
        sink.fault("StoreTorn", 0);
        assert_eq!(sink.fault_count(), 1);
        let summary = sink.summary();
        assert!(summary.contains("walk_cycles"));
        assert!(summary.contains("1 interval samples from 1 runs"));
    }

    #[test]
    fn jsonl_stream_contains_all_event_types() {
        let path = std::env::temp_dir().join(format!("atscale-sink-{}.jsonl", std::process::id()));
        let sink = TelemetrySink::new().with_jsonl(&path).unwrap();
        sink.sample("r", &sample());
        sink.latency(LatencyMetric::TlbFillCycles, 12);
        sink.fault("WorkerPanic", 3);
        sink.progress(&Progress {
            completed: 1,
            total: 1,
            label: "r".into(),
            wall_ms: 1,
            cached: false,
        });
        sink.native_unavailable("perf_event_open: EPERM");
        assert_eq!(sink.native_unavailable_count(), 1);
        assert_eq!(sink.finish().as_deref(), Some(path.as_path()));
        assert_eq!(sink.finish().as_deref(), Some(path.as_path()), "idempotent");
        let text = std::fs::read_to_string(&path).unwrap();
        for needle in [
            "\"type\":\"meta\"",
            "\"type\":\"sample\"",
            "\"type\":\"fault\"",
            "\"type\":\"hist\"",
            "\"type\":\"progress\"",
            "\"type\":\"native_unavailable\"",
            "\"type\":\"summary\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        for line in text.lines() {
            assert!(
                line.contains("\"source\":\"sim\""),
                "schema v3: every event carries the source tag: {line}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn native_source_tags_the_whole_stream() {
        let path =
            std::env::temp_dir().join(format!("atscale-sink-native-{}.jsonl", std::process::id()));
        let sink = TelemetrySink::new()
            .with_source("native")
            .with_jsonl(&path)
            .unwrap();
        assert_eq!(sink.source(), "native");
        sink.sample("r", &sample());
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            assert!(
                line.contains("\"source\":\"native\""),
                "native stream mis-tagged: {line}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn global_install_roundtrip() {
        let sink = Arc::new(TelemetrySink::new());
        let prev = install(Arc::clone(&sink));
        assert!(installed().is_some());
        match prev {
            Some(p) => {
                install(p);
            }
            None => {
                uninstall();
            }
        }
    }
}
