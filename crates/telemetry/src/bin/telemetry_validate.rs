//! CLI JSONL schema validator: `telemetry_validate <stream.jsonl>...`.
//!
//! Exits non-zero on the first schema violation, so CI can gate the
//! telemetry smoke job on the emitted stream staying well-formed.

#![forbid(unsafe_code)]

use atscale_telemetry::schema::validate_stream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: telemetry_validate <stream.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_stream(&text) {
            Ok(summary) => {
                let counts: Vec<String> = summary
                    .by_type
                    .iter()
                    .map(|(t, n)| format!("{t}={n}"))
                    .collect();
                println!(
                    "{path}: OK ({} events: {})",
                    summary.lines,
                    counts.join(" ")
                );
            }
            Err((line, msg)) => {
                eprintln!("{path}:{line}: schema violation: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
