//! CLI JSONL schema validator: `telemetry_validate <stream.jsonl>...`.
//!
//! Reports **every** schema violation in each stream (not just the first)
//! and exits non-zero if any stream has one, so CI can gate the telemetry
//! smoke jobs on emitted streams staying well-formed and a sim-vs-native
//! schema diff is debuggable in a single run.

#![forbid(unsafe_code)]

use atscale_telemetry::schema::validate_stream_all;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: telemetry_validate <stream.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let (summary, violations) = validate_stream_all(&text);
        if violations.is_empty() {
            let counts: Vec<String> = summary
                .by_type
                .iter()
                .map(|(t, n)| format!("{t}={n}"))
                .collect();
            println!(
                "{path}: OK (schema v{}, {} events: {})",
                summary.schema,
                summary.lines,
                counts.join(" ")
            );
        } else {
            for (line, msg) in &violations {
                eprintln!("{path}:{line}: schema violation: {msg}");
            }
            eprintln!("{path}: {} violation(s)", violations.len());
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
