//! The [`Recorder`] trait and the event payloads that flow through it.
//!
//! Instrumentation sites (the MMU engine, the sweep harness) hold an
//! `Option<Arc<dyn Recorder>>`: with no sink installed the hot path pays
//! one branch; with one installed, events are dispatched virtually to the
//! sink, which aggregates under a lock. The payload types are plain data —
//! serializable, comparable — so sampled series can be persisted alongside
//! run records and replayed into sinks from cache.

use serde::{Deserialize, Serialize};

/// The latency distributions the stack records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMetric {
    /// Page-table walk duration in cycles (retired, wrong-path and aborted
    /// walks alike — `dtlb_misses.walk_duration` semantics per walk).
    WalkCycles,
    /// Cycles to refill the L1 TLB after a miss: the L2 hit penalty on an
    /// STLB hit, or the full walk duration on an STLB miss.
    TlbFillCycles,
    /// Harness wall-clock per run in nanoseconds (cache hits included).
    RunWallNanos,
}

impl LatencyMetric {
    /// Every metric, in JSONL emission order.
    pub const ALL: [LatencyMetric; 3] = [
        LatencyMetric::WalkCycles,
        LatencyMetric::TlbFillCycles,
        LatencyMetric::RunWallNanos,
    ];

    /// Stable snake_case name used in JSONL `hist` events.
    pub fn name(self) -> &'static str {
        match self {
            LatencyMetric::WalkCycles => "walk_cycles",
            LatencyMetric::TlbFillCycles => "tlb_fill_cycles",
            LatencyMetric::RunWallNanos => "run_wall_nanos",
        }
    }

    /// The unit of recorded values, for summary rendering.
    pub fn unit(self) -> &'static str {
        match self {
            LatencyMetric::WalkCycles | LatencyMetric::TlbFillCycles => "cycles",
            LatencyMetric::RunWallNanos => "ns",
        }
    }

    /// Parses a [`LatencyMetric::name`] back to the metric.
    pub fn parse(name: &str) -> Option<LatencyMetric> {
        LatencyMetric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Index into per-metric arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            LatencyMetric::WalkCycles => 0,
            LatencyMetric::TlbFillCycles => 1,
            LatencyMetric::RunWallNanos => 2,
        }
    }
}

/// One interval sample: the cumulative counter file at a point in the
/// measured instruction stream, plus rates derived over the interval since
/// the previous sample.
///
/// Counter values are *cumulative since measurement start*, so the final
/// sample of a run reconciles exactly with the end-of-run totals; rates
/// are *per interval*, which is what makes phase changes within a run
/// visible (the `perf stat -I` model).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Measured instructions retired at this sample point (cumulative).
    pub instr: u64,
    /// Measured cycles at this sample point (cumulative).
    pub cycles: u64,
    /// Cumulative named counters, in a fixed emission order.
    pub counters: Vec<(String, u64)>,
    /// Interval-derived rates (WCPI, STLB MPKI, walk-outcome fractions,
    /// PTE-location mix), in a fixed emission order.
    pub rates: Vec<(String, f64)>,
}

impl Sample {
    /// The cumulative value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of a named interval rate, if present.
    pub fn rate(&self, name: &str) -> Option<f64> {
        self.rates.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// A sweep-progress event: one run finished.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Progress {
    /// Runs completed so far, including this one.
    pub completed: usize,
    /// Total runs in the batch.
    pub total: usize,
    /// Short human label for the finished run (workload/footprint/page).
    pub label: String,
    /// Wall-clock milliseconds this run took (0 for a cache hit measured
    /// below timer resolution).
    pub wall_ms: u64,
    /// `true` if the run was served from the on-disk run cache.
    pub cached: bool,
}

impl Progress {
    /// The one-line rendering used for the stderr fallback.
    pub fn render(&self) -> String {
        format!(
            "[atscale] run {}/{} {} ({} ms{})",
            self.completed,
            self.total,
            self.label,
            self.wall_ms,
            if self.cached { ", cached" } else { "" }
        )
    }
}

/// A telemetry sink. Implementations must be thread-safe: the harness
/// dispatches from every worker thread.
pub trait Recorder: Send + Sync {
    /// Delivers one interval sample for the run labelled `run`.
    fn sample(&self, run: &str, sample: &Sample);

    /// Records one latency observation into the metric's histogram.
    fn latency(&self, metric: LatencyMetric, value: u64);

    /// Delivers a sweep-progress event.
    fn progress(&self, event: &Progress);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_roundtrip() {
        for m in LatencyMetric::ALL {
            assert_eq!(LatencyMetric::parse(m.name()), Some(m));
            assert!(!m.unit().is_empty());
        }
        assert_eq!(LatencyMetric::parse("nope"), None);
    }

    #[test]
    fn sample_lookup_and_serde_roundtrip() {
        let s = Sample {
            instr: 1000,
            cycles: 2000,
            counters: vec![("inst_retired.any".into(), 1000)],
            rates: vec![("wcpi".into(), 0.25)],
        };
        assert_eq!(s.counter("inst_retired.any"), Some(1000));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.rate("wcpi"), Some(0.25));
        let back: Sample = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn progress_renders_one_line() {
        let p = Progress {
            completed: 3,
            total: 21,
            label: "cc-urand 256M 4K".into(),
            wall_ms: 120,
            cached: true,
        };
        let line = p.render();
        assert!(line.contains("3/21"));
        assert!(line.contains("cached"));
        assert!(!line.contains('\n'));
    }
}
