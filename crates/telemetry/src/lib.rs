//! # atscale-telemetry — observability for the simulation stack
//!
//! The paper's methodology is *observation*: it reads hardware counters to
//! understand translation behaviour. This crate gives the reproduction the
//! same lens over itself, three instruments deep:
//!
//! * **Interval samples** ([`Sample`], the [`Recorder::sample`] channel) —
//!   the software analogue of `perf stat -I`: the MMU engine snapshots the
//!   counter file every N retired instructions and derives interval rates
//!   (WCPI, STLB MPKI, walk-outcome fractions, PTE-location mix), so
//!   behaviour *within* a run is visible, not just end-of-run totals.
//! * **Latency histograms** ([`LogHistogram`], [`LatencyMetric`]) —
//!   fixed-layout log-scale histograms of walk duration, TLB fill latency
//!   and per-run harness wall-clock; merge-able across threads.
//! * **Phase spans** ([`span`], [`span!`]) — nested wall-clock spans over
//!   harness phases (`sweep/run`, generator setup, …) aggregated in a
//!   process-global registry and rendered as the `--telemetry-summary`
//!   table.
//!
//! Everything flows through the [`Recorder`] trait: instrumentation sites
//! hold an `Option<Arc<dyn Recorder>>`, so a build with no sink installed
//! pays a single branch on the instrumented paths. The standard sink
//! ([`TelemetrySink`]) aggregates in memory and can stream every event as
//! JSON lines; [`schema`] validates that stream, and CI runs the
//! `telemetry_validate` binary over a real harness emission.
//!
//! ## Example
//!
//! ```
//! use atscale_telemetry::{LatencyMetric, Recorder, TelemetrySink};
//!
//! let sink = TelemetrySink::new();
//! {
//!     let _phase = atscale_telemetry::span!("doc-example");
//!     sink.latency(LatencyMetric::WalkCycles, 38);
//!     sink.latency(LatencyMetric::WalkCycles, 112);
//! }
//! assert_eq!(sink.histogram(LatencyMetric::WalkCycles).count(), 2);
//! assert!(sink.summary().contains("walk_cycles"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fanout;
mod hist;
mod recorder;
pub mod schema;
mod sink;
mod span;

pub use fanout::FanoutRecorder;
pub use hist::{bucket_bounds, HistBucket, HistogramSnapshot, LogHistogram, BUCKETS, SUBBUCKETS};
pub use recorder::{LatencyMetric, Progress, Recorder, Sample};
pub use sink::{install, installed, uninstall, TelemetrySink, SCHEMA_VERSION};
pub use span::{render_spans, reset_spans, span, span_records, SpanGuard, SpanRecord};
