//! Property tests for the fixed-layout log-scale histogram: bucket
//! boundaries partition `u64`, quantile error stays within the layout's
//! 12.5% bound, and record/merge/snapshot are all equivalent routes to the
//! same bucket counts.

use atscale_telemetry::{bucket_bounds, HistogramSnapshot, LogHistogram, BUCKETS, SUBBUCKETS};
use proptest::prelude::*;

/// The bucket a value lands in, observed through the public API.
fn containing_bucket(v: u64) -> (u64, u64) {
    let mut h = LogHistogram::new();
    h.record(v);
    let buckets = h.nonzero_buckets();
    assert_eq!(buckets.len(), 1);
    (buckets[0].lo, buckets[0].hi)
}

proptest! {
    /// Every `u64` lands inside the bounds of exactly one bucket, and that
    /// bucket's relative width respects the `1 / SUBBUCKETS` error bound.
    #[test]
    fn any_value_lands_in_a_tight_bucket(v in 0u64..=u64::MAX) {
        let (lo, hi) = containing_bucket(v);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        // Direct-mapped range is exact; octave buckets are `lo/8` wide.
        if lo < 2 * SUBBUCKETS {
            prop_assert_eq!(lo, hi);
        } else {
            prop_assert!(hi - lo <= lo / SUBBUCKETS, "bucket [{lo},{hi}] too wide");
        }
    }

    /// Bucket bounds tile `u64` without gaps or overlaps: sampling any
    /// index pair preserves ordering, and each bucket maps back to itself.
    #[test]
    fn bucket_bounds_are_ordered_and_self_consistent(
        i in 0usize..BUCKETS,
        j in 0usize..BUCKETS,
    ) {
        let (lo_i, hi_i) = bucket_bounds(i);
        prop_assert!(lo_i <= hi_i);
        // Both endpoints land back in bucket `i`.
        prop_assert_eq!(containing_bucket(lo_i), (lo_i, hi_i));
        prop_assert_eq!(containing_bucket(hi_i), (lo_i, hi_i));
        if i < j {
            let (lo_j, _) = bucket_bounds(j);
            prop_assert!(hi_i < lo_j, "buckets {i} and {j} overlap");
        }
    }

    /// Count, sum, min, max, and the p100 quantile reflect the recorded
    /// values exactly (the summary stats are not bucket-quantised).
    #[test]
    fn summary_stats_are_exact(values in prop::collection::vec(0u64..(1 << 48), 1..200)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// Quantiles never under-report and over-report by at most the bucket
    /// width: `sorted[rank] <= quantile(q) <= sorted[rank] * (1 + 1/8)`.
    #[test]
    fn quantile_error_is_bounded(
        values in prop::collection::vec(1u64..(1 << 40), 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len()) - 1;
        let exact = sorted[rank];
        let got = h.quantile(q);
        prop_assert!(got >= exact, "quantile({q}) = {got} under-reports {exact}");
        let bound = exact + exact / SUBBUCKETS;
        prop_assert!(got <= bound, "quantile({q}) = {got} exceeds {exact} by >12.5%");
    }

    /// Splitting a stream across two histograms and merging equals
    /// recording everything into one.
    #[test]
    fn merge_is_equivalent_to_recording_into_one(
        values in prop::collection::vec(0u64..=u64::MAX, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for &v in left {
            a.record(v);
            whole.record(v);
        }
        for &v in right {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    /// Snapshot → JSON → restore preserves every bucket count and all
    /// bucket-derived statistics (the layout is fixed, so counts re-landing
    /// on each bucket's lower bound reproduce the original counts).
    #[test]
    fn snapshot_roundtrip_preserves_quantiles(
        values in prop::collection::vec(0u64..(1 << 52), 0..200),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let json = serde_json::to_string(&h.snapshot()).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        let restored = LogHistogram::from_snapshot(&back);
        prop_assert_eq!(restored.count(), h.count());
        prop_assert_eq!(restored.min(), h.min());
        prop_assert_eq!(restored.max(), h.max());
        prop_assert_eq!(restored.nonzero_buckets(), h.nonzero_buckets());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(restored.quantile(q), h.quantile(q));
        }
    }

    /// `record_n` is shorthand for repeated `record`.
    #[test]
    fn record_n_matches_repeated_record(v in 0u64..=u64::MAX, n in 0u64..50) {
        let mut bulk = LogHistogram::new();
        bulk.record_n(v, n);
        let mut one_by_one = LogHistogram::new();
        for _ in 0..n {
            one_by_one.record(v);
        }
        prop_assert_eq!(bulk, one_by_one);
    }
}
