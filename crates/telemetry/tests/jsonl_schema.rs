//! Golden test for the JSONL telemetry schema.
//!
//! Generates a real stream through [`TelemetrySink`] — one of every event
//! type — then (a) runs the shipped validator over it and (b) pins the
//! exact key set of every event type. Any schema drift (added, renamed, or
//! dropped keys) fails here first and must be an explicit, reviewed change
//! alongside a `SCHEMA_VERSION` bump or validator update.

use atscale_telemetry::schema::{validate_stream, REQUIRED_COUNTERS, REQUIRED_RATES};
use atscale_telemetry::{
    reset_spans, span, LatencyMetric, Progress, Recorder, Sample, TelemetrySink,
};
use serde::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The schema under pin: every event type and its exact key set.
fn golden_keys() -> BTreeMap<&'static str, BTreeSet<&'static str>> {
    let pairs: [(&str, &[&str]); 8] = [
        ("meta", &["type", "source", "schema", "stream"]),
        ("fault", &["type", "source", "site", "hit"]),
        ("native_unavailable", &["type", "source", "reason"]),
        (
            "sample",
            &[
                "type", "source", "run", "instr", "cycles", "counters", "rates",
            ],
        ),
        (
            "hist",
            &[
                "type", "source", "metric", "unit", "count", "sum", "min", "max", "buckets",
            ],
        ),
        (
            "span",
            &[
                "type", "source", "path", "count", "total_ns", "max_ns", "threads",
            ],
        ),
        (
            "progress",
            &[
                "type",
                "source",
                "completed",
                "total",
                "label",
                "wall_ms",
                "cached",
            ],
        ),
        (
            "summary",
            &["type", "source", "samples", "progress", "spans"],
        ),
    ];
    pairs
        .into_iter()
        .map(|(t, keys)| (t, keys.iter().copied().collect()))
        .collect()
}

/// Serializes the tests: they share the global span registry and one
/// temp-file path.
static STREAM_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Emits one of every event type through a real sink and returns the
/// stream text.
fn generate_stream() -> String {
    let _lock = STREAM_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reset_spans();
    let path = std::env::temp_dir().join(format!("atscale-schema-{}.jsonl", std::process::id()));
    let sink = TelemetrySink::new().with_jsonl(&path).unwrap();
    {
        let _guard = span("golden");
    }
    let mut counters: Vec<(String, u64)> = REQUIRED_COUNTERS
        .iter()
        .map(|name| ((*name).to_string(), 7))
        .collect();
    counters.push(("truth.retired_walks".to_string(), 2));
    let rates = REQUIRED_RATES
        .iter()
        .map(|name| ((*name).to_string(), 0.25))
        .collect();
    sink.sample(
        "cc-urand 64MB 4K",
        &Sample {
            instr: 1000,
            cycles: 2600,
            counters,
            rates,
        },
    );
    sink.latency(LatencyMetric::WalkCycles, 37);
    sink.latency(LatencyMetric::RunWallNanos, 5_000_000);
    sink.fault("WorkerPanic", 2);
    sink.native_unavailable("perf_event_open: EPERM (perf_event_paranoid)");
    sink.progress(&Progress {
        completed: 1,
        total: 1,
        label: "cc-urand 64MB 4K".to_string(),
        wall_ms: 5,
        cached: false,
    });
    assert_eq!(sink.finish().as_deref(), Some(path.as_path()));
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    text
}

#[test]
fn generated_stream_passes_the_shipped_validator() {
    let text = generate_stream();
    let summary = validate_stream(&text).unwrap_or_else(|(line, e)| {
        panic!("stream invalid at line {line}: {e}\n--- stream ---\n{text}")
    });
    // One of each: meta, sample, 2 hists, the span, progress, summary.
    assert_eq!(summary.by_type.get("meta"), Some(&1));
    assert_eq!(summary.by_type.get("sample"), Some(&1));
    assert_eq!(summary.by_type.get("hist"), Some(&2));
    assert_eq!(summary.by_type.get("span"), Some(&1));
    assert_eq!(summary.by_type.get("fault"), Some(&1));
    assert_eq!(summary.by_type.get("native_unavailable"), Some(&1));
    assert_eq!(summary.by_type.get("progress"), Some(&1));
    assert_eq!(summary.by_type.get("summary"), Some(&1));
}

#[test]
fn event_key_sets_match_the_golden_schema() {
    let text = generate_stream();
    let golden = golden_keys();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let value: Value = serde_json::from_str(line).unwrap();
        let map = value
            .as_map()
            .unwrap_or_else(|_| panic!("line {i} not an object"));
        let keys: BTreeSet<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        let event_type = map
            .iter()
            .find(|(k, _)| k == "type")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("line {i} has no type: {line}"));
        let expected = golden
            .get(event_type)
            .unwrap_or_else(|| panic!("unpinned event type `{event_type}`"));
        let expected: BTreeSet<&str> = expected.iter().copied().collect();
        assert_eq!(
            keys, expected,
            "key set drift in `{event_type}` event (line {i}): {line}"
        );
        seen.insert(event_type.to_string());
    }
    assert_eq!(
        seen.len(),
        golden.len(),
        "stream did not exercise every pinned event type: {seen:?}"
    );
}

#[test]
fn sample_events_preserve_emission_order() {
    // The counters/rates pair lists are ordered; serialization must not
    // reorder them (consumers join on position for plotting).
    let text = generate_stream();
    let sample_line = text
        .lines()
        .find(|l| l.contains("\"type\":\"sample\""))
        .expect("sample event present");
    let idx = |needle: &str| {
        sample_line
            .find(needle)
            .unwrap_or_else(|| panic!("`{needle}` missing from {sample_line}"))
    };
    assert!(idx(REQUIRED_COUNTERS[0]) < idx("truth.retired_walks"));
    let rate_positions: Vec<usize> = REQUIRED_RATES.iter().map(|r| idx(r)).collect();
    assert!(
        rate_positions.windows(2).all(|w| w[0] < w[1]),
        "rates reordered in {sample_line}"
    );
}
