//! Rule 5 — protocol round-trip coverage.
//!
//! Every wire-frame variant of the serving protocol (`Request` and `Reply`
//! in `crates/serve/src/protocol.rs`) must appear in the round-trip test
//! suite (`crates/serve/tests/protocol_roundtrip.rs`). The daemon and
//! client live in separate processes, so a variant that serializes but
//! does not deserialize (or vice versa) is a protocol break that type
//! checking cannot see; requiring a round-trip test per variant makes
//! adding an untested frame a CI failure.
//!
//! Like the other rules this is a name scan over comment-stripped source,
//! not a type-resolved analysis; see [`crate::source`].

use crate::source::block_after;
use crate::{Audit, Workspace};

/// Path (workspace-relative suffix) of the protocol definition under audit.
pub const PROTOCOL_PATH: &str = "crates/serve/src/protocol.rs";
/// Path (workspace-relative suffix) of the round-trip test suite.
pub const ROUNDTRIP_TEST_PATH: &str = "crates/serve/tests/protocol_roundtrip.rs";
const RULE: &str = "protocol-roundtrip";

/// The wire enums whose variants need round-trip coverage.
const FRAME_ENUMS: [&str; 2] = ["Request", "Reply"];

/// Variants the protocol is required to define, on top of the per-variant
/// coverage scan. The v5 results plane is load-bearing for CI (the
/// results-smoke job queries aggregates over the wire), so dropping one
/// of its verbs from the enums is an audit failure even though the
/// coverage scan — which only checks variants that *exist* — would stay
/// quiet about it.
const REQUIRED_VARIANTS: [(&str, &str); 6] = [
    ("Request", "Query"),
    ("Request", "Compact"),
    ("Request", "StoreSegStats"),
    ("Reply", "QueryResult"),
    ("Reply", "Compacted"),
    ("Reply", "StoreSegStats"),
];

/// Extracts the variant names of an enum body (comment-stripped source):
/// the leading identifier of every `Name,` / `Name(Payload),` line,
/// skipping attributes. Shared with the fault-site-coverage rule.
pub(crate) fn variant_names(body: &str) -> Vec<String> {
    body.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let name: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            // Variants are CamelCase idents directly followed by `,` or a
            // payload; anything else on the line is not a variant header.
            let rest = &line[name.len()..];
            let is_variant = !name.is_empty()
                && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && (rest.starts_with(',') || rest.starts_with('('));
            is_variant.then_some(name)
        })
        .collect()
}

/// Runs the protocol-roundtrip rule over the workspace.
pub fn audit_protocol_roundtrip(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let Some(protocol) = ws.file(PROTOCOL_PATH) else {
        audit.fail(
            PROTOCOL_PATH,
            format!("{PROTOCOL_PATH} not found in workspace"),
        );
        return audit;
    };
    let Some(tests) = ws.file(ROUNDTRIP_TEST_PATH) else {
        audit.fail(
            ROUNDTRIP_TEST_PATH,
            format!(
                "{ROUNDTRIP_TEST_PATH} not found — every protocol frame needs a round-trip test"
            ),
        );
        return audit;
    };
    for enum_name in FRAME_ENUMS {
        let Some(body) = block_after(&protocol.stripped, &format!("pub enum {enum_name}")) else {
            audit.fail(PROTOCOL_PATH, format!("`pub enum {enum_name}` not found"));
            continue;
        };
        let variants = variant_names(body);
        audit.check();
        if variants.is_empty() {
            audit.fail(
                PROTOCOL_PATH,
                format!("no variants parsed from `pub enum {enum_name}`"),
            );
            continue;
        }
        for (required_enum, required) in REQUIRED_VARIANTS {
            if required_enum != enum_name {
                continue;
            }
            audit.check();
            if !variants.iter().any(|v| v == required) {
                audit.fail(
                    PROTOCOL_PATH,
                    format!(
                        "required protocol frame `{enum_name}::{required}` is missing — \
                         the results plane (Query/Compact/StoreSegStats) must stay on the wire"
                    ),
                );
            }
        }
        for variant in variants {
            audit.check();
            let qualified = format!("{enum_name}::{variant}");
            if !tests.stripped.contains(&qualified) {
                audit.fail(
                    PROTOCOL_PATH,
                    format!(
                        "protocol frame `{qualified}` has no round-trip coverage — \
                         construct and round-trip it in {ROUNDTRIP_TEST_PATH}"
                    ),
                );
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    const PROTOCOL_SRC: &str = "
pub enum Request {
    Hello(Hello),
    Query(QueryFilter),
    Compact,
    StoreSegStats,
    Shutdown,
}
pub enum Reply {
    Welcome(Welcome),
    QueryResult(QueryResult),
    Compacted(CompactStats),
    StoreSegStats(SegStats),
    ShuttingDown,
}
";

    const COVERED_TESTS: &str = "fn t() { r(Request::Hello(h)); r(Request::Query(f)); \
         r(Request::Compact); r(Request::StoreSegStats); r(Request::Shutdown); \
         r(Reply::Welcome(w)); r(Reply::QueryResult(q)); r(Reply::Compacted(c)); \
         r(Reply::StoreSegStats(s)); r(Reply::ShuttingDown); }";

    #[test]
    fn variant_names_parse_unit_and_newtype_variants() {
        let body = block_after(PROTOCOL_SRC, "pub enum Request").unwrap();
        assert_eq!(
            variant_names(body),
            ["Hello", "Query", "Compact", "StoreSegStats", "Shutdown"]
        );
    }

    #[test]
    fn covered_variants_pass() {
        let ws = workspace_from(&[
            (PROTOCOL_PATH, PROTOCOL_SRC),
            (ROUNDTRIP_TEST_PATH, COVERED_TESTS),
        ]);
        let audit = audit_protocol_roundtrip(&ws);
        assert!(audit.violations.is_empty(), "{:?}", audit.violations);
        assert!(audit.checked >= 10);
    }

    #[test]
    fn uncovered_variant_fails() {
        let ws = workspace_from(&[
            (PROTOCOL_PATH, PROTOCOL_SRC),
            (
                ROUNDTRIP_TEST_PATH,
                "fn t() { r(Request::Hello(h)); r(Request::Query(f)); \
                 r(Request::Compact); r(Request::StoreSegStats); r(Request::Shutdown); \
                 r(Reply::Welcome(w)); r(Reply::QueryResult(q)); r(Reply::Compacted(c)); \
                 r(Reply::StoreSegStats(s)); }",
            ),
        ]);
        let audit = audit_protocol_roundtrip(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("Reply::ShuttingDown"));
    }

    #[test]
    fn missing_results_plane_verb_fails() {
        // A protocol without Request::Query round-trips everything it
        // defines, but the results plane is required wire surface.
        let ws = workspace_from(&[
            (
                PROTOCOL_PATH,
                "
pub enum Request {
    Hello(Hello),
    Compact,
    StoreSegStats,
    Shutdown,
}
pub enum Reply {
    Welcome(Welcome),
    QueryResult(QueryResult),
    Compacted(CompactStats),
    StoreSegStats(SegStats),
    ShuttingDown,
}
",
            ),
            (ROUNDTRIP_TEST_PATH, COVERED_TESTS),
        ]);
        let audit = audit_protocol_roundtrip(&ws);
        assert_eq!(audit.violations.len(), 1, "{:?}", audit.violations);
        assert!(audit.violations[0].message.contains("Request::Query"));
        assert!(audit.violations[0].message.contains("results plane"));
    }

    #[test]
    fn missing_test_file_fails() {
        let ws = workspace_from(&[(PROTOCOL_PATH, PROTOCOL_SRC)]);
        let audit = audit_protocol_roundtrip(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("round-trip test"));
    }
}
