//! Rule 6 — hot-path allocation freedom.
//!
//! The PR-4 throughput work rests on the per-access pipeline never touching
//! the allocator: one `format!` in a TLB lookup or a `Vec::new` per walk
//! melts the instr/s the perf gate defends. rustc cannot express "this
//! module is allocation-free", so this rule scans the hot-path modules —
//! the MMU engine, the TLB arrays, the page-table walker, and the
//! set-associative cache array — for allocating or formatting calls.
//!
//! Three regions are exempt, each for a stated reason:
//!
//! * **panic/assert macro arguments** — a failed invariant is an error path
//!   that never executes on a healthy run; its message may format freely;
//! * **`#[cold]` functions** — the attribute is the author's explicit
//!   declaration that the function is off the hot path, and it makes the
//!   claim visible to both the optimiser and this audit;
//! * **constructors (`fn new`)** — arrays are allocated once per run at
//!   machine build time; the audited property is per-*access* allocation
//!   freedom, not zero allocation ever.
//!
//! Everything else that matches a forbidden pattern fails the audit.

use crate::source::{matching_brace, matching_paren, non_test_region};
use crate::{Audit, Workspace};

const RULE: &str = "hot-path-allocation";

/// Modules on the per-access path. A missing file fails the audit so a
/// rename cannot silently drop coverage.
const HOT_MODULES: [&str; 4] = [
    "crates/mmu/src/engine.rs",
    "crates/mmu/src/tlb.rs",
    "crates/mmu/src/walker.rs",
    "crates/cache/src/set_assoc.rs",
];

/// Call patterns that allocate or format.
const FORBIDDEN: [&str; 8] = [
    "format!",
    "String::from",
    ".to_string()",
    ".to_owned()",
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
];

/// Macros whose arguments are error-path message formatting.
const PANIC_MACROS: [&str; 10] = [
    "panic!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "debug_assert!",
    "debug_assert_eq!",
    "debug_assert_ne!",
    "unreachable!",
    "invariant!",
    "unimplemented!",
];

/// Runs the hot-path allocation rule over the workspace.
pub fn audit_hot_path_allocation(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    for module in HOT_MODULES {
        audit.check();
        let Some(file) = ws.file(module) else {
            audit.fail(
                module,
                "hot-path module not found — if it moved, update the audit's module list",
            );
            continue;
        };
        // Scan the literal-blanked code view: a `format!` mentioned inside
        // a string (or a doc comment) is text, not a call, and must not
        // trip the rule.
        let scope = blank_exempt_regions(non_test_region(&file.code));
        for pattern in FORBIDDEN {
            audit.check();
            for at in scope.match_indices(pattern).map(|(at, _)| at) {
                let line = scope[..at].lines().count();
                audit.fail(
                    &file.path,
                    format!(
                        "`{pattern}` on the hot path (line {line}) — allocation and \
                         formatting belong in `#[cold]` helpers, constructors, or \
                         panic messages"
                    ),
                );
            }
        }
    }
    audit
}

/// Returns `src` with the three exempt region kinds blanked to spaces
/// (newlines kept, so byte offsets and line numbers survive).
fn blank_exempt_regions(src: &str) -> String {
    let mut text = src.to_string();
    blank_macro_arguments(&mut text);
    blank_fn_bodies_after(&mut text, "#[cold]");
    blank_fn_bodies_after(&mut text, "fn new");
    text
}

/// Blanks the parenthesised arguments of every panic-family macro call.
fn blank_macro_arguments(text: &mut String) {
    for mac in PANIC_MACROS {
        let mut from = 0usize;
        while let Some(at) = text[from..].find(mac).map(|o| from + o) {
            let after = at + mac.len();
            let Some(open) = text[after..]
                .find(|c: char| !c.is_whitespace())
                .map(|o| after + o)
                .filter(|&o| text.as_bytes()[o] == b'(')
            else {
                from = after;
                continue;
            };
            let Some(end) = matching_paren(text, open) else {
                from = after;
                continue;
            };
            blank_range(text, open + 1, end - 1);
            from = end;
        }
    }
}

/// Blanks the `{ ... }` body of every function introduced by `needle`
/// (`#[cold]` attribute or a constructor's `fn new`).
fn blank_fn_bodies_after(text: &mut String, needle: &str) {
    let mut from = 0usize;
    while let Some(at) = text[from..].find(needle).map(|o| from + o) {
        let Some(open) = text[at..].find('{').map(|o| at + o) else {
            return;
        };
        let Some(end) = matching_brace(text, open) else {
            return;
        };
        blank_range(text, open + 1, end - 1);
        from = end;
    }
}

/// Overwrites `[start, end)` with spaces, preserving newlines.
fn blank_range(text: &mut String, start: usize, end: usize) {
    let blanked: String = text[start..end]
        .chars()
        .map(|c| if c == '\n' { '\n' } else { ' ' })
        .collect();
    text.replace_range(start..end, &blanked);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    /// A minimal clean hot-path module set.
    fn clean_files() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "crates/mmu/src/engine.rs",
                "impl Machine {\n    pub fn access(&mut self) { self.counters.inst += 1; }\n}\n",
            ),
            (
                "crates/mmu/src/tlb.rs",
                "impl TlbArray {\n    pub fn new(n: usize) -> Self {\n        TlbArray { tags: vec![0; n] }\n    }\n}\n",
            ),
            ("crates/mmu/src/walker.rs", "pub fn walk() {}\n"),
            ("crates/cache/src/set_assoc.rs", "pub fn access() {}\n"),
        ]
    }

    #[test]
    fn clean_modules_pass() {
        let ws = workspace_from(&clean_files());
        let audit = audit_hot_path_allocation(&ws);
        assert_eq!(audit.violations, Vec::new());
        assert!(audit.checked > 4);
    }

    #[test]
    fn allocation_in_access_path_is_flagged() {
        let mut files = clean_files();
        files[0] = (
            "crates/mmu/src/engine.rs",
            "impl Machine {\n    pub fn access(&mut self) { let s = format!(\"{}\", 1); }\n}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("format!") && v.file.contains("engine.rs")));
    }

    #[test]
    fn constructor_allocation_is_exempt() {
        // `clean_files` already allocates inside `fn new`; make sure that is
        // the exemption carrying it, not an accident of pattern order.
        let files = vec![
            (
                "crates/mmu/src/engine.rs",
                "pub fn new() -> V { Vec::with_capacity(8) }\n",
            ),
            ("crates/mmu/src/tlb.rs", ""),
            ("crates/mmu/src/walker.rs", ""),
            ("crates/cache/src/set_assoc.rs", ""),
        ];
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn cold_function_allocation_is_exempt() {
        let mut files = clean_files();
        files[2] = (
            "crates/mmu/src/walker.rs",
            "#[cold]\nfn slow_report() -> String { format!(\"{}\", 1) }\npub fn walk() {}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn panic_message_formatting_is_exempt() {
        let mut files = clean_files();
        files[3] = (
            "crates/cache/src/set_assoc.rs",
            "pub fn access(x: u64) {\n    assert!(x > 0, \"bad {}\", format!(\"{x}\"));\n}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn allocation_outside_the_panic_args_is_still_flagged() {
        let mut files = clean_files();
        files[3] = (
            "crates/cache/src/set_assoc.rs",
            "pub fn access(x: u64) {\n    assert!(x > 0, \"bad\");\n    let v = Vec::new();\n}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("Vec::new")));
    }

    #[test]
    fn test_modules_are_exempt() {
        let mut files = clean_files();
        files[1] = (
            "crates/mmu/src/tlb.rs",
            "pub fn lookup() {}\n#[cfg(test)]\nmod tests {\n    fn h() { let v = vec![1]; }\n}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn forbidden_patterns_inside_string_literals_are_not_flagged() {
        // Regression for the regex-scanner false-positive class: the old
        // scanner matched patterns inside string literals.
        let mut files = clean_files();
        files[2] = (
            "crates/mmu/src/walker.rs",
            "pub fn walk() {\n    let msg = \"never call format! or Vec::new here\";\n    emit(msg);\n}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn forbidden_patterns_inside_doc_comments_are_not_flagged() {
        let mut files = clean_files();
        files[2] = (
            "crates/mmu/src/walker.rs",
            "/// Never use `format!` or `Box::new` on this path.\n// vec! is also banned.\npub fn walk() {}\n",
        );
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn missing_module_is_flagged() {
        let mut files = clean_files();
        files.remove(2);
        let audit = audit_hot_path_allocation(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.file.contains("walker.rs") && v.message.contains("not found")));
    }

    #[test]
    fn real_workspace_hot_modules_are_clean() {
        // The self-audit the rule exists for: the actual workspace sources.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let ws = Workspace::load(&root).expect("load workspace");
        let audit = audit_hot_path_allocation(&ws);
        assert_eq!(audit.violations, Vec::new());
    }
}
