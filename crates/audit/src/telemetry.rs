//! Rule 4 — telemetry coverage.
//!
//! The interval sampler (`crates/mmu/src/telemetry.rs`) must keep the whole
//! counter file representable in its [`Sample`] stream, and the engine must
//! keep the sampler wired into its hot paths. Concretely:
//!
//! * `counter_sample` builds its cumulative counter list from
//!   `Counters::events()`, so every PMU event reaches the stream by
//!   construction — removing that call silently drops all of them;
//! * every simulator ground-truth field (`truth_*`) is pushed explicitly
//!   (truth fields are deliberately absent from `events()`, so the sampler
//!   is their only route into telemetry);
//! * the derived-rate list is emitted through the `RATE_NAMES` const, so
//!   names and values cannot drift apart;
//! * the engine still calls the sampler's cadence entry points
//!   (`sample_due`/`take_sample`), final reconciliation
//!   (`take_final_sample`), and warm-up restart (`reset`).
//!
//! Like the other rules this is a field-name scan over comment-stripped
//! source, not a type-resolved analysis; see [`crate::source`].

use crate::counters::{counter_fields, COUNTERS_PATH};
use crate::source::{block_after, has_ident, reads_field};
use crate::{Audit, Workspace};

/// Path (workspace-relative suffix) of the interval sampler under audit.
pub const TELEMETRY_PATH: &str = "crates/mmu/src/telemetry.rs";
/// Path (workspace-relative suffix) of the engine whose wiring is audited.
pub const ENGINE_PATH: &str = "crates/mmu/src/engine.rs";
const RULE: &str = "telemetry-coverage";

/// Sampler methods the engine must invoke for the series to exist at all.
const ENGINE_HOOKS: [&str; 4] = ["sample_due", "take_sample", "take_final_sample", "reset"];

/// Runs the telemetry-coverage rule over the workspace.
pub fn audit_telemetry_coverage(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let Some(file) = ws.file(TELEMETRY_PATH) else {
        audit.fail(
            TELEMETRY_PATH,
            format!("{TELEMETRY_PATH} not found in workspace"),
        );
        return audit;
    };
    check_counter_sample(&mut audit, ws, &file.stripped);
    check_engine_wiring(&mut audit, ws);
    audit
}

/// `counter_sample` keeps every counter field representable: PMU events via
/// `Counters::events()`, ground-truth fields via explicit pushes, rates via
/// the `RATE_NAMES` const.
fn check_counter_sample(audit: &mut Audit, ws: &Workspace, src: &str) {
    let Some(body) = block_after(src, "pub fn counter_sample") else {
        audit.fail(TELEMETRY_PATH, "`pub fn counter_sample` not found");
        return;
    };

    audit.check();
    if !reads_field(body, "events") {
        audit.fail(
            TELEMETRY_PATH,
            "`counter_sample` no longer reads `Counters::events()` — every PMU \
             event must reach the sample stream through the events export",
        );
    }

    let truth_fields: Vec<String> = ws
        .file(COUNTERS_PATH)
        .map(|f| counter_fields(&f.stripped))
        .unwrap_or_default()
        .into_iter()
        .filter(|f| f.starts_with("truth_"))
        .collect();
    if truth_fields.is_empty() {
        audit.fail(
            TELEMETRY_PATH,
            format!("no `truth_*` fields found via {COUNTERS_PATH} — cannot audit ground-truth sampling"),
        );
    }
    for field in &truth_fields {
        audit.check();
        if !has_ident(body, field) {
            audit.fail(
                TELEMETRY_PATH,
                format!(
                    "ground-truth field `{field}` is not emitted by `counter_sample` — \
                     truth fields are absent from `events()`, so the sampler is their \
                     only route into the telemetry stream"
                ),
            );
        }
    }

    audit.check();
    if !has_ident(src, "RATE_NAMES") {
        audit.fail(
            TELEMETRY_PATH,
            "`RATE_NAMES` const not found — derived-rate names must be declared once",
        );
    }
    audit.check();
    if !has_ident(body, "RATE_NAMES") {
        audit.fail(
            TELEMETRY_PATH,
            "`counter_sample` does not emit rates through `RATE_NAMES` — naming \
             rates inline lets the published name list and the emitted values drift",
        );
    }
}

/// The engine keeps the sampler's entry points wired into its hot paths.
fn check_engine_wiring(audit: &mut Audit, ws: &Workspace) {
    let Some(engine) = ws.file(ENGINE_PATH) else {
        audit.fail(ENGINE_PATH, format!("{ENGINE_PATH} not found in workspace"));
        return;
    };
    for hook in ENGINE_HOOKS {
        audit.check();
        if !engine.stripped.contains(&format!("telemetry.{hook}")) {
            audit.fail(
                ENGINE_PATH,
                format!(
                    "the engine never calls `telemetry.{hook}(..)` — the interval \
                     sampler is unwired and sampled series would silently vanish"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    /// A minimal counter file: one PMU event, one ground-truth field.
    const COUNTERS: &str = "
        pub struct Counters {
            pub cycles: u64,
            pub truth_retired_walks: u64,
        }
    ";

    /// A minimal sampler that satisfies every telemetry check.
    const TELEMETRY: &str = "
        pub const RATE_NAMES: [&str; 1] = [\"cpi\"];
        pub fn counter_sample(cur: &Counters, prev: &Counters) -> Sample {
            let mut counters = cur.events();
            counters.push((\"truth.retired_walks\", cur.truth_retired_walks));
            let rates = RATE_NAMES.iter().zip([1.0]).collect();
            Sample { counters, rates }
        }
    ";

    /// A minimal engine that invokes every sampler hook.
    const ENGINE: &str = "
        fn step(&mut self) {
            if self.telemetry.sample_due(self.counters.inst_retired) {
                self.telemetry.take_sample(&c, &pte);
            }
        }
        fn finish(&mut self) { self.telemetry.take_final_sample(&c, &pte); }
        fn reset_measurement(&mut self) { self.telemetry.reset(); }
    ";

    fn ws(telemetry: &str, engine: &str) -> Workspace {
        workspace_from(&[
            (COUNTERS_PATH, COUNTERS),
            (TELEMETRY_PATH, telemetry),
            (ENGINE_PATH, engine),
        ])
    }

    #[test]
    fn wired_sampler_passes() {
        let audit = audit_telemetry_coverage(&ws(TELEMETRY, ENGINE));
        assert_eq!(audit.violations, Vec::new());
        assert!(audit.checked > 0);
    }

    #[test]
    fn missing_telemetry_module_fails() {
        let ws = workspace_from(&[(COUNTERS_PATH, COUNTERS)]);
        let audit = audit_telemetry_coverage(&ws);
        assert!(!audit.violations.is_empty());
    }

    #[test]
    fn dropping_the_events_call_is_flagged() {
        let doctored = TELEMETRY.replace("cur.events()", "Vec::new()");
        let audit = audit_telemetry_coverage(&ws(&doctored, ENGINE));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("events()")));
    }

    #[test]
    fn unsampled_truth_field_is_flagged() {
        let doctored = TELEMETRY.replace(
            "counters.push((\"truth.retired_walks\", cur.truth_retired_walks));",
            "",
        );
        let audit = audit_telemetry_coverage(&ws(&doctored, ENGINE));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("truth_retired_walks")
                && v.message.contains("counter_sample")));
    }

    #[test]
    fn inline_rate_names_are_flagged() {
        let doctored = TELEMETRY.replace(
            "let rates = RATE_NAMES.iter().zip([1.0]).collect();",
            "let rates = vec![(\"cpi\", 1.0)];",
        );
        let audit = audit_telemetry_coverage(&ws(&doctored, ENGINE));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("RATE_NAMES")));
    }

    #[test]
    fn unwired_engine_hook_is_flagged() {
        let doctored = ENGINE.replace("self.telemetry.take_final_sample(&c, &pte);", "");
        let audit = audit_telemetry_coverage(&ws(TELEMETRY, &doctored));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("take_final_sample")));
    }
}
