//! Rule 7 — fault-site coverage.
//!
//! Every variant of `atscale_faults::FaultSite` must be (a) **wired**:
//! referenced as an injection site somewhere in the library sources of
//! the crates the fault layer instruments (`crates/core/src`,
//! `crates/serve/src`), and (b) **exercised**: referenced by the chaos
//! test suite (`crates/serve/tests/chaos.rs`). A fault site that nothing
//! injects is dead chaos surface; a site no chaos test arms is recovery
//! machinery whose failure mode ships untested. Both fail CI here.
//!
//! Like the other rules this is a name scan over comment-stripped source,
//! not a type-resolved analysis; see [`crate::source`].

use crate::protocol::variant_names;
use crate::source::block_after;
use crate::{Audit, Workspace};

/// Path (workspace-relative suffix) of the fault-site catalogue.
pub const FAULTS_PATH: &str = "crates/faults/src/lib.rs";
/// Path (workspace-relative suffix) of the chaos test suite.
pub const CHAOS_TEST_PATH: &str = "crates/serve/tests/chaos.rs";
const RULE: &str = "fault-site-coverage";

/// Library source prefixes where injection sites may legitimately live.
const WIRED_PREFIXES: [&str; 3] = [
    "crates/core/src/",
    "crates/results/src/",
    "crates/serve/src/",
];

/// Runs the fault-site-coverage rule over the workspace.
pub fn audit_fault_site_coverage(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let Some(faults) = ws.file(FAULTS_PATH) else {
        audit.fail(FAULTS_PATH, format!("{FAULTS_PATH} not found in workspace"));
        return audit;
    };
    let Some(chaos) = ws.file(CHAOS_TEST_PATH) else {
        audit.fail(
            CHAOS_TEST_PATH,
            format!("{CHAOS_TEST_PATH} not found — every fault site needs a chaos test"),
        );
        return audit;
    };
    let Some(body) = block_after(&faults.stripped, "pub enum FaultSite") else {
        audit.fail(FAULTS_PATH, "`pub enum FaultSite` not found");
        return audit;
    };
    let sites = variant_names(body);
    audit.check();
    if sites.is_empty() {
        audit.fail(FAULTS_PATH, "no variants parsed from `pub enum FaultSite`");
        return audit;
    }
    for site in sites {
        let qualified = format!("FaultSite::{site}");
        audit.check();
        let wired = ws.rust_sources().any(|f| {
            WIRED_PREFIXES.iter().any(|p| f.path.starts_with(p)) && f.stripped.contains(&qualified)
        });
        if !wired {
            audit.fail(
                FAULTS_PATH,
                format!(
                    "fault site `{qualified}` is not wired into any injection point — \
                     reference it from library code under {WIRED_PREFIXES:?} or remove it"
                ),
            );
        }
        audit.check();
        if !chaos.stripped.contains(&qualified) {
            audit.fail(
                FAULTS_PATH,
                format!(
                    "fault site `{qualified}` is not exercised by the chaos suite — \
                     arm it in a scenario in {CHAOS_TEST_PATH}"
                ),
            );
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    const FAULTS_SRC: &str = "
pub enum FaultSite {
    StoreWrite,
    WorkerPanic,
}
";

    #[test]
    fn wired_and_exercised_sites_pass() {
        let ws = workspace_from(&[
            (FAULTS_PATH, FAULTS_SRC),
            (
                "crates/core/src/store.rs",
                "fn save() { plan.check(FaultSite::StoreWrite); }",
            ),
            (
                "crates/serve/src/scheduler.rs",
                "fn execute() { self.fault(FaultSite::WorkerPanic); }",
            ),
            (
                CHAOS_TEST_PATH,
                "fn a() { arm(FaultSite::StoreWrite); } fn b() { arm(FaultSite::WorkerPanic); }",
            ),
        ]);
        let audit = audit_fault_site_coverage(&ws);
        assert!(audit.violations.is_empty(), "{:?}", audit.violations);
        assert!(audit.checked >= 4);
    }

    #[test]
    fn unwired_site_fails() {
        let ws = workspace_from(&[
            (FAULTS_PATH, FAULTS_SRC),
            (
                "crates/core/src/store.rs",
                "fn save() { plan.check(FaultSite::StoreWrite); }",
            ),
            (
                CHAOS_TEST_PATH,
                "fn a() { arm(FaultSite::StoreWrite); } fn b() { arm(FaultSite::WorkerPanic); }",
            ),
        ]);
        let audit = audit_fault_site_coverage(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("WorkerPanic"));
        assert!(audit.violations[0].message.contains("not wired"));
    }

    #[test]
    fn unexercised_site_fails() {
        let ws = workspace_from(&[
            (FAULTS_PATH, FAULTS_SRC),
            (
                "crates/core/src/store.rs",
                "fn save() { plan.check(FaultSite::StoreWrite); }",
            ),
            (
                "crates/serve/src/scheduler.rs",
                "fn execute() { self.fault(FaultSite::WorkerPanic); }",
            ),
            (CHAOS_TEST_PATH, "fn a() { arm(FaultSite::StoreWrite); }"),
        ]);
        let audit = audit_fault_site_coverage(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("WorkerPanic"));
        assert!(audit.violations[0].message.contains("chaos"));
    }

    #[test]
    fn test_references_do_not_count_as_wiring() {
        // A site referenced only by tests (not library sources) is dead
        // chaos surface and must fail the wired check.
        let ws = workspace_from(&[
            (FAULTS_PATH, "\npub enum FaultSite {\n    StoreWrite,\n}\n"),
            (
                "crates/serve/tests/other.rs",
                "fn t() { arm(FaultSite::StoreWrite); }",
            ),
            (CHAOS_TEST_PATH, "fn a() { arm(FaultSite::StoreWrite); }"),
        ]);
        let audit = audit_fault_site_coverage(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("not wired"));
    }

    #[test]
    fn missing_chaos_suite_fails() {
        let ws = workspace_from(&[(FAULTS_PATH, FAULTS_SRC)]);
        let audit = audit_fault_site_coverage(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("chaos test"));
    }
}
