//! Rule 3 — lint wiring.
//!
//! The workspace commits to a shared lint policy: a `[workspace.lints]`
//! table in the root manifest (rustc `missing_docs` / `unsafe_code` plus a
//! clippy pedantic subset), every member crate opting in with
//! `[lints] workspace = true`, and `#![forbid(unsafe_code)]` at the root of
//! every crate. CI runs clippy with `-D warnings`; this rule makes the
//! *configuration* itself tamper-evident so a crate cannot quietly drop out
//! of the policy.
//!
//! Two documented FFI exceptions, both raw-syscall shims the workspace
//! cannot express safely because it vendors no `libc`/`perf`/`mio` crate
//! to hide them in: `crates/native` wraps `perf_event_open(2)`, and
//! `crates/serve` wraps `epoll`/`eventfd` for its thread-per-core reactor
//! tier. Each exception crate's root must carry `#![deny(unsafe_code)]`
//! instead of `forbid` (deny is overridable by an item-level `allow`,
//! forbid is not), and this rule pins the blast radius: within each
//! exception crate, any `allow(unsafe_code)` or `unsafe` token may appear
//! only in that crate's sanctioned syscall-shim module `src/sys.rs`.

use crate::{Audit, Workspace};

const RULE: &str = "lint-wiring";

/// Keys the root `[workspace.lints.rust]` table must define.
const REQUIRED_RUST_LINTS: [&str; 2] = ["missing_docs", "unsafe_code"];

/// Runs the lint-wiring rule over the workspace.
pub fn audit_lint_wiring(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    check_root_tables(&mut audit, ws);
    check_member_manifests(&mut audit, ws);
    check_unsafe_forbidden(&mut audit, ws);
    audit
}

/// The root manifest must carry the shared lint tables.
fn check_root_tables(audit: &mut Audit, ws: &Workspace) {
    const ROOT: &str = "Cargo.toml";
    let Some(root) = ws.file(ROOT) else {
        audit.fail(ROOT, "workspace root Cargo.toml not found");
        return;
    };
    audit.check();
    if !root.text.contains("[workspace.lints.rust]") {
        audit.fail(ROOT, "missing `[workspace.lints.rust]` table");
    }
    for key in REQUIRED_RUST_LINTS {
        audit.check();
        if !table_defines(&root.text, "[workspace.lints.rust]", key) {
            audit.fail(
                ROOT,
                format!("`[workspace.lints.rust]` does not configure `{key}`"),
            );
        }
    }
    audit.check();
    let clippy_count = table_keys(&root.text, "[workspace.lints.clippy]");
    if clippy_count == 0 {
        audit.fail(
            ROOT,
            "`[workspace.lints.clippy]` is missing or empty — the workspace pins a \
             pedantic subset it commits to keeping clean",
        );
    }
}

/// Every member crate must opt in to the shared tables.
fn check_member_manifests(audit: &mut Audit, ws: &Workspace) {
    for manifest in ws.crate_manifests() {
        audit.check();
        let has_lints = manifest.text.contains("[lints]")
            && table_defines(&manifest.text, "[lints]", "workspace");
        if !has_lints {
            audit.fail(
                &manifest.path,
                "missing `[lints]\\nworkspace = true` — the crate is not covered by the \
                 workspace lint policy",
            );
        }
    }
}

/// One sanctioned raw-syscall site: the crate allowed to contain
/// `unsafe`, and the single module its unsafe code must live in.
struct FfiException {
    /// Crate directory prefix the confinement scan covers.
    crate_dir: &'static str,
    /// The crate root, which must `deny` (not `forbid`) `unsafe_code`.
    root: &'static str,
    /// The only module allowed to `allow(unsafe_code)` / use `unsafe`.
    module: &'static str,
}

/// The sanctioned-unsafe sites: `perf_event_open(2)` in `atscale-native`
/// and `epoll`/`eventfd` in `atscale-serve`'s reactor tier.
const FFI_EXCEPTIONS: [FfiException; 2] = [
    FfiException {
        crate_dir: "crates/native/",
        root: "crates/native/src/lib.rs",
        module: "crates/native/src/sys.rs",
    },
    FfiException {
        crate_dir: "crates/serve/",
        root: "crates/serve/src/lib.rs",
        module: "crates/serve/src/sys.rs",
    },
];

/// Every crate root must forbid unsafe code outright — except the
/// documented FFI crates, whose roots must *deny* it (so each syscall
/// shim can re-allow it for exactly one module) and whose `unsafe` usage
/// must stay confined to that module.
fn check_unsafe_forbidden(audit: &mut Audit, ws: &Workspace) {
    for root in ws.crate_roots() {
        audit.check();
        if FFI_EXCEPTIONS.iter().any(|e| e.root == root.path) {
            if !root.text.contains("#![deny(unsafe_code)]") {
                audit.fail(
                    &root.path,
                    "an FFI-exception crate must carry `#![deny(unsafe_code)]` at its root \
                     (forbid would reject the sanctioned syscall shim; anything weaker drops \
                     the guard)",
                );
            }
        } else if !root.text.contains("#![forbid(unsafe_code)]") {
            audit.fail(
                &root.path,
                "missing `#![forbid(unsafe_code)]` at the crate root",
            );
        }
    }
    // Each exception stays surgical: inside its crate, unsafe code and
    // `allow(unsafe_code)` opt-outs may appear only in the syscall shim.
    for exception in &FFI_EXCEPTIONS {
        for file in ws
            .rust_sources()
            .filter(|f| f.path.starts_with(exception.crate_dir))
        {
            if file.path == exception.module {
                continue;
            }
            audit.check();
            if file.code.contains("allow(unsafe_code)") || has_unsafe_token(&file.code) {
                audit.fail(
                    &file.path,
                    format!(
                        "unsafe code outside the sanctioned FFI module `{}` — the exception \
                         covers the syscall shim only",
                        exception.module
                    ),
                );
            }
        }
    }
}

/// True when `unsafe` appears as a standalone token (word-boundary match,
/// so `unsafe_code` in lint attributes does not count).
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let is_ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    let mut from = 0;
    while let Some(at) = code[from..].find("unsafe") {
        let start = from + at;
        let end = start + "unsafe".len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when `key = ...` appears inside the given TOML table (before the
/// next `[` header).
fn table_defines(toml: &str, table: &str, key: &str) -> bool {
    table_body(toml, table).is_some_and(|body| {
        body.lines().map(str::trim).any(|l| {
            l.strip_prefix(key)
                .is_some_and(|rest| rest.trim_start().starts_with('='))
        })
    })
}

/// Number of `key = value` lines inside the given TOML table.
fn table_keys(toml: &str, table: &str) -> usize {
    table_body(toml, table).map_or(0, |body| {
        body.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#') && l.contains('='))
            .count()
    })
}

/// The text between a `[table]` header and the next header.
fn table_body<'a>(toml: &'a str, table: &str) -> Option<&'a str> {
    let at = toml.find(table)? + table.len();
    let body = &toml[at..];
    Some(match body.find("\n[") {
        Some(end) => &body[..end],
        None => body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    const GOOD_ROOT: &str = "
[workspace]
members = [\"crates/*\"]

[workspace.lints.rust]
missing_docs = \"warn\"
unsafe_code = \"deny\"

[workspace.lints.clippy]
semicolon_if_nothing_returned = \"warn\"
";
    const GOOD_CRATE: &str = "
[package]
name = \"x\"

[lints]
workspace = true
";

    fn good() -> Vec<(&'static str, &'static str)> {
        vec![
            ("Cargo.toml", GOOD_ROOT),
            ("crates/x/Cargo.toml", GOOD_CRATE),
            (
                "crates/x/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}",
            ),
        ]
    }

    #[test]
    fn wired_workspace_passes() {
        let ws = workspace_from(&good());
        assert_eq!(audit_lint_wiring(&ws).violations, Vec::new());
    }

    #[test]
    fn missing_clippy_table_is_flagged() {
        let root = GOOD_ROOT.replace(
            "[workspace.lints.clippy]\nsemicolon_if_nothing_returned = \"warn\"\n",
            "",
        );
        let mut files = good();
        files[0] = ("Cargo.toml", Box::leak(root.into_boxed_str()));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("clippy")));
    }

    #[test]
    fn crate_without_opt_in_is_flagged() {
        let mut files = good();
        files[1] = ("crates/x/Cargo.toml", "[package]\nname = \"x\"\n");
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("[lints]")));
    }

    #[test]
    fn missing_forbid_unsafe_is_flagged() {
        let mut files = good();
        files[2] = ("crates/x/src/lib.rs", "pub fn f() {}");
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("forbid(unsafe_code)")));
    }

    #[test]
    fn ffi_exception_crate_with_deny_and_confined_unsafe_passes() {
        let mut files = good();
        files.push(("crates/native/Cargo.toml", GOOD_CRATE));
        files.push((
            "crates/native/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod sys;",
        ));
        files.push((
            "crates/native/src/sys.rs",
            "#[allow(unsafe_code)]\nmod imp { pub fn open() -> i64 { unsafe { syscall(298) } } }",
        ));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());
    }

    #[test]
    fn ffi_exception_crate_without_deny_is_flagged() {
        let mut files = good();
        files.push(("crates/native/Cargo.toml", GOOD_CRATE));
        files.push(("crates/native/src/lib.rs", "pub mod sys;"));
        files.push(("crates/native/src/sys.rs", "pub fn open() -> i64 { 0 }"));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("deny(unsafe_code)")));
    }

    #[test]
    fn unsafe_outside_the_syscall_shim_is_flagged() {
        let mut files = good();
        files.push(("crates/native/Cargo.toml", GOOD_CRATE));
        files.push((
            "crates/native/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod sys;\npub mod sneaky;",
        ));
        files.push(("crates/native/src/sys.rs", "pub fn open() -> i64 { 0 }"));
        files.push((
            "crates/native/src/sneaky.rs",
            "#[allow(unsafe_code)]\npub fn f() { unsafe { core::hint::unreachable_unchecked() } }",
        ));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.file == "crates/native/src/sneaky.rs"
                && v.message.contains("outside the sanctioned FFI module")));
    }

    #[test]
    fn serve_epoll_shim_is_a_second_sanctioned_site() {
        // The serve crate mirrors native's exception: deny at the root,
        // unsafe confined to src/sys.rs — and anything outside it flags.
        let mut files = good();
        files.push(("crates/serve/Cargo.toml", GOOD_CRATE));
        files.push((
            "crates/serve/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod sys;\npub mod reactor;",
        ));
        files.push((
            "crates/serve/src/sys.rs",
            "#[allow(unsafe_code)]\nmod imp { pub fn ep() -> i64 { unsafe { syscall(291) } } }",
        ));
        files.push(("crates/serve/src/reactor.rs", "pub fn run() {}"));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert_eq!(audit.violations, Vec::new());

        let mut files = good();
        files.push(("crates/serve/Cargo.toml", GOOD_CRATE));
        files.push((
            "crates/serve/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod sys;\npub mod reactor;",
        ));
        files.push(("crates/serve/src/sys.rs", "pub fn ep() -> i64 { 0 }"));
        files.push((
            "crates/serve/src/reactor.rs",
            "#[allow(unsafe_code)]\npub fn run() { unsafe { core::hint::unreachable_unchecked() } }",
        ));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.file == "crates/serve/src/reactor.rs"
                && v.message.contains("outside the sanctioned FFI module")));
    }

    #[test]
    fn unsafe_code_lint_names_do_not_trip_the_token_scan() {
        // `unsafe_code` (the lint name) contains `unsafe` as a substring;
        // the word-boundary scan must not flag crate roots that merely
        // mention the lint.
        assert!(!has_unsafe_token("#![deny(unsafe_code)]"));
        assert!(has_unsafe_token("unsafe { x() }"));
        assert!(has_unsafe_token("unsafe fn f() {}"));
        assert!(!has_unsafe_token("let not_unsafe_thing = 1;"));
    }

    #[test]
    fn missing_rust_lint_key_is_flagged() {
        let root = GOOD_ROOT.replace("missing_docs = \"warn\"\n", "");
        let mut files = good();
        files[0] = ("Cargo.toml", Box::leak(root.into_boxed_str()));
        let audit = audit_lint_wiring(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("missing_docs")));
    }
}
