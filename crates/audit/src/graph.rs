//! The intra-workspace call graph with reachability queries.
//!
//! Nodes are the [`crate::model::FnItem`]s of every Rust source in the
//! workspace; edges are resolved *by name*, not by type:
//!
//! * a free call `name(...)` edges to every workspace function named
//!   `name` (the union over same-named functions — documented
//!   imprecision that errs toward over-approximation, which is the safe
//!   direction for taint and panic analysis);
//! * a method call `.name(...)` edges to every *method* named `name`;
//! * a qualified call `Type::name(...)` edges to the exact
//!   `Type::name` when the workspace declares one (with `Self`
//!   resolved against the caller's `impl` type), falling back to free
//!   functions named `name` for module-qualified calls;
//! * macro invocations produce no edges (the passes inspect them
//!   directly at the call site).
//!
//! Reachability is plain BFS, forward (callees of a root set) and
//! reverse (callers that can reach a sink set). All internal maps are
//! `BTreeMap` so the engine's own output ordering is deterministic —
//! the discipline it enforces on the rest of the workspace.

use crate::model::{CallKind, CallSite, FileModel, FnItem, LockDecl, LockSite};
use crate::Workspace;
use std::collections::BTreeMap;

/// A node id: index into [`Analysis::fns`].
pub type NodeId = usize;

/// Method names whose calls are almost always `std` collection/iterator/
/// `Option`/`Result` APIs; a method call with one of these names never
/// resolves to a workspace function (see [`Analysis::resolve_call`]).
pub const STD_COLLIDING_METHODS: [&str; 54] = [
    // Collections.
    "push",
    "pop",
    "join",
    "insert",
    "remove",
    "get",
    "get_mut",
    "extend",
    "append",
    "clear",
    "take",
    "entry",
    "contains",
    "contains_key",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "keys",
    "values",
    "drain",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "first",
    "last",
    // Iterators.
    "next",
    "find",
    "any",
    "all",
    "map",
    "filter",
    "filter_map",
    "fold",
    "sum",
    "position",
    "count",
    "collect",
    "enumerate",
    "rev",
    "zip",
    "chain",
    "cloned",
    "copied",
    "skip",
    "flat_map",
    "for_each",
    "max",
    "min",
    // Option/Result.
    "unwrap_or",
    "unwrap_or_else",
    "and_then",
    // Filesystem builders: `File::open`/`OpenOptions::open` as a method
    // call must not edge to the workspace's `RunStore::open`-style
    // constructors (those are only ever invoked qualified).
    "open",
];

/// True for functions that belong to the test/bench harness rather than
/// product code: `#[cfg(test)]` regions, `tests/` integration files, and
/// the bench crate's sources.
fn is_harness(f: &FnItem) -> bool {
    f.in_tests || f.path.starts_with("crates/bench/") || f.path.contains("/benches/")
}

/// The analysed workspace: per-file models, the flattened function list,
/// and the call graph.
pub struct Analysis {
    /// One model per Rust source file, in workspace path order.
    pub files: Vec<FileModel>,
    /// Every lock declaration across the workspace.
    pub locks: Vec<LockDecl>,
    /// Flattened `(file index, fn index)` pairs; a [`NodeId`] indexes here.
    fns: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<NodeId>>,
    by_qualified: BTreeMap<String, Vec<NodeId>>,
    edges: Vec<Vec<NodeId>>,
    redges: Vec<Vec<NodeId>>,
}

impl Analysis {
    /// Parses every Rust source in `ws` and builds the call graph.
    pub fn build(ws: &Workspace) -> Analysis {
        let files: Vec<FileModel> = ws
            .rust_sources()
            .map(|f| FileModel::parse(&f.path, &f.text))
            .collect();
        let mut locks = Vec::new();
        for f in &files {
            locks.extend(f.locks.iter().cloned());
        }
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, g) in file.fns.iter().enumerate() {
                let id = fns.len();
                fns.push((fi, gi));
                by_name.entry(g.name.clone()).or_default().push(id);
                by_qualified
                    .entry(g.qualified.clone())
                    .or_default()
                    .push(id);
            }
        }
        let mut analysis = Analysis {
            files,
            locks,
            fns,
            by_name,
            by_qualified,
            edges: Vec::new(),
            redges: Vec::new(),
        };
        analysis.build_edges();
        analysis
    }

    fn build_edges(&mut self) {
        let n = self.fns.len();
        let mut edges: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut redges: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, slot) in edges.iter_mut().enumerate() {
            let mut out: Vec<NodeId> = Vec::new();
            for call in self.calls(id) {
                out.extend(self.resolve_call(id, &call));
            }
            out.sort_unstable();
            out.dedup();
            for &callee in &out {
                redges[callee].push(id);
            }
            *slot = out;
        }
        for r in &mut redges {
            r.sort_unstable();
            r.dedup();
        }
        self.edges = edges;
        self.redges = redges;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when the workspace declared no functions at all.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The function item behind a node id.
    pub fn item(&self, id: NodeId) -> &FnItem {
        let (fi, gi) = self.fns[id];
        &self.files[fi].fns[gi]
    }

    /// The file model a node lives in.
    pub fn file_of(&self, id: NodeId) -> &FileModel {
        &self.files[self.fns[id].0]
    }

    /// Call sites in a node's body.
    pub fn calls(&self, id: NodeId) -> Vec<CallSite> {
        let (fi, gi) = self.fns[id];
        let file = &self.files[fi];
        file.calls_of(&file.fns[gi])
    }

    /// Lock acquisitions in a node's body.
    pub fn lock_sites(&self, id: NodeId) -> Vec<LockSite> {
        let (fi, gi) = self.fns[id];
        let file = &self.files[fi];
        file.lock_sites_of(&file.fns[gi], &self.locks)
    }

    /// Nodes matching `name` — a `Type::method` qualified name, or a bare
    /// name matched against every function with that name.
    pub fn find(&self, name: &str) -> Vec<NodeId> {
        if name.contains("::") {
            self.by_qualified.get(name).cloned().unwrap_or_default()
        } else {
            self.by_name.get(name).cloned().unwrap_or_default()
        }
    }

    /// Callees a call site may dispatch to, given the calling node.
    ///
    /// Two precision filters apply on top of name matching: production
    /// code never resolves into test/bench functions (tests may call
    /// production, never the reverse), and method names that collide
    /// with ubiquitous `std` APIs ([`STD_COLLIDING_METHODS`]) resolve to
    /// nothing — `vec.push(x)` must not edge to an unrelated workspace
    /// `fn push`. The cost is a documented false-negative class: a
    /// workspace method with such a name gets no incoming method-call
    /// edges.
    pub fn resolve_call(&self, caller: NodeId, call: &CallSite) -> Vec<NodeId> {
        let callees = self.resolve_by_name(caller, call);
        if is_harness(self.item(caller)) {
            return callees;
        }
        callees
            .into_iter()
            .filter(|&id| !is_harness(self.item(id)))
            .collect()
    }

    fn resolve_by_name(&self, caller: NodeId, call: &CallSite) -> Vec<NodeId> {
        match call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Method => {
                if STD_COLLIDING_METHODS.contains(&call.name.as_str()) {
                    return Vec::new();
                }
                self.by_name
                    .get(&call.name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| self.item(id).impl_type.is_some())
                            .collect()
                    })
                    .unwrap_or_default()
            }
            CallKind::Free => self.by_name.get(&call.name).cloned().unwrap_or_default(),
            CallKind::Qualified => {
                let prefix = match call.prefix.as_deref() {
                    Some("Self") => self.item(caller).impl_type.clone(),
                    other => other.map(str::to_string),
                };
                if let Some(p) = prefix {
                    let qualified = format!("{p}::{}", call.name);
                    if let Some(ids) = self.by_qualified.get(&qualified) {
                        return ids.clone();
                    }
                }
                // Module-qualified call (`store::default_location(...)`):
                // fall back to free functions with that name.
                self.by_name
                    .get(&call.name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| self.item(id).impl_type.is_none())
                            .collect()
                    })
                    .unwrap_or_default()
            }
        }
    }

    /// Forward reachability: every node reachable from `roots` (roots
    /// included).
    pub fn reachable_from(&self, roots: &[NodeId]) -> Vec<bool> {
        bfs(&self.edges, roots)
    }

    /// Reverse reachability: every node from which some node in `sinks`
    /// is reachable (sinks included).
    pub fn reaching(&self, sinks: &[NodeId]) -> Vec<bool> {
        bfs(&self.redges, sinks)
    }
}

fn bfs(edges: &[Vec<NodeId>], start: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; edges.len()];
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in start {
        if s < seen.len() && !seen[s] {
            seen[s] = true;
            queue.push(s);
        }
    }
    while let Some(n) = queue.pop() {
        for &m in &edges[n] {
            if !seen[m] {
                seen[m] = true;
                queue.push(m);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    fn analysis(files: &[(&str, &str)]) -> Analysis {
        Analysis::build(&workspace_from(files))
    }

    #[test]
    fn free_and_method_calls_build_edges() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "
            fn top() { helper(); }
            fn helper() { leaf(); }
            fn leaf() {}
            struct S;
            impl S { fn m(&self) { helper(); } }
            ",
        )]);
        let top = a.find("top")[0];
        let leaf = a.find("leaf")[0];
        let reach = a.reachable_from(&[top]);
        assert!(reach[leaf], "top -> helper -> leaf");
        let back = a.reaching(&[leaf]);
        assert!(back[top]);
        assert!(back[a.find("S::m")[0]], "method caller reaches leaf too");
    }

    #[test]
    fn qualified_calls_resolve_exactly() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "
            struct Store;
            impl Store { fn save(&self) {} fn key(&self) { Self::save_impl(); } fn save_impl() {} }
            fn other_save() {}
            fn caller() { Store::save(s); }
            ",
        )]);
        let caller = a.find("caller")[0];
        let save = a.find("Store::save")[0];
        let other = a.find("other_save")[0];
        let reach = a.reachable_from(&[caller]);
        assert!(reach[save]);
        assert!(!reach[other]);
        // `Self::` resolves against the caller's impl type.
        let key = a.find("Store::key")[0];
        assert!(a.reachable_from(&[key])[a.find("Store::save_impl")[0]]);
    }

    #[test]
    fn unknown_calls_produce_no_edges() {
        let a = analysis(&[(
            "crates/x/src/lib.rs",
            "fn f() { std::process::exit(1); x.push(1); }",
        )]);
        let f = a.find("f")[0];
        let reach = a.reachable_from(&[f]);
        assert_eq!(reach.iter().filter(|&&b| b).count(), 1, "only f itself");
    }
}
