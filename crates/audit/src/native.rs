//! Rule 8 — native event coverage.
//!
//! The native harness (`crates/native`) mirrors the simulator's Table VI
//! counters onto real PMU events. Every counter name exported by
//! `atscale_mmu::Counters::events()` must appear either in the harness's
//! `MAPPED` counter group or in its explicit `UNMAPPED` table (with a
//! reason) — never both, and `UNMAPPED` must not accumulate entries that
//! stopped being Table VI counters. A simulator counter added without a
//! native mapping decision therefore fails CI: the decision can be "no
//! defensible analogue", but it must be written down.
//!
//! The scan parses the quoted event names out of `Counters::events()` and
//! the `counter_group!` invocation / `UNMAPPED` const — all three shapes
//! are kept canonical by rustfmt, same as the other text-scan rules.
//!
//! The rule extends to the per-architecture counter schemas
//! (`atscale_mmu::ARCH_COUNTER_SCHEMAS`): every name an alternative
//! translation architecture declares must likewise be in `MAPPED` or in the
//! harness's `ARCH_UNMAPPED` table. Architecture counters are kept out of
//! `UNMAPPED` (whose stale-check requires Table VI membership) so the two
//! tables cannot blur into one another.

use crate::counters::{arch_counter_schemas, ARCH_PATH, COUNTERS_PATH};
use crate::source::{block_after, quoted_strings, quoted_strings_with_ends};
use crate::{Audit, Workspace};
use std::collections::BTreeSet;

/// Path (workspace-relative suffix) of the native event table under audit.
pub const EVENTS_PATH: &str = "crates/native/src/events.rs";
const RULE: &str = "native-event-coverage";

/// Runs the native-event-coverage rule over the workspace.
pub fn audit_native_event_coverage(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let Some(counters) = ws.file(COUNTERS_PATH) else {
        audit.fail(
            COUNTERS_PATH,
            format!("{COUNTERS_PATH} not found in workspace"),
        );
        return audit;
    };
    let Some(events) = ws.file(EVENTS_PATH) else {
        audit.fail(EVENTS_PATH, format!("{EVENTS_PATH} not found in workspace"));
        return audit;
    };

    let table_vi = table_vi_names(&counters.stripped);
    if table_vi.is_empty() {
        audit.fail(
            COUNTERS_PATH,
            "could not parse any event names from `Counters::events()`",
        );
        return audit;
    }
    let mapped = mapped_names(&events.stripped);
    if mapped.is_empty() {
        audit.fail(
            EVENTS_PATH,
            "could not parse any mapped events from the `counter_group!` invocation",
        );
        return audit;
    }
    let unmapped = paired_entries(&events.stripped, "pub const UNMAPPED");

    let unmapped_names: BTreeSet<&str> = unmapped.iter().map(|(n, _)| n.as_str()).collect();
    for name in &table_vi {
        audit.check();
        let in_mapped = mapped.contains(name);
        let in_unmapped = unmapped_names.contains(name.as_str());
        if !in_mapped && !in_unmapped {
            audit.fail(
                EVENTS_PATH,
                format!(
                    "Table VI counter `{name}` is neither in the native `MAPPED` group nor \
                     in the explicit `UNMAPPED` table — map it to a PMU event or record why \
                     no analogue exists"
                ),
            );
        }
        if in_mapped && in_unmapped {
            audit.fail(
                EVENTS_PATH,
                format!("Table VI counter `{name}` appears in both `MAPPED` and `UNMAPPED`"),
            );
        }
    }
    for (name, reason) in &unmapped {
        audit.check();
        if !table_vi.contains(name) {
            audit.fail(
                EVENTS_PATH,
                format!(
                    "`UNMAPPED` entry `{name}` is not a Table VI counter — stale entries \
                     must be pruned when the simulator's counter set changes"
                ),
            );
        }
        audit.check();
        if reason.trim().is_empty() {
            audit.fail(
                EVENTS_PATH,
                format!("`UNMAPPED` entry `{name}` has an empty reason"),
            );
        }
    }
    check_arch_schema_coverage(&mut audit, ws, &mapped);
    audit
}

/// The per-architecture wing of the rule: every `ARCH_COUNTER_SCHEMAS` name
/// is in `MAPPED` or `ARCH_UNMAPPED` (never both), and `ARCH_UNMAPPED`
/// holds no stale or reason-free entries.
fn check_arch_schema_coverage(audit: &mut Audit, ws: &Workspace, mapped: &BTreeSet<String>) {
    let Some(arch) = ws.file(ARCH_PATH) else {
        audit.fail(ARCH_PATH, format!("{ARCH_PATH} not found in workspace"));
        return;
    };
    let Some(events) = ws.file(EVENTS_PATH) else {
        return; // already reported above
    };
    let schemas = arch_counter_schemas(&arch.stripped);
    if schemas.is_empty() {
        audit.fail(
            ARCH_PATH,
            "could not parse any entries from `ARCH_COUNTER_SCHEMAS`",
        );
        return;
    }
    let arch_unmapped = paired_entries(&events.stripped, "pub const ARCH_UNMAPPED");
    let arch_unmapped_names: BTreeSet<&str> =
        arch_unmapped.iter().map(|(n, _)| n.as_str()).collect();
    let mut schema_names: BTreeSet<&str> = BTreeSet::new();
    for (arch_name, names) in &schemas {
        for name in names {
            schema_names.insert(name);
            audit.check();
            let in_mapped = mapped.contains(name);
            let in_unmapped = arch_unmapped_names.contains(name.as_str());
            if !in_mapped && !in_unmapped {
                audit.fail(
                    EVENTS_PATH,
                    format!(
                        "architecture counter `{name}` (schema `{arch_name}`) is neither in \
                         the native `MAPPED` group nor in the `ARCH_UNMAPPED` table — map it \
                         to a PMU event or record why no analogue exists"
                    ),
                );
            }
            if in_mapped && in_unmapped {
                audit.fail(
                    EVENTS_PATH,
                    format!(
                        "architecture counter `{name}` appears in both `MAPPED` and \
                         `ARCH_UNMAPPED`"
                    ),
                );
            }
        }
    }
    for (name, reason) in &arch_unmapped {
        audit.check();
        if !schema_names.contains(name.as_str()) {
            audit.fail(
                EVENTS_PATH,
                format!(
                    "`ARCH_UNMAPPED` entry `{name}` is not in any `ARCH_COUNTER_SCHEMAS` \
                     entry — stale entries must be pruned when an architecture's counter \
                     set changes"
                ),
            );
        }
        audit.check();
        if reason.trim().is_empty() {
            audit.fail(
                EVENTS_PATH,
                format!("`ARCH_UNMAPPED` entry `{name}` has an empty reason"),
            );
        }
    }
}

/// The simulator's Table VI counter names: every quoted string inside
/// `Counters::events()`.
fn table_vi_names(counters_src: &str) -> BTreeSet<String> {
    block_after(counters_src, "pub fn events")
        .map(|body| quoted_strings(body).into_iter().collect())
        .unwrap_or_default()
}

/// The native harness's mapped names: quoted strings inside the
/// `counter_group!` invocation that are immediately followed by `=>`
/// (the `field: "sim.name" => encoding` position; doc-attr and note
/// literals are not followed by `=>`).
fn mapped_names(events_src: &str) -> BTreeSet<String> {
    let Some(body) = block_after(events_src, "counter_group!") else {
        return BTreeSet::new();
    };
    let mut names = BTreeSet::new();
    for (end, s) in quoted_strings_with_ends(body) {
        if body[end..].trim_start().starts_with("=>") {
            names.insert(s);
        }
    }
    names
}

/// The `(name, reason)` pairs of a two-string-tuple const table: quoted
/// strings between `needle` (e.g. `pub const UNMAPPED`) and the closing
/// `];`, taken pairwise. An absent const yields no entries.
fn paired_entries(events_src: &str, needle: &str) -> Vec<(String, String)> {
    let Some(at) = events_src.find(needle) else {
        return Vec::new();
    };
    let body = &events_src[at..];
    let body = body.find("];").map_or(body, |end| &body[..end]);
    let strings = quoted_strings(body);
    strings
        .chunks(2)
        .filter(|pair| pair.len() == 2)
        .map(|pair| (pair[0].clone(), pair[1].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    const GOOD_COUNTERS: &str = r#"
        impl Counters {
            pub fn events(&self) -> Vec<(&'static str, u64)> {
                vec![
                    ("inst_retired.any", self.inst_retired),
                    ("dtlb_load_misses.stlb_hit", self.stlb_hit_loads),
                ]
            }
        }
    "#;

    const GOOD_EVENTS: &str = r#"
        counter_group! {
            instructions: "inst_retired.any" => EventKind::Hardware(HW_INSTRUCTIONS),
                "";
            minor_faults: "minor-faults" => EventKind::Software(SW_PAGE_FAULTS_MIN),
                "native-only extra";
        }
        pub const UNMAPPED: &[(&str, &str)] = &[
            (
                "dtlb_load_misses.stlb_hit",
                "generic dTLB events cannot separate STLB hits from walks",
            ),
        ];
        pub const ARCH_UNMAPPED: &[(&str, &str)] =
            &[("victima.hits", "simulator-only structure")];
    "#;

    const GOOD_ARCH: &str = r#"
        pub const ARCH_COUNTER_SCHEMAS: &[(&str, &[&str])] = &[
            ("baseline", &[]),
            ("victima", &["victima.hits"]),
        ];
    "#;

    fn good() -> Vec<(&'static str, &'static str)> {
        vec![
            ("crates/mmu/src/counters.rs", GOOD_COUNTERS),
            ("crates/native/src/events.rs", GOOD_EVENTS),
            ("crates/mmu/src/arch.rs", GOOD_ARCH),
        ]
    }

    #[test]
    fn covered_event_tables_pass() {
        let audit = audit_native_event_coverage(&workspace_from(&good()));
        assert_eq!(audit.violations, Vec::new());
        assert!(audit.checked > 0);
    }

    #[test]
    fn uncovered_table_vi_counter_is_flagged() {
        let doctored = GOOD_COUNTERS.replace(
            "(\"inst_retired.any\", self.inst_retired),",
            "(\"inst_retired.any\", self.inst_retired),\n                    (\"new.event\", self.new_event),",
        );
        let mut files = good();
        files[0] = (
            "crates/mmu/src/counters.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`new.event`")
                && v.message.contains("neither in the native `MAPPED` group")));
    }

    #[test]
    fn double_booked_counter_is_flagged() {
        let doctored =
            GOOD_EVENTS.replace("\"dtlb_load_misses.stlb_hit\",", "\"inst_retired.any\",");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        // inst_retired.any is now both mapped and unmapped, and
        // dtlb_load_misses.stlb_hit is covered by neither.
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("both `MAPPED` and `UNMAPPED`")));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`dtlb_load_misses.stlb_hit`")));
    }

    #[test]
    fn stale_unmapped_entry_is_flagged() {
        // Append a second UNMAPPED tuple naming a non-Table-VI counter.
        let appended = GOOD_EVENTS.replace(
            "),\n        ];",
            "),\n            (\"ancient.event\", \"some reason\"),\n        ];",
        );
        assert_ne!(appended, GOOD_EVENTS, "fixture shape drifted");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(appended.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`ancient.event`") && v.message.contains("stale")));
    }

    #[test]
    fn empty_unmapped_reason_is_flagged() {
        let doctored = GOOD_EVENTS.replace(
            "\"generic dTLB events cannot separate STLB hits from walks\",",
            "\"\",",
        );
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("empty reason")));
    }

    #[test]
    fn missing_native_crate_fails_loudly() {
        let audit = audit_native_event_coverage(&workspace_from(&good()[..1]));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("not found in workspace")));
    }

    #[test]
    fn uncovered_arch_schema_counter_is_flagged() {
        // Declare a second victima counter with no MAPPED/ARCH_UNMAPPED home.
        let doctored = GOOD_ARCH.replace(
            "&[\"victima.hits\"]",
            "&[\"victima.hits\", \"victima.fills\"]",
        );
        let mut files = good();
        files[2] = (
            "crates/mmu/src/arch.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`victima.fills`")
                && v.message.contains("neither in the native `MAPPED` group")));
    }

    #[test]
    fn double_booked_arch_counter_is_flagged() {
        // Map victima.hits natively while it also sits in ARCH_UNMAPPED.
        let doctored = GOOD_EVENTS.replace(
            "minor_faults:",
            "victima_hits: \"victima.hits\" => EventKind::Hardware(HW_INSTRUCTIONS),\n                \"\";\n            minor_faults:",
        );
        assert_ne!(doctored, GOOD_EVENTS, "fixture shape drifted");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`victima.hits`")
                && v.message.contains("both `MAPPED` and `ARCH_UNMAPPED`")));
    }

    #[test]
    fn stale_arch_unmapped_entry_is_flagged() {
        let doctored = GOOD_EVENTS.replace(
            "&[(\"victima.hits\", \"simulator-only structure\")];",
            "&[(\"victima.hits\", \"simulator-only structure\"), (\"victima.gone\", \"reason\")];",
        );
        assert_ne!(doctored, GOOD_EVENTS, "fixture shape drifted");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`victima.gone`") && v.message.contains("stale")));
    }

    #[test]
    fn empty_arch_unmapped_reason_is_flagged() {
        let doctored = GOOD_EVENTS.replace("\"simulator-only structure\"", "\"\"");
        assert_ne!(doctored, GOOD_EVENTS, "fixture shape drifted");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit.violations.iter().any(|v| v
            .message
            .contains("`ARCH_UNMAPPED` entry `victima.hits`")
            && v.message.contains("empty reason")));
    }

    #[test]
    fn missing_arch_module_fails_loudly() {
        let audit = audit_native_event_coverage(&workspace_from(&good()[..2]));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.file == "crates/mmu/src/arch.rs"
                && v.message.contains("not found in workspace")));
    }
}
