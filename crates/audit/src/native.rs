//! Rule 8 — native event coverage.
//!
//! The native harness (`crates/native`) mirrors the simulator's Table VI
//! counters onto real PMU events. Every counter name exported by
//! `atscale_mmu::Counters::events()` must appear either in the harness's
//! `MAPPED` counter group or in its explicit `UNMAPPED` table (with a
//! reason) — never both, and `UNMAPPED` must not accumulate entries that
//! stopped being Table VI counters. A simulator counter added without a
//! native mapping decision therefore fails CI: the decision can be "no
//! defensible analogue", but it must be written down.
//!
//! The scan parses the quoted event names out of `Counters::events()` and
//! the `counter_group!` invocation / `UNMAPPED` const — all three shapes
//! are kept canonical by rustfmt, same as the other text-scan rules.

use crate::counters::COUNTERS_PATH;
use crate::source::block_after;
use crate::{Audit, Workspace};
use std::collections::BTreeSet;

/// Path (workspace-relative suffix) of the native event table under audit.
pub const EVENTS_PATH: &str = "crates/native/src/events.rs";
const RULE: &str = "native-event-coverage";

/// Runs the native-event-coverage rule over the workspace.
pub fn audit_native_event_coverage(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let Some(counters) = ws.file(COUNTERS_PATH) else {
        audit.fail(
            COUNTERS_PATH,
            format!("{COUNTERS_PATH} not found in workspace"),
        );
        return audit;
    };
    let Some(events) = ws.file(EVENTS_PATH) else {
        audit.fail(EVENTS_PATH, format!("{EVENTS_PATH} not found in workspace"));
        return audit;
    };

    let table_vi = table_vi_names(&counters.stripped);
    if table_vi.is_empty() {
        audit.fail(
            COUNTERS_PATH,
            "could not parse any event names from `Counters::events()`",
        );
        return audit;
    }
    let mapped = mapped_names(&events.stripped);
    if mapped.is_empty() {
        audit.fail(
            EVENTS_PATH,
            "could not parse any mapped events from the `counter_group!` invocation",
        );
        return audit;
    }
    let unmapped = unmapped_entries(&events.stripped);

    let unmapped_names: BTreeSet<&str> = unmapped.iter().map(|(n, _)| n.as_str()).collect();
    for name in &table_vi {
        audit.check();
        let in_mapped = mapped.contains(name);
        let in_unmapped = unmapped_names.contains(name.as_str());
        if !in_mapped && !in_unmapped {
            audit.fail(
                EVENTS_PATH,
                format!(
                    "Table VI counter `{name}` is neither in the native `MAPPED` group nor \
                     in the explicit `UNMAPPED` table — map it to a PMU event or record why \
                     no analogue exists"
                ),
            );
        }
        if in_mapped && in_unmapped {
            audit.fail(
                EVENTS_PATH,
                format!("Table VI counter `{name}` appears in both `MAPPED` and `UNMAPPED`"),
            );
        }
    }
    for (name, reason) in &unmapped {
        audit.check();
        if !table_vi.contains(name) {
            audit.fail(
                EVENTS_PATH,
                format!(
                    "`UNMAPPED` entry `{name}` is not a Table VI counter — stale entries \
                     must be pruned when the simulator's counter set changes"
                ),
            );
        }
        audit.check();
        if reason.trim().is_empty() {
            audit.fail(
                EVENTS_PATH,
                format!("`UNMAPPED` entry `{name}` has an empty reason"),
            );
        }
    }
    audit
}

/// The simulator's Table VI counter names: every quoted string inside
/// `Counters::events()`.
fn table_vi_names(counters_src: &str) -> BTreeSet<String> {
    block_after(counters_src, "pub fn events")
        .map(|body| quoted_strings(body).into_iter().collect())
        .unwrap_or_default()
}

/// The native harness's mapped names: quoted strings inside the
/// `counter_group!` invocation that are immediately followed by `=>`
/// (the `field: "sim.name" => encoding` position; doc-attr and note
/// literals are not followed by `=>`).
fn mapped_names(events_src: &str) -> BTreeSet<String> {
    let Some(body) = block_after(events_src, "counter_group!") else {
        return BTreeSet::new();
    };
    let mut names = BTreeSet::new();
    for (end, s) in quoted_strings_with_ends(body) {
        if body[end..].trim_start().starts_with("=>") {
            names.insert(s);
        }
    }
    names
}

/// The `(name, reason)` pairs of the `UNMAPPED` const: quoted strings
/// between `pub const UNMAPPED` and the closing `];`, taken pairwise.
fn unmapped_entries(events_src: &str) -> Vec<(String, String)> {
    let Some(at) = events_src.find("pub const UNMAPPED") else {
        return Vec::new();
    };
    let body = &events_src[at..];
    let body = body.find("];").map_or(body, |end| &body[..end]);
    let strings = quoted_strings(body);
    strings
        .chunks(2)
        .filter(|pair| pair.len() == 2)
        .map(|pair| (pair[0].clone(), pair[1].clone()))
        .collect()
}

/// Every `"..."` literal in `text`, in order (comment-stripped input; the
/// event-name and reason literals under audit contain no escapes).
fn quoted_strings(text: &str) -> Vec<String> {
    quoted_strings_with_ends(text)
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

/// Like [`quoted_strings`], also yielding the byte offset just past each
/// literal's closing quote.
fn quoted_strings_with_ends(text: &str) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j < bytes.len() {
                out.push((j + 1, text[start..j].to_string()));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    const GOOD_COUNTERS: &str = r#"
        impl Counters {
            pub fn events(&self) -> Vec<(&'static str, u64)> {
                vec![
                    ("inst_retired.any", self.inst_retired),
                    ("dtlb_load_misses.stlb_hit", self.stlb_hit_loads),
                ]
            }
        }
    "#;

    const GOOD_EVENTS: &str = r#"
        counter_group! {
            instructions: "inst_retired.any" => EventKind::Hardware(HW_INSTRUCTIONS),
                "";
            minor_faults: "minor-faults" => EventKind::Software(SW_PAGE_FAULTS_MIN),
                "native-only extra";
        }
        pub const UNMAPPED: &[(&str, &str)] = &[
            (
                "dtlb_load_misses.stlb_hit",
                "generic dTLB events cannot separate STLB hits from walks",
            ),
        ];
    "#;

    fn good() -> Vec<(&'static str, &'static str)> {
        vec![
            ("crates/mmu/src/counters.rs", GOOD_COUNTERS),
            ("crates/native/src/events.rs", GOOD_EVENTS),
        ]
    }

    #[test]
    fn covered_event_tables_pass() {
        let audit = audit_native_event_coverage(&workspace_from(&good()));
        assert_eq!(audit.violations, Vec::new());
        assert!(audit.checked > 0);
    }

    #[test]
    fn uncovered_table_vi_counter_is_flagged() {
        let doctored = GOOD_COUNTERS.replace(
            "(\"inst_retired.any\", self.inst_retired),",
            "(\"inst_retired.any\", self.inst_retired),\n                    (\"new.event\", self.new_event),",
        );
        let mut files = good();
        files[0] = (
            "crates/mmu/src/counters.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`new.event`")
                && v.message.contains("neither in the native `MAPPED` group")));
    }

    #[test]
    fn double_booked_counter_is_flagged() {
        let doctored =
            GOOD_EVENTS.replace("\"dtlb_load_misses.stlb_hit\",", "\"inst_retired.any\",");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        // inst_retired.any is now both mapped and unmapped, and
        // dtlb_load_misses.stlb_hit is covered by neither.
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("both `MAPPED` and `UNMAPPED`")));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`dtlb_load_misses.stlb_hit`")));
    }

    #[test]
    fn stale_unmapped_entry_is_flagged() {
        // Append a second UNMAPPED tuple naming a non-Table-VI counter.
        let appended = GOOD_EVENTS.replace(
            "),\n        ];",
            "),\n            (\"ancient.event\", \"some reason\"),\n        ];",
        );
        assert_ne!(appended, GOOD_EVENTS, "fixture shape drifted");
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(appended.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`ancient.event`") && v.message.contains("stale")));
    }

    #[test]
    fn empty_unmapped_reason_is_flagged() {
        let doctored = GOOD_EVENTS.replace(
            "\"generic dTLB events cannot separate STLB hits from walks\",",
            "\"\",",
        );
        let mut files = good();
        files[1] = (
            "crates/native/src/events.rs",
            Box::leak(doctored.into_boxed_str()),
        );
        let audit = audit_native_event_coverage(&workspace_from(&files));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("empty reason")));
    }

    #[test]
    fn missing_native_crate_fails_loudly() {
        let audit = audit_native_event_coverage(&workspace_from(&good()[..1]));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("not found in workspace")));
    }
}
