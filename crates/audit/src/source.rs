//! Comment-aware text utilities for source scanning.
//!
//! Since the atscale-analyze rewrite these helpers sit on top of the real
//! lexer in [`crate::lex`]: comment stripping is token-based (so raw
//! strings, byte strings, and nested block comments are handled by one
//! authority), while the brace/paren matchers and the field-reference
//! scanners keep their original text-level shape — precise enough for the
//! rustfmt-canonical constructs they audit, and dependency-free.

use std::collections::BTreeSet;

/// Replaces `//` line comments (including doc comments) and `/* */` block
/// comments with spaces, preserving byte offsets, line structure, and the
/// contents of string and char literals. Token-based: the lexer decides
/// what is a comment, so `//` inside a string or raw string never is.
pub fn strip_comments(src: &str) -> String {
    crate::lex::blank_comments(src)
}

/// [`strip_comments`] plus blanked string/char-literal *contents*
/// (delimiters kept): the view for scanning code patterns, where a
/// `format!` mentioned inside a message string must not look like a call.
pub fn strip_comments_and_literals(src: &str) -> String {
    crate::lex::blank_comments_and_literals(src)
}

/// Advances past a `"..."` literal starting at `i`, honouring `\` escapes.
fn skip_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Advances past an `r"..."` / `r#"..."#` literal starting at `i`.
fn skip_raw_string(b: &[u8], i: usize) -> usize {
    let mut hashes = 0;
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return i + 1; // `r` was an ordinary identifier character
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' && b.len() - j > hashes && b[j + 1..=j + hashes].iter().all(|&c| c == b'#')
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

/// Advances past a char literal (`'x'`, `'\n'`) or over a lifetime tick.
fn skip_char_or_lifetime(b: &[u8], i: usize) -> usize {
    if i + 1 < b.len() && b[i + 1] == b'\\' {
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        j + 1
    } else if i + 2 < b.len() && b[i + 2] == b'\'' {
        i + 3
    } else {
        i + 1 // a lifetime such as `'a`
    }
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Byte offsets at which `ident` occurs as a standalone identifier (not as
/// a substring of a longer identifier).
pub fn ident_positions<'a>(text: &'a str, ident: &'a str) -> impl Iterator<Item = usize> + 'a {
    let b = text.as_bytes();
    text.match_indices(ident).filter_map(move |(at, _)| {
        let before_ok = at == 0 || !is_ident_byte(b[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= b.len() || !is_ident_byte(b[after]);
        (before_ok && after_ok).then_some(at)
    })
}

/// True when `ident` occurs in `text` as a standalone identifier.
pub fn has_ident(text: &str, ident: &str) -> bool {
    ident_positions(text, ident).next().is_some()
}

/// Every `"..."` literal in `text`, in order (comment-stripped input; the
/// name and reason literals the rules scan contain no escapes).
pub fn quoted_strings(text: &str) -> Vec<String> {
    quoted_strings_with_ends(text)
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

/// Like [`quoted_strings`], also yielding the byte offset just past each
/// literal's closing quote.
pub fn quoted_strings_with_ends(text: &str) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j < bytes.len() {
                out.push((j + 1, text[start..j].to_string()));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Given the index of an opening `{`, returns the index one past its
/// matching `}`, skipping braces inside string and char literals.
pub fn matching_brace(src: &str, open: usize) -> Option<usize> {
    let b = src.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            b'"' => i = skip_string(b, i),
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                i = skip_raw_string(b, i);
            }
            b'\'' => i = skip_char_or_lifetime(b, i),
            _ => i += 1,
        }
    }
    None
}

/// Given the index of an opening `(`, returns the index one past its
/// matching `)`, skipping parens inside string and char literals — the
/// span of a macro invocation's arguments, for rules that must exclude
/// panic-message formatting from a scan.
pub fn matching_paren(src: &str, open: usize) -> Option<usize> {
    let b = src.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => {
                depth += 1;
                i += 1;
            }
            b')' => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            b'"' => i = skip_string(b, i),
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                i = skip_raw_string(b, i);
            }
            b'\'' => i = skip_char_or_lifetime(b, i),
            _ => i += 1,
        }
    }
    None
}

/// The `{ ... }` body (braces excluded) of the block that follows the first
/// occurrence of `needle`, e.g. `block_after(src, "pub fn events")`.
pub fn block_after<'a>(src: &'a str, needle: &str) -> Option<&'a str> {
    let at = src.find(needle)?;
    let open = at + src[at..].find('{')?;
    let end = matching_brace(src, open)?;
    Some(&src[open + 1..end - 1])
}

/// `src` with the block body following `needle` blanked out — used to
/// exclude a region (such as `Counters::events`) from a consumption scan.
pub fn without_block(src: &str, needle: &str) -> String {
    let Some(at) = src.find(needle) else {
        return src.to_string();
    };
    let Some(open) = src[at..].find('{').map(|o| at + o) else {
        return src.to_string();
    };
    let Some(end) = matching_brace(src, open) else {
        return src.to_string();
    };
    let mut out = String::with_capacity(src.len());
    out.push_str(&src[..open + 1]);
    out.extend(
        src[open + 1..end - 1]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' }),
    );
    out.push_str(&src[end - 1..]);
    out
}

/// The non-test prefix of a source file: everything before the first
/// `#[cfg(test)]` attribute (rustfmt places test modules last).
pub fn non_test_region(src: &str) -> &str {
    match src.find("#[cfg(test)]") {
        Some(at) => &src[..at],
        None => src,
    }
}

/// The test suffix of a source file: everything from the first
/// `#[cfg(test)]` attribute onward, or `""` when the file has no tests.
pub fn test_region(src: &str) -> &str {
    match src.find("#[cfg(test)]") {
        Some(at) => &src[at..],
        None => "",
    }
}

/// Distinct `self.<field>` references in a block of code.
pub fn self_field_refs(text: &str) -> BTreeSet<String> {
    let b = text.as_bytes();
    ident_positions(text, "self")
        .filter_map(|at| {
            let dot = at + 4;
            if b.get(dot) != Some(&b'.') {
                return None;
            }
            let start = dot + 1;
            let mut end = start;
            while end < b.len() && is_ident_byte(b[end]) {
                end += 1;
            }
            (end > start && !b[start].is_ascii_digit()).then(|| text[start..end].to_string())
        })
        .collect()
}

/// True when `text` contains a *read* of `.field` — a dotted occurrence not
/// immediately followed by an assignment operator (which would make it a
/// counter bump or overwrite rather than a consumption).
pub fn reads_field(text: &str, field: &str) -> bool {
    let b = text.as_bytes();
    ident_positions(text, field).any(|at| {
        if at == 0 || b[at - 1] != b'.' {
            return false;
        }
        let mut j = at + field.len();
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n') {
            j += 1;
        }
        match b.get(j) {
            Some(b'+' | b'-' | b'*' | b'/') if b.get(j + 1) == Some(&b'=') => false,
            Some(b'=') if b.get(j + 1) != Some(&b'=') => false,
            _ => true,
        }
    })
}

/// One `impl` block: optional trait name, the implementing type, and the
/// block body.
#[derive(Debug)]
pub struct ImplBlock<'a> {
    /// Last path segment of the implemented trait, if this is a trait impl.
    pub trait_name: Option<String>,
    /// Base name of the implementing type (generics and paths stripped).
    pub type_name: String,
    /// The impl block's body, braces excluded.
    pub body: &'a str,
}

/// Parses every `impl` block in comment-stripped source.
pub fn impl_blocks(src: &str) -> Vec<ImplBlock<'_>> {
    let mut out = Vec::new();
    for at in ident_positions(src, "impl") {
        let Some(open) = src[at..].find('{').map(|o| at + o) else {
            continue;
        };
        let Some(end) = matching_brace(src, open) else {
            continue;
        };
        let header = strip_impl_generics(src[at + 4..open].trim());
        let (trait_name, type_part) = match header.split_once(" for ") {
            Some((t, ty)) => (Some(base_name(t)), ty),
            None => (None, header),
        };
        out.push(ImplBlock {
            trait_name,
            type_name: base_name(type_part),
            body: &src[open + 1..end - 1],
        });
    }
    out
}

/// Drops a leading `<...>` generic parameter list from an impl header.
fn strip_impl_generics(header: &str) -> &str {
    if !header.starts_with('<') {
        return header;
    }
    let b = header.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return header[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    header
}

/// `std::fmt::Display<'_>` → `Display`: last path segment, generics gone.
fn base_name(part: &str) -> String {
    let part = part.trim();
    let no_generics = part.split(['<', ' ']).next().unwrap_or(part);
    no_generics
        .rsplit("::")
        .next()
        .unwrap_or(no_generics)
        .to_string()
}

/// One `pub fn` found inside an impl block.
#[derive(Debug)]
pub struct PubFn<'a> {
    /// The function's name.
    pub name: String,
    /// The signature text, from `pub fn` up to the opening brace.
    pub signature: String,
    /// The function body, braces excluded (`""` for bodyless forms).
    pub body: &'a str,
}

impl PubFn<'_> {
    /// True when the receiver is `&mut self`.
    pub fn takes_mut_self(&self) -> bool {
        self.signature.contains("&mut self")
    }
}

/// True when the text before a `fn` keyword ends in `pub` or a restricted
/// form such as `pub(crate)` / `pub(in crate::x)`.
fn ends_with_pub(prefix: &str) -> bool {
    let p = prefix.trim_end();
    if p.ends_with("pub") {
        let before = p.len() - 3;
        return before == 0 || !is_ident_byte(p.as_bytes()[before - 1]);
    }
    if p.ends_with(')') {
        if let Some(at) = p.rfind("pub(") {
            let before_ok = at == 0 || !is_ident_byte(p.as_bytes()[at - 1]);
            let inner = &p[at + 4..p.len() - 1];
            return before_ok
                && inner
                    .bytes()
                    .all(|c| is_ident_byte(c) || c == b':' || c == b' ');
        }
    }
    false
}

/// Extracts every `pub fn` in an impl-block body (including `pub(crate)`
/// and other restricted-visibility forms).
pub fn pub_fns(body: &str) -> Vec<PubFn<'_>> {
    let b = body.as_bytes();
    let mut out = Vec::new();
    for at in ident_positions(body, "fn") {
        if !ends_with_pub(&body[..at]) {
            continue;
        }
        let mut cursor = at;
        let open = loop {
            match b.get(cursor) {
                Some(b'{') => break Some(cursor),
                Some(b';') | None => break None,
                _ => cursor += 1,
            }
        };
        let name_start = at + 3;
        let mut name_end = name_start;
        while name_end < b.len() && is_ident_byte(b[name_end]) {
            name_end += 1;
        }
        let name = body[name_start..name_end].to_string();
        match open {
            Some(open) => {
                let Some(end) = matching_brace(body, open) else {
                    continue;
                };
                out.push(PubFn {
                    name,
                    signature: body[at..open].to_string(),
                    body: &body[open + 1..end - 1],
                });
            }
            None => out.push(PubFn {
                name,
                signature: body[at..cursor].to_string(),
                body: "",
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_but_strings_survive() {
        let src = "let a = \"// not a comment\"; // real comment\nlet b = 1; /* gone */ let c = 2;";
        let s = strip_comments(src);
        assert!(s.contains("// not a comment"));
        assert!(!s.contains("real comment"));
        assert!(!s.contains("gone"));
        assert!(s.contains("let c = 2;"));
        assert_eq!(s.len(), src.len());
    }

    #[test]
    fn nested_block_comments_are_handled() {
        let s = strip_comments("a /* x /* y */ z */ b");
        assert_eq!(s.trim_end(), "a                   b".trim_end());
        assert!(s.contains('b'));
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(has_ident("let cycles = 1;", "cycles"));
        assert!(!has_ident("let walk_cycles = 1;", "cycles"));
        assert!(!has_ident("cyclesx", "cycles"));
    }

    #[test]
    fn block_extraction_matches_braces() {
        let src = "pub fn events(&self) { if x { y } z } fn other() {}";
        assert_eq!(
            block_after(src, "pub fn events").unwrap().trim(),
            "if x { y } z"
        );
    }

    #[test]
    fn without_block_blanks_only_the_target() {
        let src = "fn a() { keep } fn b() { drop_me } fn c() { keep2 }";
        let out = without_block(src, "fn b");
        assert!(out.contains("keep") && out.contains("keep2"));
        assert!(!out.contains("drop_me"));
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn self_field_refs_collects_reads() {
        let refs = self_field_refs("self.alpha + self.beta; other.gamma");
        assert!(refs.contains("alpha") && refs.contains("beta"));
        assert!(!refs.contains("gamma"));
    }

    #[test]
    fn reads_are_distinguished_from_writes() {
        assert!(reads_field("let x = c.cycles + 1;", "cycles"));
        assert!(!reads_field("self.cycles += 1;", "cycles"));
        assert!(!reads_field("self.cycles = 0;", "cycles"));
        assert!(reads_field("if self.cycles == 0 {}", "cycles"));
        assert!(!reads_field("let cycles = 1;", "cycles")); // not dotted
    }

    #[test]
    fn impl_headers_are_parsed() {
        let src =
            "impl Foo { } impl fmt::Display for Bar<'_> { } impl<T> CheckInvariants for Baz<T> { }";
        let blocks = impl_blocks(src);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].type_name, "Foo");
        assert_eq!(blocks[0].trait_name, None);
        assert_eq!(blocks[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(blocks[1].type_name, "Bar");
        assert_eq!(blocks[2].trait_name.as_deref(), Some("CheckInvariants"));
        assert_eq!(blocks[2].type_name, "Baz");
    }

    #[test]
    fn pub_fns_sees_multiline_signatures_and_visibility() {
        let body = "
            pub fn map(
                &mut self,
                va: u64,
            ) -> u64 { va }
            fn private(&mut self) {}
            pub(crate) fn crate_fn(&mut self) { x() }
            pub fn read_only(&self) -> u64 { 1 }
        ";
        let fns = pub_fns(body);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["map", "crate_fn", "read_only"]);
        assert!(fns[0].takes_mut_self());
        assert!(fns[1].takes_mut_self());
        assert!(!fns[2].takes_mut_self());
    }
}
