//! Rule 1 — counter coverage.
//!
//! Every PMU-event field of `atscale_mmu::Counters` must be (a) exported by
//! [`Counters::events`] so reports show it under its Intel event name,
//! (b) consumed by at least one formula — the Table VI walk-outcome
//! arithmetic, the Eq. 1 decomposition, a derived metric, or an invariant —
//! and (c) exercised by at least one test. Simulator ground-truth fields
//! (`truth_*`) are exempt from (a) but must instead feed the
//! counter-vs-ground-truth consistency checks.
//!
//! The scan is field-name based: a dotted read `x.cycles` anywhere in
//! non-test workspace code counts as consumption, while `x.cycles += 1` /
//! `x.cycles = 0` do not (bumping a counter is production, not use).
//!
//! The rule also covers the per-architecture counter schemas
//! (`atscale_mmu::ARCH_COUNTER_SCHEMAS`): every name an architecture
//! declares must be produced by that architecture's `extra_counters` impl,
//! and every name an impl produces must be declared — a schema entry and
//! its producer cannot drift apart silently.

use crate::source::{
    block_after, has_ident, non_test_region, quoted_strings, reads_field, self_field_refs,
    test_region, without_block,
};
use crate::{Audit, Workspace};

/// Path (workspace-relative suffix) of the counter file under audit.
pub const COUNTERS_PATH: &str = "crates/mmu/src/counters.rs";
/// Path (workspace-relative suffix) of the pluggable-architecture module
/// holding `ARCH_COUNTER_SCHEMAS` and the `extra_counters` impls.
pub const ARCH_PATH: &str = "crates/mmu/src/arch.rs";
const RULE: &str = "counter-coverage";

/// Runs the counter-coverage rule over the workspace.
pub fn audit_counter_coverage(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let Some(file) = ws.file(COUNTERS_PATH) else {
        audit.fail(
            COUNTERS_PATH,
            format!("{COUNTERS_PATH} not found in workspace"),
        );
        return audit;
    };
    let src = &file.stripped;

    let fields = counter_fields(src);
    if fields.is_empty() {
        audit.fail(
            COUNTERS_PATH,
            "could not parse any fields from `pub struct Counters`",
        );
        return audit;
    }

    check_events_export(&mut audit, src, &fields);
    check_truth_consistency(&mut audit, src, &fields);
    check_formula_consumption(&mut audit, ws, &fields);
    check_test_coverage(&mut audit, ws, &fields);
    check_arch_schema_production(&mut audit, ws);
    audit
}

/// Field names of `pub struct Counters`, in declaration order.
pub fn counter_fields(stripped: &str) -> Vec<String> {
    let Some(body) = block_after(stripped, "pub struct Counters") else {
        return Vec::new();
    };
    body.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("pub ")?;
            let (name, _ty) = rest.split_once(':')?;
            let name = name.trim();
            name.bytes()
                .all(|c| c == b'_' || c.is_ascii_alphanumeric())
                .then(|| name.to_string())
        })
        .collect()
}

/// (a) Every hardware-event field appears in `Counters::events`, and every
/// field `events` reads actually exists on the struct.
fn check_events_export(audit: &mut Audit, src: &str, fields: &[String]) {
    let Some(events_body) = block_after(src, "pub fn events") else {
        audit.fail(COUNTERS_PATH, "`Counters::events` not found");
        return;
    };
    let exported = self_field_refs(events_body);
    for field in fields.iter().filter(|f| !f.starts_with("truth_")) {
        audit.check();
        if !exported.contains(field) {
            audit.fail(
                COUNTERS_PATH,
                format!(
                    "counter field `{field}` is not exported by `Counters::events()` — \
                     every PMU event must be reportable under its Intel event name"
                ),
            );
        }
    }
    for read in &exported {
        audit.check();
        if !fields.iter().any(|f| f == read) {
            audit.fail(
                COUNTERS_PATH,
                format!("`Counters::events()` reads `{read}`, which is not a struct field"),
            );
        }
    }
}

/// The audit's own sources quote counter-field names in diagnostics and in
/// the doctored-source negative tests, so they are excluded from the
/// consumption and test corpora — mentioning a field is not wiring it.
fn is_audit_source(path: &str) -> bool {
    path.starts_with("crates/audit/")
}

/// Ground-truth fields must feed the counter-vs-truth consistency checks.
fn check_truth_consistency(audit: &mut Audit, src: &str, fields: &[String]) {
    let consistency: String = ["pub fn assert_consistent", "fn check_invariants"]
        .iter()
        .filter_map(|needle| block_after(src, needle))
        .collect::<Vec<_>>()
        .join("\n");
    for field in fields.iter().filter(|f| f.starts_with("truth_")) {
        audit.check();
        if !has_ident(&consistency, field) {
            audit.fail(
                COUNTERS_PATH,
                format!(
                    "ground-truth field `{field}` is not used by `assert_consistent` or \
                     `check_invariants` — truth fields exist to validate the counters"
                ),
            );
        }
    }
}

/// (b) Every field is read by at least one formula in non-test code.
///
/// The `events()` body is excluded — exporting a value is not consuming
/// it — so a freshly added field must gain a real formula, metric, or
/// invariant before this rule passes.
fn check_formula_consumption(audit: &mut Audit, ws: &Workspace, fields: &[String]) {
    let corpus: Vec<(String, String)> = ws
        .rust_sources()
        .filter(|f| !f.path.contains("/tests/") && !is_audit_source(&f.path))
        .map(|f| {
            let text = if f.path.ends_with(COUNTERS_PATH) {
                without_block(&f.stripped, "pub fn events")
            } else {
                f.stripped.clone()
            };
            (f.path.clone(), non_test_region(&text).to_string())
        })
        .collect();
    for field in fields {
        audit.check();
        if !corpus.iter().any(|(_, text)| reads_field(text, field)) {
            audit.fail(
                COUNTERS_PATH,
                format!(
                    "counter field `{field}` is never consumed by a formula — no non-test \
                     code reads it (walk outcomes, decomposition, metric, or invariant)"
                ),
            );
        }
    }
}

/// (c) Every field appears in at least one test (a `#[cfg(test)]` module
/// or an integration test under `tests/`).
fn check_test_coverage(audit: &mut Audit, ws: &Workspace, fields: &[String]) {
    let corpus: Vec<String> = ws
        .rust_sources()
        .filter(|f| !is_audit_source(&f.path))
        .map(|f| {
            if f.path.contains("/tests/") {
                f.stripped.clone()
            } else {
                test_region(&f.stripped).to_string()
            }
        })
        .filter(|t| !t.is_empty())
        .collect();
    for field in fields {
        audit.check();
        if !corpus.iter().any(|text| has_ident(text, field)) {
            audit.fail(
                COUNTERS_PATH,
                format!("counter field `{field}` is never exercised by a test"),
            );
        }
    }
}

/// The `(arch_name, counter_names)` entries of `ARCH_COUNTER_SCHEMAS`,
/// parsed out of the architecture module's stripped source.
///
/// The const's rustfmt-canonical shape is `("arch", &["a.b", "c.d"]), ...`
/// inside one bracketed initializer: parsing anchors on the `= &[`
/// assignment (the type annotation also contains `&[`, the initializer is
/// the only `= &[`), then attributes each inner `&[...]` slice's quoted
/// strings to the quoted arch name immediately preceding it.
pub fn arch_counter_schemas(stripped: &str) -> Vec<(String, Vec<String>)> {
    let Some(at) = stripped.find("pub const ARCH_COUNTER_SCHEMAS") else {
        return Vec::new();
    };
    let body = &stripped[at..];
    let body = body.find("];").map_or(body, |end| &body[..end]);
    let Some(assign) = body.find("= &[") else {
        return Vec::new();
    };
    let mut rest = &body[assign + 4..];
    let mut out = Vec::new();
    while let Some(open) = rest.find("&[") {
        let Some(arch) = quoted_strings(&rest[..open]).pop() else {
            break;
        };
        let inner = &rest[open + 2..];
        let close = inner.find(']').unwrap_or(inner.len());
        out.push((arch, quoted_strings(&inner[..close])));
        rest = &inner[close..];
    }
    out
}

/// `(ArchKind variant, names produced by `extra_counters`)` for every
/// `impl TranslationArchitecture for …` block in the architecture module.
/// Impls relying on the trait's default (produce nothing) report an empty
/// list.
fn arch_impls(src: &str) -> Vec<(String, Vec<String>)> {
    const NEEDLE: &str = "impl TranslationArchitecture for";
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(pos) = src[at..].find(NEEDLE) {
        let start = at + pos;
        at = start + NEEDLE.len();
        let Some(body) = block_after(&src[start..], NEEDLE) else {
            continue;
        };
        // The impl's identity is its `const KIND: ArchKind = ArchKind::X`,
        // always the block's first `ArchKind::` mention.
        let Some(kind_at) = body.find("ArchKind::") else {
            continue;
        };
        let variant = body[kind_at + "ArchKind::".len()..]
            .chars()
            .take_while(char::is_ascii_alphanumeric)
            .collect::<String>();
        let produced = block_after(body, "fn extra_counters")
            .map(quoted_strings)
            .unwrap_or_default();
        out.push((variant, produced));
    }
    out
}

/// `kebab-case` schema key → `PascalCase` `ArchKind` variant name
/// (`dram-cache` → `DramCache`).
fn pascal_case(kebab: &str) -> String {
    kebab
        .split(['-', '_'])
        .map(|word| {
            let mut chars = word.chars();
            match chars.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Per-architecture schema production: each `ARCH_COUNTER_SCHEMAS` name is
/// produced by the matching `extra_counters` impl, and each produced name
/// is declared in the schema — the static twin of the runtime
/// `arch_events_match_declared_schemas` property.
fn check_arch_schema_production(audit: &mut Audit, ws: &Workspace) {
    let Some(file) = ws.file(ARCH_PATH) else {
        audit.fail(ARCH_PATH, format!("{ARCH_PATH} not found in workspace"));
        return;
    };
    let src = &file.stripped;
    let schemas = arch_counter_schemas(src);
    if schemas.is_empty() {
        audit.fail(
            ARCH_PATH,
            "could not parse any entries from `ARCH_COUNTER_SCHEMAS`",
        );
        return;
    }
    let impls = arch_impls(src);
    for (arch, names) in &schemas {
        let variant = pascal_case(arch);
        let produced = impls
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|(_, p)| p.as_slice());
        for name in names {
            audit.check();
            if !produced.is_some_and(|p| p.iter().any(|n| n == name)) {
                audit.fail(
                    ARCH_PATH,
                    format!(
                        "architecture counter `{name}` is declared in `ARCH_COUNTER_SCHEMAS` \
                         for `{arch}` but never produced by `ArchKind::{variant}`'s \
                         `extra_counters` impl"
                    ),
                );
            }
        }
        for name in produced.unwrap_or_default() {
            audit.check();
            if !names.contains(name) {
                audit.fail(
                    ARCH_PATH,
                    format!(
                        "`extra_counters` for `{arch}` produces `{name}`, which is not in its \
                         `ARCH_COUNTER_SCHEMAS` entry — declare it or drop it"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    /// A minimal, fully covered counter file.
    const GOOD: &str = r#"
        pub struct Counters {
            pub cycles: u64,
            pub truth_retired_walks: u64,
        }
        impl Counters {
            pub fn cpi(&self) -> f64 { self.cycles as f64 }
            pub fn events(&self) -> Vec<(&'static str, u64)> {
                vec![("cpu_clk_unhalted.thread", self.cycles)]
            }
            pub fn assert_consistent(&self) {
                assert_eq!(self.truth_retired_walks, 0);
            }
        }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                let c = Counters { cycles: 1, truth_retired_walks: 0 };
                assert!(c.cycles > 0);
                assert_eq!(c.truth_retired_walks, 0);
            }
        }
    "#;

    /// A minimal, fully consistent architecture module: every schema name
    /// is produced by the matching impl, and nothing extra is produced.
    const GOOD_ARCH: &str = r#"
        pub const ARCH_COUNTER_SCHEMAS: &[(&str, &[&str])] = &[
            ("baseline", &[]),
            ("victima", &["victima.hits"]),
        ];
        impl TranslationArchitecture for VictimaArch {
            const KIND: ArchKind = ArchKind::Victima;
            fn extra_counters(&self) -> Vec<(&'static str, u64)> {
                vec![("victima.hits", self.hits)]
            }
        }
    "#;

    fn covered_ws(counters: &str) -> Workspace {
        workspace_from(&[(COUNTERS_PATH, counters), (ARCH_PATH, GOOD_ARCH)])
    }

    #[test]
    fn fully_covered_counters_pass() {
        let audit = audit_counter_coverage(&covered_ws(GOOD));
        assert_eq!(audit.violations, Vec::new());
        assert!(audit.checked > 0);
    }

    #[test]
    fn field_missing_from_events_is_flagged() {
        let doctored = GOOD.replace(
            "pub cycles: u64,",
            "pub cycles: u64,\n            pub bogus_event: u64,",
        );
        let audit = audit_counter_coverage(&covered_ws(&doctored));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`bogus_event`") && v.message.contains("events()")));
    }

    #[test]
    fn field_with_no_formula_is_flagged() {
        // Exported and tested, but nothing ever *reads* it outside events().
        let doctored = GOOD
            .replace(
                "pub cycles: u64,",
                "pub cycles: u64,\n            pub bogus_event: u64,",
            )
            .replace(
                "vec![(\"cpu_clk_unhalted.thread\", self.cycles)]",
                "vec![(\"cpu_clk_unhalted.thread\", self.cycles), (\"bogus.event\", self.bogus_event)]",
            )
            .replace("assert!(c.cycles > 0);", "assert!(c.cycles > 0); let _ = c.bogus_event;");
        let audit = audit_counter_coverage(&covered_ws(&doctored));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`bogus_event`") && v.message.contains("formula")));
        // The same dotted read in a *test* does not satisfy the formula rule,
        // but does satisfy test coverage: only the formula violation remains.
        assert_eq!(audit.violations.len(), 1);
    }

    #[test]
    fn counter_bumps_do_not_count_as_consumption() {
        let doctored = GOOD
            .replace(
                "pub cycles: u64,",
                "pub cycles: u64,\n            pub bogus_event: u64,",
            )
            .replace(
                "vec![(\"cpu_clk_unhalted.thread\", self.cycles)]",
                "vec![(\"cpu_clk_unhalted.thread\", self.cycles), (\"bogus.event\", self.bogus_event)]",
            );
        let engine = "fn tick(c: &mut Counters) { c.bogus_event += 1; }";
        let ws = workspace_from(&[
            (COUNTERS_PATH, &doctored),
            (ARCH_PATH, GOOD_ARCH),
            ("crates/mmu/src/engine.rs", engine),
        ]);
        let audit = audit_counter_coverage(&ws);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`bogus_event`") && v.message.contains("formula")));
    }

    #[test]
    fn untested_field_is_flagged() {
        let doctored = GOOD
            .replace(
                "pub cycles: u64,",
                "pub cycles: u64,\n            pub bogus_event: u64,",
            )
            .replace(
                "vec![(\"cpu_clk_unhalted.thread\", self.cycles)]",
                "vec![(\"cpu_clk_unhalted.thread\", self.cycles), (\"bogus.event\", self.bogus_event)]",
            )
            .replace("pub fn cpi(&self) -> f64 { self.cycles as f64 }",
                     "pub fn cpi(&self) -> f64 { (self.cycles + self.bogus_event) as f64 }");
        let audit = audit_counter_coverage(&covered_ws(&doctored));
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0]
            .message
            .contains("never exercised by a test"));
    }

    #[test]
    fn truth_field_must_feed_consistency_checks() {
        let doctored = GOOD.replace(
            "assert_eq!(self.truth_retired_walks, 0);",
            "let _ = self.cycles;",
        );
        // Keep a non-test read elsewhere so only the consistency rule fires.
        let other = "fn f(c: &Counters) -> u64 { c.truth_retired_walks }";
        let ws = workspace_from(&[
            (COUNTERS_PATH, &doctored),
            (ARCH_PATH, GOOD_ARCH),
            ("crates/mmu/src/other.rs", other),
        ]);
        let audit = audit_counter_coverage(&ws);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("truth_retired_walks") && v.message.contains("validate")));
    }

    #[test]
    fn stale_events_entry_is_flagged() {
        let doctored = GOOD.replace(
            "vec![(\"cpu_clk_unhalted.thread\", self.cycles)]",
            "vec![(\"cpu_clk_unhalted.thread\", self.cycles), (\"gone.event\", self.removed_field)]",
        );
        let audit = audit_counter_coverage(&covered_ws(&doctored));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`removed_field`")
                && v.message.contains("not a struct field")));
    }

    #[test]
    fn unproduced_schema_counter_is_flagged() {
        // Declare a second victima counter the impl never produces.
        let doctored = GOOD_ARCH.replace(
            "&[\"victima.hits\"]",
            "&[\"victima.hits\", \"victima.fills\"]",
        );
        let ws = workspace_from(&[(COUNTERS_PATH, GOOD), (ARCH_PATH, &doctored)]);
        let audit = audit_counter_coverage(&ws);
        assert!(
            audit
                .violations
                .iter()
                .any(|v| v.message.contains("`victima.fills`")
                    && v.message.contains("never produced"))
        );
    }

    #[test]
    fn undeclared_extra_counter_is_flagged() {
        // Produce a counter the schema never declared.
        let doctored = GOOD_ARCH.replace(
            "vec![(\"victima.hits\", self.hits)]",
            "vec![(\"victima.hits\", self.hits), (\"victima.bogus\", 0)]",
        );
        let ws = workspace_from(&[(COUNTERS_PATH, GOOD), (ARCH_PATH, &doctored)]);
        let audit = audit_counter_coverage(&ws);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("`victima.bogus`")
                && v.message
                    .contains("not in its `ARCH_COUNTER_SCHEMAS` entry")));
    }

    #[test]
    fn missing_arch_module_fails_loudly() {
        let audit = audit_counter_coverage(&workspace_from(&[(COUNTERS_PATH, GOOD)]));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.file == ARCH_PATH && v.message.contains("not found in workspace")));
    }

    #[test]
    fn unparseable_schema_const_fails_loudly() {
        let ws = workspace_from(&[(COUNTERS_PATH, GOOD), (ARCH_PATH, "fn nothing() {}")]);
        let audit = audit_counter_coverage(&ws);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("could not parse any entries")));
    }
}
