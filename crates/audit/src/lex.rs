//! A dependency-free Rust lexer.
//!
//! PR 1's audit worked on comment-stripped text with a brace matcher —
//! precise enough for shapes rustfmt keeps canonical, but blind to the
//! difference between code and the *contents* of string literals, and
//! unable to support real program analysis. This lexer is the foundation
//! the call-graph and the determinism/lock/panic passes build on: it
//! tokenizes Rust source into identifiers, literals, comments, and
//! punctuation with exact byte spans and line numbers, understanding
//! escapes, raw strings (`r#"…"#`), byte/char literals, lifetimes, and
//! nested block comments.
//!
//! It is deliberately *not* a full grammar: no precedence, no types, no
//! name resolution. Every consumer documents what it infers from the token
//! stream and what it cannot.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `self`, `Mutex`, …).
    Ident,
    /// A lifetime such as `'a` (including the tick).
    Lifetime,
    /// A `"…"` or `b"…"` string literal, quotes included.
    Str,
    /// A raw string literal `r"…"` / `r#"…"#` / `br#"…"#`.
    RawStr,
    /// A char or byte literal `'x'` / `b'\n'`.
    Char,
    /// A numeric literal (integer or float, any radix, with suffix).
    Num,
    /// A `//` line comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* … */` block comment, nesting honoured.
    BlockComment,
    /// A single punctuation byte (`{`, `.`, `!`, …). Multi-byte operators
    /// arrive as consecutive `Punct` tokens; consumers that care join them.
    Punct,
}

/// One token: kind plus its byte span and 1-based starting line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for the punctuation byte `c`.
    pub fn is_punct(&self, src: &str, c: u8) -> bool {
        self.kind == TokenKind::Punct && src.as_bytes()[self.start] == c
    }

    /// True for the exact identifier `ident`.
    pub fn is_ident(&self, src: &str, ident: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == ident
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// Tokenizes `src`. Whitespace is skipped; everything else — including
/// comments — becomes a token, so consumers choose whether to see them.
/// The lexer never fails: malformed input degrades to `Punct` bytes.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        let kind = match c {
            b' ' | b'\t' | b'\r' => {
                i += 1;
                continue;
            }
            b'\n' => {
                line += 1;
                i += 1;
                continue;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = scan_string(b, i, &mut line);
                TokenKind::Str
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                i = scan_raw_string(b, i, &mut line);
                TokenKind::RawStr
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                i = scan_string(b, i + 1, &mut line);
                TokenKind::Str
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                i = scan_char(b, i + 1);
                TokenKind::Char
            }
            b'\'' => {
                // A tick opens either a char literal or a lifetime; a
                // closing quote within a couple of bytes (or an escape)
                // means char, otherwise lifetime.
                if b.get(i + 1) == Some(&b'\\')
                    || (b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\''))
                {
                    i = scan_char(b, i);
                    TokenKind::Char
                } else {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    TokenKind::Lifetime
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len()
                    && (is_ident_continue(b[i])
                        || b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit))
                {
                    i += 1;
                }
                TokenKind::Num
            }
            c if is_ident_start(c) => {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                TokenKind::Ident
            }
            _ => {
                i += 1;
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    tokens
}

/// True when position `i` (at `r` or `b`) begins a raw string such as
/// `r"…"`, `r#"…"#`, or `br#"…"#`.
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Scans past `"…"` starting at the opening quote; returns one past the
/// closing quote. Tracks newlines (strings may span lines).
fn scan_string(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans past a raw string starting at its `r`/`b` prefix.
fn scan_raw_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        } else if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Scans past `'…'` starting at the opening tick.
fn scan_char(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `src` with comment bytes blanked to spaces (newlines kept): byte
/// offsets, line structure, and literal contents all survive.
pub fn blank_comments(src: &str) -> String {
    blank_where(src, Token::is_comment)
}

/// `src` with comments blanked *and* the contents of string/char literals
/// blanked (delimiters kept) — the view for scanning *code* patterns,
/// where `"format!"` inside a message must not look like a macro call.
pub fn blank_comments_and_literals(src: &str) -> String {
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    for t in lex(src) {
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                blank_span(&mut out, t.start, t.end);
            }
            // Keep one delimiter byte at each end so brace/paren
            // matchers still see a literal, not stray punctuation.
            TokenKind::Str | TokenKind::RawStr | TokenKind::Char if t.end - t.start > 2 => {
                blank_span(&mut out, t.start + 1, t.end - 1);
            }
            _ => {}
        }
    }
    String::from_utf8(out).expect("blanking to ASCII spaces preserves UTF-8")
}

fn blank_where(src: &str, blank: impl Fn(&Token) -> bool) -> String {
    let mut out: Vec<u8> = src.as_bytes().to_vec();
    for t in lex(src) {
        if blank(&t) {
            blank_span(&mut out, t.start, t.end);
        }
    }
    String::from_utf8(out).expect("blanking to ASCII spaces preserves UTF-8")
}

fn blank_span(out: &mut [u8], start: usize, end: usize) {
    for c in &mut out[start..end] {
        if *c != b'\n' {
            *c = b' ';
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let src = "let x2 = 0xff + 1.5e3;";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Num,
                TokenKind::Punct,
                TokenKind::Num,
                TokenKind::Punct,
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_raw_strings() {
        let src = r####"let a = "he said \"//\""; let b = r#"raw "x" //"#;"####;
        let toks = lex(src);
        let strs: Vec<(TokenKind, &str)> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::RawStr))
            .map(|t| (t.kind, t.text(src)))
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].0, TokenKind::Str);
        assert_eq!(strs[1].0, TokenKind::RawStr);
        assert!(strs[1].1.starts_with("r#\""));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* x /* y */ z */ b";
        let toks = lex(src);
        assert_eq!(
            toks.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![TokenKind::Ident, TokenKind::BlockComment, TokenKind::Ident]
        );
        assert_eq!(toks[1].text(src), "/* x /* y */ z */");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = 'x'; fn f<'a>(v: &'a str) { let n = '\\n'; }";
        let toks = lex(src);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text(src))
            .collect();
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"bytes\"; let b = b'x'; let c = br#\"raw\"#;";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text(src) == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text(src) == "b'x'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::RawStr && t.text(src) == "br#\"raw\"#"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident(src, "a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident(src, "b")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 6, "newlines inside strings and comments counted");
    }

    #[test]
    fn blank_comments_preserves_offsets_and_strings() {
        let src = "let a = \"// not a comment\"; // real\nlet b = 1; /* gone */ let c = 2;";
        let s = blank_comments(src);
        assert_eq!(s.len(), src.len());
        assert!(s.contains("// not a comment"));
        assert!(!s.contains("real"));
        assert!(!s.contains("gone"));
        assert!(s.contains("let c = 2;"));
    }

    #[test]
    fn blank_literals_hides_code_lookalikes_in_strings() {
        let src = "let m = \"never format! here\"; let v = format!(\"x\");";
        let s = blank_comments_and_literals(src);
        assert_eq!(s.len(), src.len());
        // The call survives; the mention inside the string does not.
        assert_eq!(s.matches("format!").count(), 1);
        assert!(s.contains("format!(\" \")") || s.contains("format!(\"  \")"));
    }

    #[test]
    fn lexer_never_panics_on_malformed_input() {
        for src in ["\"unterminated", "r#\"open", "'", "/* open", "b'", "\\"] {
            let _ = lex(src);
            let _ = blank_comments(src);
            let _ = blank_comments_and_literals(src);
        }
    }
}
