//! # atscale-audit — workspace static-analysis pass
//!
//! A self-contained consistency checker for the atscale workspace, run in
//! CI as `cargo run -p atscale-audit`. It enforces twelve rules that rustc
//! and clippy cannot express — eight text-scan rules plus four passes built
//! on the `atscale-analyze` lexer/call-graph engine (see [`lex`], [`model`],
//! [`graph`], [`passes`] and DESIGN.md §14):
//!
//! 1. **Counter coverage** ([`audit_counter_coverage`]) — every PMU-event
//!    field of `atscale_mmu::Counters` is exported by `Counters::events`,
//!    consumed by at least one formula (Table VI walk outcomes, the Eq. 1
//!    decomposition, a metric, or an invariant), and exercised by at least
//!    one test, and every name an architecture declares in
//!    `ARCH_COUNTER_SCHEMAS` is produced by that architecture's
//!    `extra_counters` impl (and vice versa). Adding a counter without
//!    wiring it through fails the build.
//! 2. **Invariant annotations** ([`audit_invariant_annotations`]) — every
//!    public mutator of counter/TLB/cache state in `atscale-vm`,
//!    `atscale-cache`, and `atscale-mmu` is covered by the debug-build
//!    invariant layer (`CheckInvariants` impl, inline `invariant!` checks,
//!    or the documented indirect-coverage allowlist), and the layer stays
//!    wired into the MMU engine's hot paths.
//! 3. **Lint wiring** ([`audit_lint_wiring`]) — the `[workspace.lints]`
//!    policy exists, every member crate opts in, and every crate root
//!    carries `#![forbid(unsafe_code)]`. One documented FFI exception:
//!    `crates/native` (the raw `perf_event_open` harness) must carry
//!    `#![deny(unsafe_code)]` at its root instead, and any
//!    `allow(unsafe_code)` / `unsafe` token inside that crate may appear
//!    only in its syscall shim module `src/sys.rs`.
//! 4. **Telemetry coverage** ([`audit_telemetry_coverage`]) — the interval
//!    sampler keeps every counter field representable in its sample stream
//!    (PMU events via `Counters::events()`, ground-truth fields via
//!    explicit pushes, rates via the `RATE_NAMES` const) and the MMU
//!    engine keeps the sampler's entry points wired into its hot paths.
//! 5. **Protocol round-trips** ([`audit_protocol_roundtrip`]) — every
//!    `Request`/`Reply` frame variant of the serving protocol
//!    (`crates/serve`) appears in the round-trip test suite, so a frame
//!    that serializes but cannot deserialize (a cross-process protocol
//!    break invisible to type checking) fails CI.
//! 6. **Hot-path allocation freedom** ([`audit_hot_path_allocation`]) — the
//!    per-access modules (MMU engine, TLB arrays, walker, set-associative
//!    cache) contain no allocating or formatting calls outside `#[cold]`
//!    functions, constructors, and panic messages, so the throughput the
//!    perf gate defends cannot be eroded by a stray `format!`.
//! 7. **Fault-site coverage** ([`audit_fault_site_coverage`]) — every
//!    `atscale_faults::FaultSite` variant is wired into an injection point
//!    in the instrumented library crates AND exercised by the chaos test
//!    suite, so the deterministic fault layer can neither grow dead sites
//!    nor ship recovery paths no chaos scenario arms.
//! 8. **Native event coverage** ([`audit_native_event_coverage`]) — every
//!    Table VI counter name exported by `Counters::events()` appears in
//!    the native harness's `MAPPED` counter group or its explicit
//!    `UNMAPPED` table (with a reason), never both, and `UNMAPPED` holds
//!    no stale names — a simulator counter cannot be added without a
//!    recorded native-mapping decision. Architecture schema counters get
//!    the same treatment against the `ARCH_UNMAPPED` table.
//! 9. **Determinism taint** ([`passes::determinism_taint`]) — no
//!    wall-clock, thread-identity, environment, entropy, or
//!    `HashMap`/`HashSet` iteration in any function that can reach
//!    `RunRecord` serialization (`RunStore::save`/`key`) or the telemetry
//!    JSONL stream (`TelemetrySink::sample`).
//! 10. **Lock discipline** ([`passes::lock_discipline`]) — the
//!     lock-acquisition order graph must be acyclic, and locks held across
//!     blocking I/O are flagged.
//! 11. **Panic surface** ([`passes::panic_surface`]) — panic-capable sites
//!     reachable from the server worker/connection threads must be
//!     contained by the scheduler's `catch_unwind` boundary.
//! 12. **Exemption audit** ([`passes::allow_exemptions`]) — every
//!     `// analyze:allow(tag): why` carries a known tag and a
//!     justification, and determinism allows match `ANALYZE_ALLOWLIST.md`
//!     bidirectionally.
//!
//! The eight text-scan rules work on comment-stripped source with a small
//! brace matcher (see [`source`]) rather than a full parser: the offline
//! build vendors no `syn`, and the shapes under audit — struct fields,
//! impl headers, `pub fn` signatures — are kept canonical by rustfmt. The
//! call-graph passes work on the lexed token stream and a name-resolved
//! call graph; resolution over-approximates (the safe direction for taint
//! and panic analysis), with the precision filters documented in
//! [`graph`]. Every rule is pinned by the golden fixture corpus under
//! `tests/fixtures/` — exact expected-findings snapshots, positive and
//! negative per rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod faults;
pub mod graph;
pub mod hotpath;
pub mod invariants;
pub mod lex;
pub mod lints;
pub mod model;
pub mod native;
pub mod passes;
pub mod protocol;
pub mod report;
pub mod source;
pub mod telemetry;

pub use counters::audit_counter_coverage;
pub use faults::audit_fault_site_coverage;
pub use hotpath::audit_hot_path_allocation;
pub use invariants::audit_invariant_annotations;
pub use lints::audit_lint_wiring;
pub use native::audit_native_event_coverage;
pub use protocol::audit_protocol_roundtrip;
pub use telemetry::audit_telemetry_coverage;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One audited source file, held in memory with a pre-stripped copy.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw file contents.
    pub text: String,
    /// Comment-stripped contents for `.rs` files (identical to `text`
    /// otherwise).
    pub stripped: String,
    /// Code-only view for `.rs` files: comments *and* the contents of
    /// string/char literals blanked, so pattern scans cannot be tripped by
    /// text inside messages (identical to `text` otherwise).
    pub code: String,
}

impl SourceFile {
    /// Builds a file entry, stripping comments when the path is Rust source.
    pub fn new(path: String, text: String) -> Self {
        let (stripped, code) = if path.ends_with(".rs") {
            (
                source::strip_comments(&text),
                source::strip_comments_and_literals(&text),
            )
        } else {
            (text.clone(), text.clone())
        };
        SourceFile {
            path,
            text,
            stripped,
            code,
        }
    }
}

/// The loaded workspace: root manifest plus everything under `crates/`.
#[derive(Debug)]
pub struct Workspace {
    /// Filesystem root the files were loaded from.
    pub root: PathBuf,
    /// All loaded files.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads the root `Cargo.toml` and every `.rs` / `Cargo.toml` under
    /// `root/crates/`, skipping build output.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let root_manifest = root.join("Cargo.toml");
        files.push(SourceFile::new(
            "Cargo.toml".to_string(),
            std::fs::read_to_string(&root_manifest)?,
        ));
        // The determinism-exemption allowlist lives at the workspace root;
        // absent is fine (the exemption audit then requires zero allows).
        if let Ok(text) = std::fs::read_to_string(root.join("ANALYZE_ALLOWLIST.md")) {
            files.push(SourceFile::new("ANALYZE_ALLOWLIST.md".to_string(), text));
        }
        collect(root, &root.join("crates"), &mut files)?;
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The file whose workspace-relative path ends with `suffix`.
    pub fn file(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| {
            f.path == suffix || f.path.ends_with(&format!("/{suffix}")) || f.path.ends_with(suffix)
        })
    }

    /// All Rust sources.
    pub fn rust_sources(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().filter(|f| f.path.ends_with(".rs"))
    }

    /// Member-crate manifests (`crates/*/Cargo.toml`).
    pub fn crate_manifests(&self) -> impl Iterator<Item = &SourceFile> {
        self.files
            .iter()
            .filter(|f| f.path.starts_with("crates/") && f.path.ends_with("/Cargo.toml"))
    }

    /// Each member crate's root source file: `src/lib.rs`, or `src/main.rs`
    /// for binary-only crates.
    pub fn crate_roots(&self) -> Vec<&SourceFile> {
        self.crate_manifests()
            .filter_map(|m| {
                let dir = m.path.trim_end_matches("/Cargo.toml");
                self.file(&format!("{dir}/src/lib.rs"))
                    .or_else(|| self.file(&format!("{dir}/src/main.rs")))
            })
            .collect()
    }
}

/// Recursively collects `.rs` and `Cargo.toml` files under `dir`.
fn collect(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds the golden corpus for the analysis passes —
            // deliberately-violating sources that must not be audited as
            // workspace code.
            if name != "target" && name != "fixtures" && !name.starts_with('.') {
                collect(root, &path, files)?;
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::new(rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired (e.g. `counter-coverage`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.file, self.message)
    }
}

/// The outcome of one rule: how many individual checks ran and which failed.
#[derive(Debug)]
pub struct Audit {
    /// The rule's name.
    pub rule: &'static str,
    /// Number of individual checks executed.
    pub checked: usize,
    /// Checks that failed.
    pub violations: Vec<Violation>,
}

impl Audit {
    /// Starts an empty tally for `rule`.
    pub fn new(rule: &'static str) -> Self {
        Audit {
            rule,
            checked: 0,
            violations: Vec::new(),
        }
    }

    /// Records one executed check.
    pub fn check(&mut self) {
        self.checked += 1;
    }

    /// Records a failed check.
    pub fn fail(&mut self, file: impl Into<String>, message: impl Into<String>) {
        self.violations.push(Violation {
            rule: self.rule,
            file: file.into(),
            message: message.into(),
        });
    }
}

/// The outcome of a full analysis run: per-rule audits plus the report
/// data behind `analysis_report.json`.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// Per-rule outcomes, legacy rules first, then the call-graph passes.
    pub audits: Vec<Audit>,
    /// Machine-readable report data.
    pub report: report::Report,
}

/// Runs every rule — the eight text-scan rules plus the four call-graph
/// passes — and returns the audits together with the report data.
pub fn run_full(ws: &Workspace) -> AnalysisOutcome {
    let analysis = graph::Analysis::build(ws);
    let (det_audit, determinism) = passes::determinism_taint(&analysis);
    let (lock_audit, locks) = passes::lock_discipline(&analysis);
    let (panic_audit, panics) = passes::panic_surface(&analysis);
    let allow_audit = passes::allow_exemptions(ws, &analysis);
    let audits = vec![
        audit_counter_coverage(ws),
        audit_invariant_annotations(ws),
        audit_lint_wiring(ws),
        audit_telemetry_coverage(ws),
        audit_protocol_roundtrip(ws),
        audit_hot_path_allocation(ws),
        audit_fault_site_coverage(ws),
        audit_native_event_coverage(ws),
        det_audit,
        lock_audit,
        panic_audit,
        allow_audit,
    ];
    AnalysisOutcome {
        audits,
        report: report::Report {
            determinism,
            locks,
            panics,
        },
    }
}

/// Runs every rule and returns the per-rule outcomes.
pub fn run_all(ws: &Workspace) -> Vec<Audit> {
    run_full(ws).audits
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::{SourceFile, Workspace};
    use std::path::PathBuf;

    /// Builds an in-memory workspace from `(path, contents)` pairs — the
    /// doctored-source harness the negative tests feed.
    pub fn workspace_from(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("<memory>"),
            files: files
                .iter()
                .map(|(p, t)| SourceFile::new((*p).to_string(), (*t).to_string()))
                .collect(),
        }
    }
}
