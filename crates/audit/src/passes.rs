//! The three call-graph analysis passes and the exemption audit.
//!
//! All four run on the [`crate::graph::Analysis`] built from the whole
//! workspace:
//!
//! * **determinism-taint** ([`determinism_taint`]) — no wall-clock,
//!   thread-identity, environment, entropy, or `HashMap`/`HashSet`
//!   iteration on any call path that reaches RunRecord serialization
//!   (`RunStore::save`/`RunStore::key`) or the deterministic telemetry
//!   sample stream (`TelemetrySink::sample`). Escape hatch:
//!   `// analyze:allow(determinism): why`, audited against the checked-in
//!   allowlist by [`allow_exemptions`].
//! * **lock-discipline** ([`lock_discipline`]) — builds the
//!   lock-acquisition order graph, fails on cycles, and flags locks held
//!   across blocking I/O (socket/file writes, reads, sleeps), with
//!   `// analyze:allow(lock-io): why` for the deliberate cases.
//! * **panic-surface** ([`panic_surface`]) — catalogues `unwrap`/`expect`/
//!   indexing/panic-macro sites reachable from the server worker threads
//!   and requires each to be contained by the scheduler's `catch_unwind`
//!   boundary or carry `// analyze:allow(panic): why`.
//!
//! Each pass documents its approximations inline; the call graph is
//! name-resolved (see [`crate::graph`]), so reachability over-approximates
//! — the safe direction for taint and panic analysis, paid for with the
//! occasional annotated false positive.

use crate::graph::{Analysis, NodeId};
use crate::lex::TokenKind;
use crate::model::{AllowSite, CallKind, CallSite, FileModel, FnItem, LockSite};
use crate::{Audit, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// The functions whose output must be byte-for-byte deterministic: the
/// RunRecord serialization pair and the telemetry sample stream. Spans,
/// progress, and histogram events deliberately carry wall-clock and are
/// *not* sinks.
pub const DETERMINISM_SINKS: [&str; 3] =
    ["RunStore::save", "RunStore::key", "TelemetrySink::sample"];

/// Qualified calls whose results are nondeterministic: `(prefix, name,
/// what it leaks)`.
const NONDET_QUALIFIED: [(&str, &str, &str); 9] = [
    ("Instant", "now", "wall-clock read"),
    ("SystemTime", "now", "wall-clock read"),
    ("thread", "current", "thread identity"),
    ("env", "var", "environment read"),
    ("env", "vars", "environment read"),
    ("env", "var_os", "environment read"),
    ("env", "temp_dir", "environment read"),
    ("process", "id", "process identity"),
    ("thread", "available_parallelism", "host parallelism"),
];

/// Call names that are nondeterministic regardless of qualification.
const NONDET_ANY: [(&str, &str); 2] = [
    ("available_parallelism", "host parallelism"),
    ("from_entropy", "OS entropy"),
];

/// Methods that iterate a collection in storage order — nondeterministic
/// when the receiver is a `HashMap`/`HashSet`.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Method calls that perform blocking I/O or sleeps.
const BLOCKING_METHODS: [&str; 13] = [
    "write_all",
    "write_fmt",
    "flush",
    "read_line",
    "read_exact",
    "read_until",
    "read_to_end",
    "read_to_string",
    "accept",
    "connect",
    "recv",
    "recv_timeout",
    "sleep",
];

/// Macros that write to an `io::Write` target.
const BLOCKING_MACROS: [&str; 2] = ["write", "writeln"];

/// Panic-raising macros catalogued by the panic-surface pass
/// (`debug_assert*` is excluded: compiled out of release servers).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Entry points of the serving tier's worker, connection, and reactor
/// threads — the roots of the panic-surface pass.
pub const PANIC_ROOTS: [&str; 10] = [
    "Scheduler::worker_loop",
    "serve_connection",
    "accept_tcp",
    "accept_unix",
    "spawn_tcp_conn",
    "spawn_unix_conn",
    "ConnWriter::send",
    // Epoll-tier roots: the acceptor thread, each reactor shard's event
    // loop, and the worker-side reply enqueue into a shard's outbufs.
    "accept_epoll",
    "run_shard",
    "ConnSink::send",
];

/// One recorded `analyze:allow` exemption, for the report and the
/// allowlist audit.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Declaring file.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The tag (`determinism`, `lock-io`, `panic`).
    pub tag: String,
    /// The justification text (possibly empty — that is itself audited).
    pub justification: String,
}

/// Report data from the determinism pass.
#[derive(Debug)]
pub struct DeterminismReport {
    /// Sink functions found in this workspace.
    pub sinks: Vec<String>,
    /// Qualified names of every non-test function on a path to a sink.
    pub tainted: Vec<String>,
    /// Every `analyze:allow` site in the tree, all tags.
    pub allows: Vec<AllowRecord>,
}

/// One edge of the lock-acquisition order graph: `from` was held when
/// `to` was acquired (possibly via a callee).
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The already-held lock.
    pub from: String,
    /// The lock acquired while holding `from`.
    pub to: String,
    /// File of the acquiring site.
    pub file: String,
    /// Line of the acquiring site.
    pub line: u32,
}

/// Report data from the lock-discipline pass.
#[derive(Debug)]
pub struct LockReport {
    /// Every declared lock (`Type.field`, `static NAME`, `fn.local`).
    pub declared: Vec<String>,
    /// The acquisition-order edges.
    pub edges: Vec<LockEdge>,
    /// Lock-id cycles found (each a closed path); must be empty.
    pub cycles: Vec<Vec<String>>,
}

/// One panic-capable site reachable from a worker-thread root.
#[derive(Debug, Clone)]
pub struct PanicSiteRecord {
    /// Qualified name of the containing function.
    pub function: String,
    /// Declaring file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// `unwrap`, `expect`, `index`, or the macro name.
    pub kind: String,
    /// Covered by an `analyze:allow(panic)` justification.
    pub allowed: bool,
}

/// Report data from the panic-surface pass.
#[derive(Debug)]
pub struct PanicReport {
    /// Root functions found in this workspace.
    pub roots: Vec<String>,
    /// Reachable, *uncontained* sites (allowed or violating).
    pub sites: Vec<PanicSiteRecord>,
    /// Number of reachable sites contained by `catch_unwind`.
    pub contained: usize,
}

/// The active `analyze:allow(tag)` covering `line`, if any.
fn allow_for<'a>(file: &'a FileModel, tag: &str, line: u32) -> Option<&'a AllowSite> {
    file.allows.iter().find(|a| a.tag == tag && a.covers(line))
}

/// Shared allow-or-fail handling: returns true when the finding is
/// exempted by a justified `analyze:allow(tag)`; records a violation when
/// the allow exists but carries no justification.
fn allowed(audit: &mut Audit, file: &FileModel, tag: &str, line: u32) -> bool {
    match allow_for(file, tag, line) {
        Some(site) if !site.justification.is_empty() => true,
        Some(site) => {
            audit.fail(
                file.path.clone(),
                format!(
                    "line {}: `analyze:allow({tag})` must carry a justification",
                    site.line
                ),
            );
            true
        }
        None => false,
    }
}

/// Paths the determinism pass does not scan: benchmarks time by design,
/// and binary entry points may read the environment for configuration.
fn determinism_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/") || path.ends_with("/src/main.rs") || path.contains("/bin/")
}

/// Files skipped by the concurrency passes' *finding* stage (their
/// declarations still feed the graph): benchmarks are not product code.
fn concurrency_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

/// **Pass 1 — determinism taint.**
///
/// Computes reverse reachability from the [`DETERMINISM_SINKS`] and scans
/// every tainted non-test function for nondeterministic operations:
/// wall-clock (`Instant::now`, `SystemTime::now`), thread identity,
/// environment reads, process id, host parallelism, OS entropy, and
/// iteration over `HashMap`/`HashSet`-typed bindings (method calls and
/// `for … in` loops). Each finding must be fixed or carry a justified
/// `// analyze:allow(determinism)`.
pub fn determinism_taint(a: &Analysis) -> (Audit, DeterminismReport) {
    let mut audit = Audit::new("determinism-taint");
    let mut sink_ids: Vec<NodeId> = Vec::new();
    let mut sinks = Vec::new();
    for s in DETERMINISM_SINKS {
        let ids = a.find(s);
        if !ids.is_empty() {
            sinks.push(s.to_string());
        }
        sink_ids.extend(ids);
    }
    let tainted = a.reaching(&sink_ids);
    let mut tainted_names: BTreeSet<String> = BTreeSet::new();
    for (id, &is_tainted) in tainted.iter().enumerate() {
        if !is_tainted {
            continue;
        }
        let f = a.item(id);
        if f.in_tests || determinism_exempt(&f.path) {
            continue;
        }
        tainted_names.insert(f.qualified.clone());
        audit.check();
        let file = a.file_of(id);
        for call in a.calls(id) {
            if let Some(what) = nondet_reason(&call) {
                if !allowed(&mut audit, file, "determinism", call.line) {
                    audit.fail(
                        file.path.clone(),
                        format!(
                            "line {}: `{}` ({what}) in `{}`, which is on a call path to {}; \
                             fix it or add `// analyze:allow(determinism): <why>`",
                            call.line,
                            call_label(&call),
                            f.qualified,
                            sinks.join("/"),
                        ),
                    );
                }
            }
            if call.kind == CallKind::Method && HASH_ITER_METHODS.contains(&call.name.as_str()) {
                let chain = file.receiver_chain(call.token);
                if let Some(last) = chain.last() {
                    if file.hash_bindings.contains(last)
                        && !allowed(&mut audit, file, "determinism", call.line)
                    {
                        audit.fail(
                            file.path.clone(),
                            format!(
                                "line {}: `{last}.{}()` iterates a HashMap/HashSet in `{}`, \
                                 which is on a call path to {}; iteration order is \
                                 nondeterministic — collect and sort, use a BTreeMap, or add \
                                 `// analyze:allow(determinism): <why>`",
                                call.line,
                                call.name,
                                f.qualified,
                                sinks.join("/"),
                            ),
                        );
                    }
                }
            }
        }
        // `for x in map`-style iteration without a method call.
        for (line, name) in for_loop_hash_iteration(file, f) {
            if !allowed(&mut audit, file, "determinism", line) {
                audit.fail(
                    file.path.clone(),
                    format!(
                        "line {line}: `for … in {name}` iterates a HashMap/HashSet in `{}`, \
                         which is on a call path to {}; iteration order is nondeterministic",
                        f.qualified,
                        sinks.join("/"),
                    ),
                );
            }
        }
    }
    let mut allows = Vec::new();
    for file in &a.files {
        for s in &file.allows {
            allows.push(AllowRecord {
                file: file.path.clone(),
                line: s.line,
                tag: s.tag.clone(),
                justification: s.justification.clone(),
            });
        }
    }
    let report = DeterminismReport {
        sinks,
        tainted: tainted_names.into_iter().collect(),
        allows,
    };
    (audit, report)
}

/// Why a call is nondeterministic, if it is.
fn nondet_reason(call: &CallSite) -> Option<&'static str> {
    if let Some(prefix) = call.prefix.as_deref() {
        for (p, n, what) in NONDET_QUALIFIED {
            if prefix == p && call.name == n {
                return Some(what);
            }
        }
    }
    NONDET_ANY
        .iter()
        .find(|(n, _)| call.name == *n)
        .map(|(_, what)| *what)
}

/// Human label for a call site.
fn call_label(call: &CallSite) -> String {
    match call.prefix.as_deref() {
        Some(p) => format!("{p}::{}", call.name),
        None => call.name.clone(),
    }
}

/// `for … in <expr>` loops in `f` whose iterated expression mentions a
/// HashMap/HashSet-typed binding; returns `(line, binding)` pairs.
fn for_loop_hash_iteration(file: &FileModel, f: &FnItem) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let idxs = file.body_token_indices(f);
    for (pos, &i) in idxs.iter().enumerate() {
        let t = &file.tokens[i];
        if !t.is_ident(&file.src, "in") {
            continue;
        }
        // Scan the loop-head expression up to its `{`.
        for &j in idxs[pos + 1..].iter().take(12) {
            let u = &file.tokens[j];
            if u.is_punct(&file.src, b'{') {
                break;
            }
            if u.kind == TokenKind::Ident {
                let name = u.text(&file.src);
                if file.hash_bindings.iter().any(|b| b == name) {
                    // A following `.method(` means the method-call check
                    // owns this site (e.g. `.keys()`); the bare form is
                    // ours.
                    let is_method_recv = file
                        .next_code_token(j)
                        .is_some_and(|(_, n)| n.is_punct(&file.src, b'.'));
                    if !is_method_recv {
                        out.push((u.line, name.to_string()));
                    }
                }
            }
        }
    }
    out
}

/// **Pass 2 — lock discipline.**
///
/// Builds the lock-acquisition order graph: an edge `A → B` means lock
/// `B` was acquired (directly, or transitively via a callee) while `A`
/// was held. Cycles in this graph are deadlock-capable orderings and
/// fail the audit. Within each held region the pass also flags blocking
/// I/O — direct calls and one call level deep (deeper blocking is what
/// the ThreadSanitizer CI job cross-validates) — unless the site carries
/// `// analyze:allow(lock-io): why`.
///
/// Guard regions are approximated short (see
/// [`crate::model::FileModel::guard_end`]); `Condvar::wait*` is exempt
/// (it releases the lock); self-edges are dropped (re-acquisition
/// through missed `drop`s would false-positive).
pub fn lock_discipline(a: &Analysis) -> (Audit, LockReport) {
    let mut audit = Audit::new("lock-discipline");
    let n = a.len();
    // Per-node direct facts.
    let sites: Vec<Vec<LockSite>> = (0..n).map(|id| a.lock_sites(id)).collect();
    let calls: Vec<Vec<CallSite>> = (0..n).map(|id| a.calls(id)).collect();
    // Guard-returning helpers: a fn whose signature names a guard type
    // acquires its lock *at the call site*.
    let helper: Vec<Option<String>> = (0..n)
        .map(|id| {
            let f = a.item(id);
            let file = a.file_of(id);
            if signature_mentions_guard(file, f) {
                sites[id]
                    .iter()
                    .find(|s| s.resolved)
                    .map(|s| s.lock.clone())
            } else {
                None
            }
        })
        .collect();
    // Direct blocking ops per node: (token, line, label).
    let blocking: Vec<Vec<(usize, u32, String)>> =
        (0..n).map(|id| direct_blocking(&calls[id])).collect();
    // Fixpoint: locks a node may acquire transitively.
    let mut locks_all: Vec<BTreeSet<String>> = (0..n)
        .map(|id| {
            let mut s: BTreeSet<String> = sites[id].iter().map(|l| l.lock.clone()).collect();
            if let Some(h) = &helper[id] {
                s.insert(h.clone());
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut add: Vec<String> = Vec::new();
            for call in &calls[id] {
                for callee in a.resolve_call(id, call) {
                    for l in &locks_all[callee] {
                        if !locks_all[id].contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
            }
            for l in add {
                changed |= locks_all[id].insert(l);
            }
        }
        if !changed {
            break;
        }
    }
    // Edge construction + blocking findings.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for id in 0..n {
        let f = a.item(id);
        // `fmt` impls are skipped: `DebugStruct::finish`/`entries` collide
        // with workspace trait methods and Debug formatting never
        // dispatches into the serving tier.
        if f.in_tests || concurrency_exempt(&f.path) || f.name == "fmt" {
            continue;
        }
        let Some((_, body_end)) = f.body else {
            continue;
        };
        let file = a.file_of(id);
        audit.check();
        // Acquisitions: direct sites plus helper calls.
        let mut acqs: Vec<(String, usize, u32)> = sites[id]
            .iter()
            .map(|s| (s.lock.clone(), s.token, s.line))
            .collect();
        for call in &calls[id] {
            for callee in a.resolve_call(id, call) {
                if let Some(h) = &helper[callee] {
                    acqs.push((h.clone(), call.token, call.line));
                }
            }
        }
        acqs.sort_by_key(|(_, t, _)| *t);
        for (lock, token, _line) in &acqs {
            let end = file.guard_end(*token, body_end);
            let region = *token + 1..end;
            for (l2, t2, line2) in &acqs {
                if region.contains(t2) && l2 != lock {
                    edges
                        .entry((lock.clone(), l2.clone()))
                        .or_insert_with(|| (file.path.clone(), *line2));
                }
            }
            for call in &calls[id] {
                if !region.contains(&call.token) {
                    continue;
                }
                let callees = a.resolve_call(id, call);
                for &callee in &callees {
                    for l2 in &locks_all[callee] {
                        if l2 != lock {
                            edges
                                .entry((lock.clone(), l2.clone()))
                                .or_insert_with(|| (file.path.clone(), call.line));
                        }
                    }
                }
                // One-level-deep blocking through the callee — only when
                // the dispatch is unambiguous (every candidate blocks):
                // name-union resolution would otherwise connect every
                // `Vec::push` under a lock to an unrelated workspace
                // method. Ambiguous cases are what the TSan job covers.
                let all_block =
                    !callees.is_empty() && callees.iter().all(|&c| !blocking[c].is_empty());
                if all_block {
                    let what = &blocking[callees[0]].first().expect("checked non-empty").2;
                    if !allowed(&mut audit, file, "lock-io", call.line) {
                        audit.fail(
                            file.path.clone(),
                            format!(
                                "line {}: lock `{lock}` is held across `{}` (which does \
                                 blocking `{what}`) in `{}`; shrink the critical section \
                                 or add `// analyze:allow(lock-io): <why>`",
                                call.line,
                                call_label(call),
                                f.qualified,
                            ),
                        );
                    }
                }
            }
            for (t2, line2, what) in &blocking[id] {
                if region.contains(t2) && !allowed(&mut audit, file, "lock-io", *line2) {
                    audit.fail(
                        file.path.clone(),
                        format!(
                            "line {line2}: lock `{lock}` is held across blocking `{what}` in \
                             `{}`; shrink the critical section or add \
                             `// analyze:allow(lock-io): <why>`",
                            f.qualified,
                        ),
                    );
                }
            }
        }
    }
    let edge_list: Vec<LockEdge> = edges
        .iter()
        .map(|((from, to), (fpath, line))| LockEdge {
            from: from.clone(),
            to: to.clone(),
            file: fpath.clone(),
            line: *line,
        })
        .collect();
    let cycles = find_cycles(&edge_list);
    for cycle in &cycles {
        audit.check();
        audit.fail(
            "workspace",
            format!(
                "lock-acquisition order cycle: {} — a deadlock-capable ordering; \
                 acquire these locks in one global order",
                cycle.join(" -> "),
            ),
        );
    }
    let report = LockReport {
        declared: a.locks.iter().map(|l| l.id.clone()).collect(),
        edges: edge_list,
        cycles,
    };
    (audit, report)
}

/// True when `f`'s signature names a guard type — the marker for
/// guard-returning helper functions.
fn signature_mentions_guard(file: &FileModel, f: &FnItem) -> bool {
    let Some((start, _)) = f.body else {
        return false;
    };
    // Walk back from the body to the `fn` keyword, scanning signature
    // tokens (bounded: signatures are short).
    let mut i = start.saturating_sub(1);
    for _ in 0..128 {
        let t = &file.tokens[i];
        if t.is_ident(&file.src, "fn") {
            return false;
        }
        if t.kind == TokenKind::Ident {
            let w = t.text(&file.src);
            if w == "MutexGuard" || w == "RwLockReadGuard" || w == "RwLockWriteGuard" {
                return true;
            }
        }
        if i == 0 {
            return false;
        }
        i -= 1;
    }
    false
}

/// Direct blocking operations in a node's call list: blocking methods
/// (except `Condvar::wait*`, which releases the lock), `write!`/
/// `writeln!` macros, and `thread::sleep`.
fn direct_blocking(calls: &[CallSite]) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for call in calls {
        let hit = match call.kind {
            CallKind::Method => BLOCKING_METHODS.contains(&call.name.as_str()),
            CallKind::Macro => BLOCKING_MACROS.contains(&call.name.as_str()),
            CallKind::Qualified => call.name == "sleep",
            CallKind::Free => false,
        };
        if hit {
            let label = match call.kind {
                CallKind::Macro => format!("{}!", call.name),
                _ => call_label(call),
            };
            out.push((call.token, call.line, label));
        }
    }
    out
}

/// Cycle detection over the lock-order edges: returns each cycle as a
/// closed path of lock ids. Self-edges are excluded by construction.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if done.contains(start) {
            continue;
        }
        // DFS with an explicit path stack; the first back-edge into the
        // current path yields one cycle per starting node at most.
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        let mut found = false;
        while let Some(&node) = path.last() {
            if found {
                break;
            }
            let i = *iters.last().expect("stacks move together");
            let next = adj.get(node).and_then(|v| v.get(i).copied());
            match next {
                Some(m) => {
                    *iters.last_mut().expect("stacks move together") += 1;
                    if let Some(at) = path.iter().position(|&p| p == m) {
                        let mut cycle: Vec<String> =
                            path[at..].iter().map(ToString::to_string).collect();
                        cycle.push(m.to_string());
                        if !cycles.iter().any(|c| same_cycle(c, &cycle)) {
                            cycles.push(cycle);
                        }
                        found = true;
                    } else if !done.contains(m) {
                        path.push(m);
                        iters.push(0);
                    }
                }
                None => {
                    done.insert(node);
                    path.pop();
                    iters.pop();
                }
            }
        }
    }
    cycles
}

/// True when two closed paths denote the same cycle (rotation-invariant).
fn same_cycle(a: &[String], b: &[String]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let core_a = &a[..a.len() - 1];
    let core_b = &b[..b.len() - 1];
    (0..core_a.len())
        .any(|r| (0..core_a.len()).all(|i| core_a[(r + i) % core_a.len()] == core_b[i]))
}

/// **Pass 3 — panic surface.**
///
/// Catalogues panic-capable sites (`unwrap`, `expect`, indexing, panic
/// macros) in every function reachable from the [`PANIC_ROOTS`] — the
/// serving tier's worker and connection threads — and requires each site
/// to be contained by the scheduler's `catch_unwind` boundary or carry
/// `// analyze:allow(panic): why`. Containment is computed from the call
/// graph: functions called inside a `catch_unwind(...)` argument span,
/// plus everything they reach.
pub fn panic_surface(a: &Analysis) -> (Audit, PanicReport) {
    let mut audit = Audit::new("panic-surface");
    let mut root_ids: Vec<NodeId> = Vec::new();
    let mut roots = Vec::new();
    for r in PANIC_ROOTS {
        let ids = a.find(r);
        if !ids.is_empty() {
            roots.push(r.to_string());
        }
        root_ids.extend(ids);
    }
    let reachable = a.reachable_from(&root_ids);
    // Contained roots: workspace fns invoked inside catch_unwind(...) args.
    let mut contained_roots: Vec<NodeId> = Vec::new();
    let mut unwind_spans: BTreeMap<NodeId, Vec<(usize, usize)>> = BTreeMap::new();
    for id in 0..a.len() {
        let file = a.file_of(id);
        let node_calls = a.calls(id);
        for call in &node_calls {
            if call.name != "catch_unwind" {
                continue;
            }
            let Some((oi, o)) = file.next_code_token(call.token) else {
                continue;
            };
            if !o.is_punct(&file.src, b'(') {
                continue;
            }
            let Some(close) = file.matching(oi) else {
                continue;
            };
            unwind_spans.entry(id).or_default().push((oi, close));
            for inner in &node_calls {
                if inner.token > oi && inner.token < close {
                    contained_roots.extend(a.resolve_call(id, inner));
                }
            }
        }
    }
    let contained_set = a.reachable_from(&contained_roots);
    let mut sites = Vec::new();
    let mut contained_count = 0usize;
    for id in 0..a.len() {
        if !reachable[id] {
            continue;
        }
        let f = a.item(id);
        if f.in_tests || concurrency_exempt(&f.path) {
            continue;
        }
        audit.check();
        let file = a.file_of(id);
        let spans = unwind_spans.get(&id).map_or(&[][..], Vec::as_slice);
        for (token, line, kind) in panic_sites(file, f) {
            let contained =
                contained_set[id] || spans.iter().any(|(s, e)| token > *s && token < *e);
            if contained {
                contained_count += 1;
                continue;
            }
            let allow = allow_for(file, "panic", line);
            let is_allowed = matches!(allow, Some(s) if !s.justification.is_empty());
            if let Some(s) = allow {
                if s.justification.is_empty() {
                    audit.fail(
                        file.path.clone(),
                        format!(
                            "line {}: `analyze:allow(panic)` must carry a justification",
                            s.line
                        ),
                    );
                }
            } else {
                audit.fail(
                    file.path.clone(),
                    format!(
                        "line {line}: `{kind}` in `{}` is reachable from a server worker \
                         thread and not contained by the scheduler's catch_unwind boundary; \
                         handle the failure or add `// analyze:allow(panic): <why>`",
                        f.qualified,
                    ),
                );
            }
            sites.push(PanicSiteRecord {
                function: f.qualified.clone(),
                file: file.path.clone(),
                line,
                kind,
                allowed: is_allowed,
            });
        }
    }
    let report = PanicReport {
        roots,
        sites,
        contained: contained_count,
    };
    (audit, report)
}

/// Panic-capable sites in `f`: `(token, line, kind)`.
fn panic_sites(file: &FileModel, f: &FnItem) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for call in file.calls_of(f) {
        match call.kind {
            CallKind::Method => {
                if matches!(
                    call.name.as_str(),
                    "unwrap" | "unwrap_err" | "expect" | "expect_err"
                ) {
                    out.push((call.token, call.line, format!(".{}()", call.name)));
                }
            }
            CallKind::Macro if PANIC_MACROS.contains(&call.name.as_str()) => {
                out.push((call.token, call.line, format!("{}!", call.name)));
            }
            _ => {}
        }
    }
    // Indexing: a `[` in expression position (previous token is an
    // identifier or a closing bracket). `#[attr]`, array types, and
    // `vec![…]` never match — their `[` follows `#`, `:`, `=`, or `!`.
    for i in file.body_token_indices(f) {
        let t = &file.tokens[i];
        if !t.is_punct(&file.src, b'[') {
            continue;
        }
        let Some((_, p)) = file.prev_code_token(i) else {
            continue;
        };
        let expr_pos = p.kind == TokenKind::Ident
            && !KEYWORD_BEFORE_BRACKET.contains(&p.text(&file.src))
            || p.is_punct(&file.src, b')')
            || p.is_punct(&file.src, b']');
        if expr_pos {
            out.push((i, t.line, "indexing".to_string()));
        }
    }
    out.sort_by_key(|(t, _, _)| *t);
    out
}

/// Identifiers that may precede `[` without it being an indexing site.
const KEYWORD_BEFORE_BRACKET: [&str; 4] = ["in", "return", "break", "else"];

/// **Pass 4 — exemption audit.**
///
/// Every `analyze:allow(determinism)` in the tree must appear in the
/// checked-in `ANALYZE_ALLOWLIST.md` (entries `- <path> | <justification>`)
/// and vice versa, so determinism exemptions cannot accumulate silently.
/// Additionally, *every* allow of any tag must carry a justification.
pub fn allow_exemptions(ws: &Workspace, a: &Analysis) -> Audit {
    let mut audit = Audit::new("analyze-allowlist");
    let mut tree: Vec<(String, String)> = Vec::new();
    for file in &a.files {
        // The engine's own sources document the allow grammar in comments;
        // they are infrastructure, not audited product code.
        if file.path.starts_with("crates/audit/") {
            continue;
        }
        for s in &file.allows {
            audit.check();
            if s.justification.is_empty() {
                audit.fail(
                    file.path.clone(),
                    format!(
                        "line {}: `analyze:allow({})` must carry a justification \
                         (`// analyze:allow({}): <why>`)",
                        s.line, s.tag, s.tag
                    ),
                );
            }
            if !matches!(s.tag.as_str(), "determinism" | "lock-io" | "panic") {
                audit.fail(
                    file.path.clone(),
                    format!("line {}: unknown analyze:allow tag `{}`", s.line, s.tag),
                );
            }
            if s.tag == "determinism" {
                tree.push((file.path.clone(), s.justification.clone()));
            }
        }
    }
    let Some(list) = ws.file("ANALYZE_ALLOWLIST.md") else {
        if !tree.is_empty() {
            audit.check();
            audit.fail(
                "ANALYZE_ALLOWLIST.md",
                "missing: every `analyze:allow(determinism)` must be recorded in \
                 ANALYZE_ALLOWLIST.md with its justification",
            );
        }
        return audit;
    };
    let entries: Vec<(String, String)> = list
        .text
        .lines()
        .filter_map(|l| {
            let l = l.trim().strip_prefix("- ")?;
            let (path, just) = l.split_once('|')?;
            Some((path.trim().to_string(), just.trim().to_string()))
        })
        .collect();
    for (path, just) in &tree {
        audit.check();
        if !entries.iter().any(|(p, j)| p == path && j == just) {
            audit.fail(
                path.clone(),
                format!(
                    "`analyze:allow(determinism)` with justification \"{just}\" has no \
                     matching entry in ANALYZE_ALLOWLIST.md (`- {path} | {just}`)"
                ),
            );
        }
    }
    for (path, just) in &entries {
        audit.check();
        if !tree.iter().any(|(p, j)| p == path && j == just) {
            audit.fail(
                "ANALYZE_ALLOWLIST.md",
                format!(
                    "stale entry `- {path} | {just}`: no matching \
                     `analyze:allow(determinism)` in the tree"
                ),
            );
        }
    }
    audit
}
