//! The item model: functions, calls, locks, and `analyze:allow` sites.
//!
//! Built on the token stream from [`crate::lex`], this module extracts the
//! program structure the analysis passes need:
//!
//! * **function items** — every `fn`, associated with its `impl` type when
//!   it has one, with exact body token ranges (nested closures belong to
//!   the enclosing function; nested `fn` items get their own entry and are
//!   excluded from the outer body's scans);
//! * **call sites** — `name(...)`, `.name(...)`, `Path::name(...)`, and
//!   `name!(...)` macro invocations, each with its qualifying path prefix
//!   so `Instant::now` and `RunStore::key` are distinguishable from other
//!   `now`/`key` functions;
//! * **lock declarations and acquisitions** — `Mutex`/`RwLock` struct
//!   fields, statics, and annotated locals, plus every `.lock()` /
//!   `.read()` / `.write()` acquisition resolved back to a declaration
//!   where the receiver chain allows;
//! * **`analyze:allow(...)` escape hatches** — parsed from comment tokens,
//!   each covering its own line and the next code line.
//!
//! Resolution is name-based, not type-based: the model documents exactly
//! what it infers (receiver chains, impl association) and the passes treat
//! anything unresolved conservatively.

use crate::lex::{lex, Token, TokenKind};

/// Rust keywords that can precede `(` without being calls.
const KEYWORDS: [&str; 28] = [
    "if", "while", "match", "for", "loop", "return", "as", "in", "let", "else", "move", "unsafe",
    "fn", "impl", "struct", "enum", "trait", "mod", "use", "pub", "where", "break", "continue",
    "ref", "mut", "dyn", "box", "await",
];

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative path of the declaring file.
    pub path: String,
    /// The function's bare name.
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qualified: String,
    /// The `impl` type the function belongs to, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[start, end)` of the body (braces excluded);
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when the function lives in a `#[cfg(test)]` region or a
    /// `tests/` integration file.
    pub in_tests: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a free-function call.
    Free,
    /// `.name(...)` — a method call.
    Method,
    /// `path::name(...)` — a qualified call; the prefix is recorded.
    Qualified,
    /// `name!(...)` — a macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub name: String,
    /// Last qualifying path segment before the name (`Instant` in
    /// `Instant::now`, `thread` in `std::thread::current`), if any.
    pub prefix: Option<String>,
    /// Call kind.
    pub kind: CallKind,
    /// 1-based line of the callee name.
    pub line: u32,
    /// Token index of the callee name within the file's token stream.
    pub token: usize,
}

/// What kind of lock a declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<_>` (std or parking_lot).
    Mutex,
    /// `RwLock<_>`.
    RwLock,
}

/// One declared lock.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Stable identity: `Type.field` for struct fields, `static NAME` for
    /// statics, `fn_name.local` for annotated locals.
    pub id: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// Declaring file.
    pub path: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// One lock acquisition (`.lock()` / `.read()` / `.write()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Resolved lock identity, or `path:receiver` when the receiver chain
    /// does not reach a known declaration.
    pub lock: String,
    /// True when resolution reached a declaration.
    pub resolved: bool,
    /// The acquiring method (`lock`, `read`, `write`).
    pub method: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the acquiring method name.
    pub token: usize,
}

/// One `analyze:allow(tag)` escape hatch parsed from a comment.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// The tag inside the parentheses (`determinism`, `lock-io`, `panic`).
    pub tag: String,
    /// Everything after the closing paren and optional `:` — the
    /// justification; empty when the author gave none.
    pub justification: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// First line of the statement the comment precedes.
    pub covers_line: u32,
    /// Last line of that statement (rustfmt may split one statement over
    /// several lines; the exemption covers all of them).
    pub covers_end: u32,
}

impl AllowSite {
    /// True when this exemption covers a finding on `line`.
    pub fn covers(&self, line: u32) -> bool {
        line == self.line || (self.covers_line..=self.covers_end).contains(&line)
    }
}

/// The analysed form of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// The raw source the tokens index into.
    pub src: String,
    /// The full token stream (comments included).
    pub tokens: Vec<Token>,
    /// Every function item, in source order.
    pub fns: Vec<FnItem>,
    /// Lock declarations in this file.
    pub locks: Vec<LockDecl>,
    /// `analyze:allow` sites in this file.
    pub allows: Vec<AllowSite>,
    /// Identifiers bound with a `HashMap`/`HashSet` type annotation or
    /// constructor in this file (fields, locals, params) — the receivers
    /// whose iteration order is nondeterministic.
    pub hash_bindings: Vec<String>,
    /// Byte offset where the `#[cfg(test)]` region starts, if any.
    test_start: Option<usize>,
}

impl FileModel {
    /// Parses one file. `path` decides test-ness for `tests/` files.
    pub fn parse(path: &str, src: &str) -> FileModel {
        let tokens = lex(src);
        let test_start = src.find("#[cfg(test)]");
        let mut model = FileModel {
            path: path.to_string(),
            src: src.to_string(),
            tokens,
            fns: Vec::new(),
            locks: Vec::new(),
            allows: Vec::new(),
            hash_bindings: Vec::new(),
            test_start,
        };
        model.parse_allows();
        model.parse_items();
        model.parse_bindings();
        model
    }

    /// True when byte offset `at` is inside the test region.
    fn offset_in_tests(&self, at: usize) -> bool {
        self.path.contains("/tests/") || self.test_start.is_some_and(|t| at >= t)
    }

    /// The token at `i`, skipping backward over comments.
    pub fn prev_code_token(&self, i: usize) -> Option<(usize, &Token)> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            if !self.tokens[j].is_comment() {
                return Some((j, &self.tokens[j]));
            }
        }
        None
    }

    /// The token at `i`, skipping forward over comments.
    pub fn next_code_token(&self, i: usize) -> Option<(usize, &Token)> {
        let mut j = i + 1;
        while j < self.tokens.len() {
            if !self.tokens[j].is_comment() {
                return Some((j, &self.tokens[j]));
            }
            j += 1;
        }
        None
    }

    /// Token index one past the delimiter that matches the opener at `open`
    /// (`{`/`(`/`[`), honouring nesting. `None` when unbalanced.
    pub fn matching(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.src.as_bytes()[self.tokens[open].start] {
            b'{' => (b'{', b'}'),
            b'(' => (b'(', b')'),
            b'[' => (b'[', b']'),
            _ => return None,
        };
        let mut depth = 0i64;
        for i in open..self.tokens.len() {
            let t = &self.tokens[i];
            if t.kind == TokenKind::Punct {
                let ch = self.src.as_bytes()[t.start];
                if ch == o {
                    depth += 1;
                } else if ch == c {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i + 1);
                    }
                }
            }
        }
        None
    }

    /// Parses `analyze:allow(tag): justification` out of comment tokens.
    fn parse_allows(&mut self) {
        let mut allows = Vec::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if !t.is_comment() {
                continue;
            }
            let text = t.text(&self.src);
            let Some(at) = text.find("analyze:allow(") else {
                continue;
            };
            let rest = &text[at + "analyze:allow(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let tag = rest[..close].trim().to_string();
            let justification = rest[close + 1..]
                .trim_start_matches([':', ' '])
                .trim_end_matches("*/")
                .trim()
                .to_string();
            // The exemption covers the whole statement that follows the
            // comment: from the next code token to the terminating `;` (or
            // the first brace — block statements cover their header only).
            // Anchoring on the statement, not the next line, keeps allows
            // stable when rustfmt splits a long call chain across lines.
            let next = self.tokens[i + 1..]
                .iter()
                .position(|n| !n.is_comment())
                .map(|o| i + 1 + o);
            let (covers_line, covers_end) = match next {
                None => (t.line, t.line),
                Some(start) => {
                    let mut end = self.tokens[start].line;
                    for n in &self.tokens[start..] {
                        if n.is_comment() {
                            continue;
                        }
                        end = n.line;
                        if n.is_punct(&self.src, b';')
                            || n.is_punct(&self.src, b'{')
                            || n.is_punct(&self.src, b'}')
                        {
                            break;
                        }
                    }
                    (self.tokens[start].line, end)
                }
            };
            allows.push(AllowSite {
                tag,
                justification,
                line: t.line,
                covers_line,
                covers_end,
            });
        }
        self.allows = allows;
    }

    /// Walks the token stream extracting `impl` blocks, `struct` lock
    /// fields, statics, and `fn` items.
    fn parse_items(&mut self) {
        let mut fns = Vec::new();
        let mut locks = Vec::new();
        // (impl type name, token end) stack entries for impl/struct blocks.
        let mut impl_stack: Vec<(String, usize)> = Vec::new();
        let mut i = 0usize;
        while i < self.tokens.len() {
            let t = self.tokens[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            impl_stack.retain(|(_, end)| i < *end);
            if t.kind == TokenKind::Ident {
                match t.text(&self.src) {
                    "impl" => {
                        if let Some((name, body_open)) = self.impl_header(i) {
                            if let Some(end) = self.matching(body_open) {
                                impl_stack.push((name, end));
                                i = body_open + 1;
                                continue;
                            }
                        }
                    }
                    "struct" => {
                        self.struct_locks(i, &mut locks);
                    }
                    "static" | "const" => {
                        self.static_lock(i, &mut locks);
                    }
                    "fn" => {
                        // `fn` inside a fn-pointer type (`fn(` immediately)
                        // is not an item; an item `fn` is followed by a name.
                        if let Some((ni, name_tok)) = self.next_code_token(i) {
                            if name_tok.kind == TokenKind::Ident {
                                let name = name_tok.text(&self.src).to_string();
                                let (body, next) = self.fn_body(ni);
                                let impl_type = impl_stack.last().map(|(n, _)| n.clone());
                                let qualified = match &impl_type {
                                    Some(ty) => format!("{ty}::{name}"),
                                    None => name.clone(),
                                };
                                fns.push(FnItem {
                                    path: self.path.clone(),
                                    name,
                                    qualified,
                                    impl_type,
                                    line: t.line,
                                    body,
                                    in_tests: self.offset_in_tests(t.start),
                                });
                                // Do not skip the body: nested fn items and
                                // impls inside it still get parsed.
                                i = next.min(ni + 1);
                                continue;
                            }
                        }
                    }
                    "let" => {
                        self.let_lock(i, &fns, &mut locks);
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        self.fns = fns;
        self.locks = locks;
    }

    /// Parses an `impl` header starting at token `i`; returns the
    /// implementing type's base name and the body-opening `{` token index.
    fn impl_header(&self, i: usize) -> Option<(String, usize)> {
        // Find the body-opening brace at angle-depth 0.
        let mut angle = 0i64;
        let mut j = i + 1;
        let mut idents: Vec<(usize, String)> = Vec::new();
        while j < self.tokens.len() {
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::Punct => match self.src.as_bytes()[t.start] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'{' if angle <= 0 => {
                        break;
                    }
                    b';' => return None,
                    _ => {}
                },
                TokenKind::Ident if angle == 0 => {
                    idents.push((j, t.text(&self.src).to_string()));
                }
                _ => {}
            }
            j += 1;
        }
        if j >= self.tokens.len() {
            return None;
        }
        // `impl Trait for Type` → the segment after `for`; `impl Type` →
        // the last path segment before `{` (skipping `where` clauses).
        let ty = match idents.iter().position(|(_, w)| w == "for") {
            Some(at) => idents.get(at + 1).map(|(_, w)| w.clone()),
            None => {
                let stop = idents
                    .iter()
                    .position(|(_, w)| w == "where")
                    .unwrap_or(idents.len());
                idents[..stop].last().map(|(_, w)| w.clone())
            }
        };
        ty.map(|ty| (ty, j))
    }

    /// Records `Mutex`/`RwLock` fields of the struct declared at token `i`.
    fn struct_locks(&self, i: usize, locks: &mut Vec<LockDecl>) {
        let Some((_, name_tok)) = self.next_code_token(i) else {
            return;
        };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let struct_name = name_tok.text(&self.src).to_string();
        // Find the `{` (tuple structs and unit structs have no lock fields
        // we can name).
        let mut j = i + 1;
        let open = loop {
            let Some(t) = self.tokens.get(j) else { return };
            if t.is_punct(&self.src, b'{') {
                break j;
            }
            if t.is_punct(&self.src, b';') || t.is_punct(&self.src, b'(') {
                return;
            }
            j += 1;
        };
        let Some(end) = self.matching(open) else {
            return;
        };
        // Fields: `name : ... Mutex/RwLock < ...` at depth 1.
        let mut k = open + 1;
        while k + 1 < end {
            let t = &self.tokens[k];
            if t.kind == TokenKind::Ident && self.tokens[k + 1].is_punct(&self.src, b':') {
                let field = t.text(&self.src).to_string();
                // Scan the field's type up to the `,` at depth 0.
                let mut depth = 0i64;
                let mut m = k + 2;
                while m < end {
                    let u = &self.tokens[m];
                    if u.kind == TokenKind::Punct {
                        match self.src.as_bytes()[u.start] {
                            b'<' | b'(' | b'[' => depth += 1,
                            b'>' | b')' | b']' => depth -= 1,
                            b',' if depth <= 0 => break,
                            _ => {}
                        }
                    } else if u.kind == TokenKind::Ident {
                        let kind = match u.text(&self.src) {
                            "Mutex" => Some(LockKind::Mutex),
                            "RwLock" => Some(LockKind::RwLock),
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            locks.push(LockDecl {
                                id: format!("{struct_name}.{field}"),
                                kind,
                                path: self.path.clone(),
                                line: t.line,
                            });
                            break;
                        }
                    }
                    m += 1;
                }
                // Continue after the field's type.
                k = m;
            }
            k += 1;
        }
    }

    /// Records `static NAME: Mutex<...>` / `const`-style lock declarations.
    fn static_lock(&self, i: usize, locks: &mut Vec<LockDecl>) {
        let Some((ni, name_tok)) = self.next_code_token(i) else {
            return;
        };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text(&self.src).to_string();
        // Look at the next few tokens for `: Mutex/RwLock <`.
        let mut j = ni + 1;
        let mut steps = 0;
        while let Some(t) = self.tokens.get(j) {
            steps += 1;
            if steps > 8 || t.is_punct(&self.src, b'=') || t.is_punct(&self.src, b';') {
                return;
            }
            if t.kind == TokenKind::Ident {
                let kind = match t.text(&self.src) {
                    "Mutex" => Some(LockKind::Mutex),
                    "RwLock" => Some(LockKind::RwLock),
                    _ => None,
                };
                if let Some(kind) = kind {
                    locks.push(LockDecl {
                        id: format!("static {name}"),
                        kind,
                        path: self.path.clone(),
                        line: name_tok.line,
                    });
                    return;
                }
            }
            j += 1;
        }
    }

    /// Records `let name: ...Mutex...` / `let name = Mutex::new(...)`
    /// locals, scoped to the enclosing function.
    fn let_lock(&self, i: usize, fns: &[FnItem], locks: &mut Vec<LockDecl>) {
        let Some((ni, name_tok)) = self.next_code_token(i) else {
            return;
        };
        let (ni, name_tok) = if name_tok.is_ident(&self.src, "mut") {
            match self.next_code_token(ni) {
                Some(x) => x,
                None => return,
            }
        } else {
            (ni, name_tok)
        };
        if name_tok.kind != TokenKind::Ident {
            return;
        }
        let name = name_tok.text(&self.src).to_string();
        // Scan to the end of the statement for a Mutex/RwLock mention at
        // the *start* of the type or initializer (a `Vec<Mutex<_>>` also
        // counts: locking an element locks a declared local lock).
        let mut j = ni + 1;
        let mut depth = 0i64;
        while let Some(t) = self.tokens.get(j) {
            if t.kind == TokenKind::Punct {
                match self.src.as_bytes()[t.start] {
                    b'(' | b'[' | b'{' | b'<' => depth += 1,
                    b')' | b']' | b'}' | b'>' => depth -= 1,
                    b';' if depth <= 0 => return,
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident {
                let kind = match t.text(&self.src) {
                    "Mutex" => Some(LockKind::Mutex),
                    "RwLock" => Some(LockKind::RwLock),
                    _ => None,
                };
                if let Some(kind) = kind {
                    let owner = fns
                        .iter()
                        .rev()
                        .find(|f| f.body.is_some_and(|(s, e)| (s..e).contains(&i)))
                        .map_or("?", |f| f.name.as_str());
                    locks.push(LockDecl {
                        id: format!("{owner}.{name}"),
                        kind,
                        path: self.path.clone(),
                        line: name_tok.line,
                    });
                    return;
                }
            }
            j += 1;
        }
    }

    /// Finds a `fn` item's body given the name-token index: returns the
    /// body token range (braces excluded) and the index to resume at.
    fn fn_body(&self, name_i: usize) -> (Option<(usize, usize)>, usize) {
        let mut j = name_i + 1;
        let mut depth = 0i64;
        while let Some(t) = self.tokens.get(j) {
            if t.kind == TokenKind::Punct {
                match self.src.as_bytes()[t.start] {
                    b'<' | b'(' | b'[' => depth += 1,
                    b'>' | b')' | b']' => depth -= 1,
                    b'{' if depth <= 0 => {
                        return match self.matching(j) {
                            Some(end) => (Some((j + 1, end - 1)), j + 1),
                            None => (None, j + 1),
                        };
                    }
                    b';' if depth <= 0 => return (None, j + 1),
                    _ => {}
                }
            }
            j += 1;
        }
        (None, j)
    }

    /// Collects identifiers declared with `HashMap`/`HashSet` types or
    /// constructors anywhere in this file.
    fn parse_bindings(&mut self) {
        let mut names = Vec::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let word = t.text(&self.src);
            if word != "HashMap" && word != "HashSet" {
                continue;
            }
            // Walk back across the type/initializer to the binding name:
            // `name : [path::]HashMap`, `name = HashMap::new()`, or
            // `name : Foo<HashMap<...>>` style — take the nearest
            // `ident :`/`ident =` at lower angle depth before this token.
            let mut j = i;
            let mut guard = 0;
            while let Some((pj, p)) = self.prev_code_token(j) {
                guard += 1;
                if guard > 24 || p.is_punct(&self.src, b';') || p.is_punct(&self.src, b'{') {
                    break;
                }
                if p.is_punct(&self.src, b':') || p.is_punct(&self.src, b'=') {
                    if let Some((_, n)) = self.prev_code_token(pj) {
                        if n.kind == TokenKind::Ident {
                            let name = n.text(&self.src).to_string();
                            if !names.contains(&name) {
                                names.push(name);
                            }
                        }
                    }
                    break;
                }
                j = pj;
            }
        }
        self.hash_bindings = names;
    }

    /// Token indices belonging to the body of `f`, excluding ranges that
    /// belong to nested `fn` items (closures stay with the outer fn).
    pub fn body_token_indices(&self, f: &FnItem) -> Vec<usize> {
        let Some((start, end)) = f.body else {
            return Vec::new();
        };
        let nested: Vec<(usize, usize)> = self
            .fns
            .iter()
            .filter(|g| !std::ptr::eq(*g, f))
            .filter_map(|g| g.body)
            .filter(|(s, e)| *s >= start && *e <= end)
            .collect();
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            if let Some(&(_, ne)) = nested.iter().find(|(s, e)| (*s..*e).contains(&i)) {
                i = ne;
                continue;
            }
            out.push(i);
            i += 1;
        }
        out
    }

    /// Extracts every call site in the body of `f`, excluding token ranges
    /// belonging to nested `fn` items.
    pub fn calls_of(&self, f: &FnItem) -> Vec<CallSite> {
        let mut out = Vec::new();
        for i in self.body_token_indices(f) {
            let t = &self.tokens[i];
            if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text(&self.src)) {
                if let Some(site) = self.call_at(i) {
                    out.push(site);
                }
            }
        }
        out
    }

    /// Classifies the identifier at token `i` as a call site, if it is one.
    fn call_at(&self, i: usize) -> Option<CallSite> {
        let t = &self.tokens[i];
        let name = t.text(&self.src).to_string();
        // `fn name(` is a declaration, not a call.
        if let Some((_, p)) = self.prev_code_token(i) {
            if p.is_ident(&self.src, "fn") {
                return None;
            }
        }
        let (_, next) = self.next_code_token(i)?;
        // Macro: `name ! (`/`[`/`{`.
        if next.is_punct(&self.src, b'!') {
            return Some(CallSite {
                name,
                prefix: None,
                kind: CallKind::Macro,
                line: t.line,
                token: i,
            });
        }
        if !next.is_punct(&self.src, b'(') && !self.turbofish_paren_follows(i) {
            // Qualified *path value* uses like `Instant::now` passed as a
            // callback still count when preceded by `::`; only call-like
            // uses matter for the graph, so require parens. Turbofish
            // calls (`drive::<BaselineArch>(...)`) are calls too — losing
            // them would silently drop edges from statically-dispatched
            // code paths.
            return None;
        }
        // Look backward: `.name(` is a method, `a::name(` is qualified.
        match self.prev_code_token(i) {
            Some((pj, p)) if p.is_punct(&self.src, b'.') => {
                let _ = pj;
                Some(CallSite {
                    name,
                    prefix: None,
                    kind: CallKind::Method,
                    line: t.line,
                    token: i,
                })
            }
            Some((pj, p)) if p.is_punct(&self.src, b':') => {
                // Two colons then the qualifying segment.
                let (pj2, p2) = self.prev_code_token(pj)?;
                if !p2.is_punct(&self.src, b':') {
                    return None;
                }
                let prefix = self
                    .prev_code_token(pj2)
                    .filter(|(_, q)| q.kind == TokenKind::Ident)
                    .map(|(_, q)| q.text(&self.src).to_string());
                Some(CallSite {
                    name,
                    prefix,
                    kind: CallKind::Qualified,
                    line: t.line,
                    token: i,
                })
            }
            _ => Some(CallSite {
                name,
                prefix: None,
                kind: CallKind::Free,
                line: t.line,
                token: i,
            }),
        }
    }

    /// True when the tokens after the ident at `i` spell `::<...>` — a
    /// balanced angle-bracket list — followed by `(`: a turbofish call
    /// like `drive::<BaselineArch>(spec)` or `iter.collect::<Vec<_>>()`.
    fn turbofish_paren_follows(&self, i: usize) -> bool {
        let Some((c1, t1)) = self.next_code_token(i) else {
            return false;
        };
        if !t1.is_punct(&self.src, b':') {
            return false;
        }
        let Some((c2, t2)) = self.next_code_token(c1) else {
            return false;
        };
        if !t2.is_punct(&self.src, b':') {
            return false;
        }
        let Some((mut j, t3)) = self.next_code_token(c2) else {
            return false;
        };
        if !t3.is_punct(&self.src, b'<') {
            return false;
        }
        let mut depth = 1usize;
        let mut prev_dash = false;
        while depth > 0 {
            let Some((nj, t)) = self.next_code_token(j) else {
                return false;
            };
            if t.is_punct(&self.src, b'<') {
                depth += 1;
            } else if t.is_punct(&self.src, b'>') && !prev_dash {
                // A `>` closes a generic list unless it is the tail of a
                // `->` in a fn-pointer argument (`fn(u8) -> u64`).
                depth -= 1;
            }
            prev_dash = t.is_punct(&self.src, b'-');
            j = nj;
        }
        matches!(self.next_code_token(j), Some((_, t)) if t.is_punct(&self.src, b'('))
    }

    /// The receiver chain of the method call at token `i` (the method name
    /// token): `self.state.lock()` → `["self", "state"]`; `GLOBAL.lock()`
    /// → `["GLOBAL"]`; indexing (`results[i].lock()`) is skipped over.
    pub fn receiver_chain(&self, i: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let Some((mut j, dot)) = self.prev_code_token(i) else {
            return chain;
        };
        if !dot.is_punct(&self.src, b'.') {
            return chain;
        }
        while let Some((pj, p)) = self.prev_code_token(j) {
            if p.is_punct(&self.src, b']') || p.is_punct(&self.src, b')') {
                // Skip the bracketed/parenthesised group backward.
                let close = self.src.as_bytes()[p.start];
                let open = if close == b']' { b'[' } else { b'(' };
                let mut depth = 0i64;
                let mut k = pj;
                loop {
                    let u = &self.tokens[k];
                    if u.kind == TokenKind::Punct {
                        let ch = self.src.as_bytes()[u.start];
                        if ch == close {
                            depth += 1;
                        } else if ch == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    if k == 0 {
                        return chain;
                    }
                    k -= 1;
                }
                j = k;
                continue;
            }
            if p.kind == TokenKind::Ident {
                chain.push(p.text(&self.src).to_string());
                // Keep walking if another `.` precedes.
                match self.prev_code_token(pj) {
                    Some((dj, d)) if d.is_punct(&self.src, b'.') => {
                        j = dj;
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        chain.reverse();
        chain
    }

    /// The function item whose body contains token index `i`, preferring
    /// the innermost (latest-starting) match.
    pub fn fn_containing(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| (s..e).contains(&i)))
            .max_by_key(|f| f.body.map(|(s, _)| s))
    }

    /// Lock acquisitions in the body of `f`: `.lock()` always counts;
    /// `.read()`/`.write()` only when the receiver resolves to a declared
    /// `RwLock` (those names collide with `io::Read`/`io::Write`).
    pub fn lock_sites_of(&self, f: &FnItem, all_locks: &[LockDecl]) -> Vec<LockSite> {
        let mut out = Vec::new();
        for call in self.calls_of(f) {
            if call.kind != CallKind::Method {
                continue;
            }
            let method = call.name.as_str();
            if method != "lock" && method != "read" && method != "write" {
                continue;
            }
            // Zero-argument call only: `.lock()` — `.read(buf)` is I/O.
            let open = match self.next_code_token(call.token) {
                Some((oi, t)) if t.is_punct(&self.src, b'(') => oi,
                _ => continue,
            };
            match self.next_code_token(open) {
                Some((_, t)) if t.is_punct(&self.src, b')') => {}
                _ => continue,
            }
            let chain = self.receiver_chain(call.token);
            let resolved = self.resolve_lock(f, &chain, all_locks);
            match resolved {
                Some(decl) => {
                    if method != "lock" && decl.kind != LockKind::RwLock {
                        continue;
                    }
                    out.push(LockSite {
                        lock: decl.id.clone(),
                        resolved: true,
                        method: method.to_string(),
                        line: call.line,
                        token: call.token,
                    });
                }
                None if method == "lock" => {
                    let receiver = chain.join(".");
                    out.push(LockSite {
                        lock: format!("{}:{receiver}", self.path),
                        resolved: false,
                        method: method.to_string(),
                        line: call.line,
                        token: call.token,
                    });
                }
                None => {}
            }
        }
        out
    }

    /// Token index one past the region during which the guard produced by
    /// the acquisition at token `acq` is held.
    ///
    /// Approximation, biased short (missing a held region is a false
    /// negative, never a false positive):
    /// * `let g = ...lock()...;` — held until an explicit `drop(g)` in the
    ///   same block, else until the end of the enclosing block;
    /// * an unbound temporary (`*x.lock() = v;`, `f(x.lock())`) — held
    ///   until the end of the statement (`;`, or `,`/block end at depth 0).
    pub fn guard_end(&self, acq: usize, body_end: usize) -> usize {
        let bound = self.guard_binding(acq);
        let bytes = self.src.as_bytes();
        let mut depth = 0i64;
        let mut i = acq;
        while i < body_end {
            let t = &self.tokens[i];
            if t.kind == TokenKind::Punct {
                match bytes[t.start] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'}' => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                    }
                    b';' | b',' if depth <= 0 && bound.is_none() => return i,
                    _ => {}
                }
            } else if let Some(name) = &bound {
                if t.is_ident(&self.src, "drop") {
                    if let Some((oi, o)) = self.next_code_token(i) {
                        if o.is_punct(&self.src, b'(') {
                            if let Some((_, arg)) = self.next_code_token(oi) {
                                if arg.is_ident(&self.src, name) {
                                    return i;
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        body_end
    }

    /// The `let`-bound name of the statement containing token `acq`, when
    /// the statement has the simple shape `let [mut] name = ...`.
    fn guard_binding(&self, acq: usize) -> Option<String> {
        // Walk back to the statement boundary.
        let mut j = acq;
        loop {
            let (pj, p) = self.prev_code_token(j)?;
            if p.is_punct(&self.src, b';')
                || p.is_punct(&self.src, b'{')
                || p.is_punct(&self.src, b'}')
            {
                break;
            }
            j = pj;
            if j == 0 {
                break;
            }
        }
        // `j` is now the first code token of the statement.
        if !self.tokens[j].is_ident(&self.src, "let") {
            return None;
        }
        let (ni, name) = self.next_code_token(j)?;
        let (_, name) = if name.is_ident(&self.src, "mut") {
            self.next_code_token(ni)?
        } else {
            (ni, name)
        };
        if name.kind != TokenKind::Ident {
            return None;
        }
        Some(name.text(&self.src).to_string())
    }

    /// Resolves a receiver chain to a lock declaration: `self.field` via
    /// the enclosing impl type, a bare name via statics and fn-locals.
    fn resolve_lock<'a>(
        &self,
        f: &FnItem,
        chain: &[String],
        all_locks: &'a [LockDecl],
    ) -> Option<&'a LockDecl> {
        match chain {
            [s, field] if s == "self" => {
                let ty = f.impl_type.as_deref()?;
                let id = format!("{ty}.{field}");
                all_locks.iter().find(|l| l.id == id)
            }
            [name] => {
                let static_id = format!("static {name}");
                let local_id = format!("{}.{name}", f.name);
                all_locks
                    .iter()
                    .find(|l| l.id == local_id && l.path == self.path)
                    .or_else(|| all_locks.iter().find(|l| l.id == static_id))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_with_impl_association() {
        let src = "
            pub fn free() { helper(); }
            impl Foo {
                fn method(&self) -> u64 { self.helper2(); 1 }
            }
            impl Display for Bar { fn fmt(&self) {} }
            trait T { fn decl(&self); }
        ";
        let m = FileModel::parse("crates/x/src/lib.rs", src);
        let quals: Vec<&str> = m.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(quals, vec!["free", "Foo::method", "Bar::fmt", "decl"]);
        assert!(m.fns[3].body.is_none(), "bodyless trait decl");
    }

    #[test]
    fn calls_are_classified() {
        let src = "
            fn f() {
                helper();
                self.method(1);
                Instant::now();
                std::thread::current();
                span!(\"x\");
                let v = not_a_call;
            }
        ";
        let m = FileModel::parse("x.rs", src);
        let calls = m.calls_of(&m.fns[0]);
        let named: Vec<(&str, CallKind, Option<&str>)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind, c.prefix.as_deref()))
            .collect();
        assert!(named.contains(&("helper", CallKind::Free, None)));
        assert!(named.contains(&("method", CallKind::Method, None)));
        assert!(named.contains(&("now", CallKind::Qualified, Some("Instant"))));
        assert!(named.contains(&("current", CallKind::Qualified, Some("thread"))));
        assert!(named.contains(&("span", CallKind::Macro, None)));
        assert!(!named.iter().any(|(n, _, _)| *n == "not_a_call"));
    }

    #[test]
    fn turbofish_calls_are_calls() {
        // Statically-dispatched paths (`drive::<BaselineArch>(spec)`) must
        // produce call-graph edges — dropping them would let panic sites
        // behind a generic dispatch escape the containment analysis.
        let src = "
            fn f() {
                drive::<BaselineArch>(spec);
                iter.collect::<Vec<Vec<u8>>>();
                apply::<fn(u8) -> u64>(g);
                Foo::make::<T>(1);
                let cmp = a < b;
            }
        ";
        let m = FileModel::parse("x.rs", src);
        let calls = m.calls_of(&m.fns[0]);
        let named: Vec<(&str, CallKind)> =
            calls.iter().map(|c| (c.name.as_str(), c.kind)).collect();
        assert!(named.contains(&("drive", CallKind::Free)));
        assert!(named.contains(&("collect", CallKind::Method)));
        assert!(named.contains(&("apply", CallKind::Free)));
        assert!(named.contains(&("make", CallKind::Qualified)));
        assert!(!named.iter().any(|(n, _)| *n == "a" || *n == "b"));
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let src = "
            fn outer() {
                fn inner() { inner_call(); }
                outer_call();
            }
        ";
        let m = FileModel::parse("x.rs", src);
        let outer = m.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = m.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<String> = m.calls_of(outer).into_iter().map(|c| c.name).collect();
        let inner_calls: Vec<String> = m.calls_of(inner).into_iter().map(|c| c.name).collect();
        assert_eq!(outer_calls, vec!["outer_call"]);
        assert_eq!(inner_calls, vec!["inner_call"]);
    }

    #[test]
    fn lock_declarations_and_acquisitions_resolve() {
        let src = "
            static GLOBAL: Mutex<u64> = Mutex::new(0);
            struct S { state: Mutex<State>, data: RwLock<Vec<u8>>, n: u64 }
            impl S {
                fn a(&self) {
                    let g = self.state.lock().unwrap();
                    let r = self.data.read().unwrap();
                    let w = GLOBAL.lock();
                    let x = self.n.read(buf);
                }
            }
        ";
        let m = FileModel::parse("x.rs", src);
        let ids: Vec<&str> = m.locks.iter().map(|l| l.id.as_str()).collect();
        assert!(ids.contains(&"static GLOBAL"));
        assert!(ids.contains(&"S.state"));
        assert!(ids.contains(&"S.data"));
        let f = m.fns.iter().find(|f| f.name == "a").unwrap();
        let sites = m.lock_sites_of(f, &m.locks);
        let locks: Vec<&str> = sites.iter().map(|s| s.lock.as_str()).collect();
        assert_eq!(locks, vec!["S.state", "S.data", "static GLOBAL"]);
        assert!(sites.iter().all(|s| s.resolved));
    }

    #[test]
    fn unresolved_lock_receivers_are_kept_conservatively() {
        let src = "fn f(x: &Wrapper) { let g = x.inner.lock(); }";
        let m = FileModel::parse("y.rs", src);
        let f = &m.fns[0];
        let sites = m.lock_sites_of(f, &m.locks);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].resolved);
        assert_eq!(sites[0].lock, "y.rs:x.inner");
    }

    #[test]
    fn read_with_arguments_is_io_not_a_lock() {
        let src = "fn f(s: &TcpStream) { s.read(&mut buf); }";
        let m = FileModel::parse("x.rs", src);
        let sites = m.lock_sites_of(&m.fns[0], &m.locks);
        assert!(sites.is_empty());
    }

    #[test]
    fn allow_sites_cover_their_own_and_the_next_code_line() {
        let src = "\
fn f() {
    // analyze:allow(determinism): wall_ms is stream metadata
    let t = Instant::now();
    let u = Instant::now(); // analyze:allow(determinism): also fine
}";
        let m = FileModel::parse("x.rs", src);
        assert_eq!(m.allows.len(), 2);
        assert_eq!(m.allows[0].tag, "determinism");
        assert_eq!(m.allows[0].justification, "wall_ms is stream metadata");
        assert!(m.allows[0].covers(3));
        assert!(!m.allows[0].covers(4));
        assert!(m.allows[1].covers(4));
    }

    #[test]
    fn allow_sites_cover_a_statement_rustfmt_split_across_lines() {
        let src = "\
fn f() {
    // analyze:allow(lock-io): frame writes stay under the writer mutex
    let sent = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush());
    stream.flush();
}";
        let m = FileModel::parse("x.rs", src);
        assert_eq!(m.allows.len(), 1);
        assert!(m.allows[0].covers(3), "statement start");
        assert!(m.allows[0].covers(4), "continuation line");
        assert!(m.allows[0].covers(5), "terminating `;` line");
        assert!(!m.allows[0].covers(6), "next statement is not covered");
    }

    #[test]
    fn hash_bindings_are_collected() {
        let src = "
            struct S { jobs: HashMap<String, Job>, n: u64 }
            fn f() { let seen: HashSet<u64> = HashSet::new(); let v = Vec::new(); }
        ";
        let m = FileModel::parse("x.rs", src);
        assert!(m.hash_bindings.contains(&"jobs".to_string()));
        assert!(m.hash_bindings.contains(&"seen".to_string()));
        assert!(!m.hash_bindings.contains(&"v".to_string()));
    }

    #[test]
    fn receiver_chain_skips_indexing() {
        let src = "fn f() { results[i].lock(); self.a.b.lock(); }";
        let m = FileModel::parse("x.rs", src);
        let calls = m.calls_of(&m.fns[0]);
        let locks: Vec<Vec<String>> = calls
            .iter()
            .filter(|c| c.name == "lock")
            .map(|c| m.receiver_chain(c.token))
            .collect();
        assert_eq!(locks[0], vec!["results"]);
        assert_eq!(locks[1], vec!["self", "a", "b"]);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn t() {} }";
        let m = FileModel::parse("crates/x/src/lib.rs", src);
        assert!(!m.fns[0].in_tests);
        assert!(m.fns[1].in_tests);
        let m2 = FileModel::parse("crates/x/tests/int.rs", "fn t() {}");
        assert!(m2.fns[0].in_tests);
    }
}
