//! Rule 2 — invariant annotations.
//!
//! The simulator's state-bearing types live in `atscale-vm`, `atscale-cache`
//! and `atscale-mmu`. Every type there exposing a `pub fn` that takes
//! `&mut self` — i.e. every public mutator of counter, TLB, or cache
//! state — must be covered by the debug-build invariant layer: either the
//! type implements `CheckInvariants`, or each mutator's body performs its
//! own `invariant!` / `debug_assert!` checks, or the type is on the
//! documented indirect-coverage allowlist (its state is validated through
//! the invariants of the structure that owns it).
//!
//! The rule also verifies the wiring: `Machine::finish` must run a full
//! sweep and the pressure-window path must run the O(1) counter checks, so
//! the layer cannot silently fall out of the hot paths.

use crate::source::{impl_blocks, non_test_region, pub_fns};
use crate::{Audit, Workspace};

const RULE: &str = "invariant-annotation";

/// Crates whose mutable state the invariant layer must cover.
const STATE_CRATES: [&str; 3] = ["crates/vm/src/", "crates/cache/src/", "crates/mmu/src/"];

/// Types whose state is validated through the invariants of an owning
/// structure rather than a `CheckInvariants` impl of their own. Each entry
/// carries the justification the audit report shows on demand.
pub const COVERED_INDIRECTLY: [(&str, &str); 6] = [
    (
        "LevelCounts",
        "a pure tally with no internal invariant of its own; its consistency \
         against cumulative per-cache counters is checked by \
         CacheHierarchy::check_invariants",
    ),
    (
        "HierarchyStats",
        "aggregate of LevelCounts tallies; validated against cumulative L1 \
         accesses by CacheHierarchy::check_invariants",
    ),
    (
        "FrameAllocator",
        "byte accounting is checked by AddressSpace::check_invariants \
         (data_bytes / table_node_bytes equalities)",
    ),
    (
        "HeapLayout",
        "segment placement is checked by AddressSpace::check_invariants \
         (sorted, disjoint, allocated-byte accounting)",
    ),
    (
        "SpeculationModel",
        "its observable effect — wrong-path and squashed walks — is checked by \
         Counters::check_invariants ground-truth equalities and the engine's \
         coupling checks",
    ),
    (
        "Trace",
        "append-only diagnostic event log; carries no counter or cache state",
    ),
];

/// Substrings whose presence in a mutator body counts as an inline check.
const INLINE_CHECKS: [&str; 3] = ["invariant!", "check_invariants", "debug_assert"];

/// Runs the invariant-annotation rule over the workspace.
pub fn audit_invariant_annotations(ws: &Workspace) -> Audit {
    let mut audit = Audit::new(RULE);
    let files: Vec<_> = ws
        .rust_sources()
        .filter(|f| STATE_CRATES.iter().any(|c| f.path.contains(c)))
        .collect();

    // Pass 1: which types implement CheckInvariants?
    let mut covered: Vec<String> = files
        .iter()
        .flat_map(|f| impl_blocks(non_test_region(&f.stripped)))
        .filter(|b| b.trait_name.as_deref() == Some("CheckInvariants"))
        .map(|b| b.type_name)
        .collect();
    covered.extend(COVERED_INDIRECTLY.iter().map(|(t, _)| (*t).to_string()));

    // Pass 2: every public mutator must be covered.
    for file in &files {
        for block in impl_blocks(non_test_region(&file.stripped)) {
            if block.trait_name.is_some() {
                continue; // trait methods follow the trait's contract
            }
            for f in pub_fns(block.body) {
                if !f.takes_mut_self() {
                    continue;
                }
                audit.check();
                let type_covered = covered.contains(&block.type_name);
                let inline = INLINE_CHECKS.iter().any(|c| f.body.contains(c));
                if !type_covered && !inline {
                    audit.fail(
                        &file.path,
                        format!(
                            "`{}::{}` mutates state but `{}` neither implements \
                             `CheckInvariants` nor performs inline invariant checks \
                             (and is not on the indirect-coverage allowlist)",
                            block.type_name, f.name, block.type_name
                        ),
                    );
                }
            }
        }
    }

    check_engine_wiring(&mut audit, ws);
    audit
}

/// The engine hot paths must actually invoke the layer.
fn check_engine_wiring(audit: &mut Audit, ws: &Workspace) {
    const ENGINE: &str = "crates/mmu/src/engine.rs";
    let Some(engine) = ws.file(ENGINE) else {
        audit.fail(ENGINE, format!("{ENGINE} not found in workspace"));
        return;
    };
    let src = non_test_region(&engine.stripped);
    for (needle, why) in [
        (
            "self.check_invariants()",
            "Machine::finish must run a full invariant sweep in debug builds",
        ),
        (
            "debug_check_window",
            "the pressure-window path must run the O(1) counter checks in debug builds",
        ),
    ] {
        audit.check();
        if !src.contains(needle) {
            audit.fail(ENGINE, format!("missing `{needle}` — {why}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::workspace_from;

    /// Engine stub satisfying the wiring checks.
    const ENGINE: &str = "
        impl CheckInvariants for Machine {
            fn check_invariants(&self) {}
        }
        impl Machine {
            pub fn finish(&mut self) { self.check_invariants() }
            fn debug_check_window(&mut self) {}
        }
    ";

    #[test]
    fn type_with_check_invariants_impl_passes() {
        let src = "
            impl Tlb {
                pub fn fill(&mut self, tag: u64) { self.tags.push(tag) }
            }
            impl CheckInvariants for Tlb {
                fn check_invariants(&self) {}
            }
        ";
        let ws = workspace_from(&[
            ("crates/mmu/src/tlb.rs", src),
            ("crates/mmu/src/engine.rs", ENGINE),
        ]);
        assert_eq!(audit_invariant_annotations(&ws).violations, Vec::new());
    }

    #[test]
    fn uncovered_mutator_is_flagged() {
        let src = "
            impl Rogue {
                pub fn mutate(&mut self) { self.state += 1 }
            }
        ";
        let ws = workspace_from(&[
            ("crates/cache/src/rogue.rs", src),
            ("crates/mmu/src/engine.rs", ENGINE),
        ]);
        let audit = audit_invariant_annotations(&ws);
        assert_eq!(audit.violations.len(), 1);
        assert!(audit.violations[0].message.contains("`Rogue::mutate`"));
    }

    #[test]
    fn inline_invariant_checks_count_as_coverage() {
        let src = "
            impl Lone {
                pub fn bump(&mut self) {
                    self.n += 1;
                    invariant!(self.n > 0, \"n must grow\");
                }
            }
        ";
        let ws = workspace_from(&[
            ("crates/vm/src/lone.rs", src),
            ("crates/mmu/src/engine.rs", ENGINE),
        ]);
        assert_eq!(audit_invariant_annotations(&ws).violations, Vec::new());
    }

    #[test]
    fn read_only_methods_need_no_coverage() {
        let src = "
            impl Viewer {
                pub fn stats(&self) -> u64 { self.n }
            }
        ";
        let ws = workspace_from(&[
            ("crates/vm/src/viewer.rs", src),
            ("crates/mmu/src/engine.rs", ENGINE),
        ]);
        assert_eq!(audit_invariant_annotations(&ws).violations, Vec::new());
    }

    #[test]
    fn allowlisted_types_pass_with_justification() {
        let src = "
            impl FrameAllocator {
                pub fn alloc_page(&mut self) -> u64 { 0 }
            }
        ";
        let ws = workspace_from(&[
            ("crates/vm/src/frame.rs", src),
            ("crates/mmu/src/engine.rs", ENGINE),
        ]);
        assert_eq!(audit_invariant_annotations(&ws).violations, Vec::new());
    }

    #[test]
    fn missing_engine_wiring_is_flagged() {
        let ws = workspace_from(&[(
            "crates/mmu/src/engine.rs",
            "impl Machine { pub fn finish(&mut self) { invariant!(true) } }",
        )]);
        let audit = audit_invariant_annotations(&ws);
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("debug_check_window")));
        assert!(audit
            .violations
            .iter()
            .any(|v| v.message.contains("self.check_invariants()")));
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let src = "
            impl Unrelated {
                pub fn mutate(&mut self) { self.n += 1 }
            }
        ";
        let ws = workspace_from(&[
            ("crates/stats/src/lib.rs", src),
            ("crates/mmu/src/engine.rs", ENGINE),
        ]);
        assert_eq!(audit_invariant_annotations(&ws).violations, Vec::new());
    }
}
