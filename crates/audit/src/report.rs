//! The machine-readable `analysis_report.json` artifact.
//!
//! The audit crate is dependency-free, so the JSON is hand-rolled: a
//! small escaping writer over the pass outputs. Schema
//! (`atscale-analyze/v1`):
//!
//! ```json
//! {
//!   "schema": "atscale-analyze/v1",
//!   "rules": [{"rule": "...", "checked": 0, "violations": [{"file": "...", "message": "..."}]}],
//!   "determinism": {
//!     "sinks": ["RunStore::save", ...],
//!     "tainted": ["Scheduler::worker_loop", ...],
//!     "allows": [{"file": "...", "line": 0, "tag": "...", "justification": "..."}]
//!   },
//!   "locks": {
//!     "declared": ["Scheduler.state", ...],
//!     "edges": [{"from": "...", "to": "...", "file": "...", "line": 0}],
//!     "cycles": [["A", "B", "A"]]
//!   },
//!   "panics": {
//!     "roots": ["Scheduler::worker_loop", ...],
//!     "contained": 0,
//!     "sites": [{"fn": "...", "file": "...", "line": 0, "kind": "...", "allowed": true}]
//!   }
//! }
//! ```
//!
//! Arrays are emitted in deterministic (sorted or source) order, so the
//! artifact diffs cleanly between CI runs.

use crate::passes::{DeterminismReport, LockReport, PanicReport};
use crate::Audit;
use std::fmt::Write as _;

/// The assembled report data from one full analysis run.
#[derive(Debug)]
pub struct Report {
    /// Determinism-taint pass output.
    pub determinism: DeterminismReport,
    /// Lock-discipline pass output.
    pub locks: LockReport,
    /// Panic-surface pass output.
    pub panics: PanicReport,
}

impl Report {
    /// Renders the full JSON document, including per-rule outcomes.
    pub fn to_json(&self, audits: &[Audit]) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": \"atscale-analyze/v1\",\n  \"rules\": [");
        for (i, a) in audits.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"checked\": {}, \"violations\": [",
                esc(a.rule),
                a.checked
            );
            for (j, v) in a.violations.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n      {{\"file\": {}, \"message\": {}}}",
                    esc(&v.file),
                    esc(&v.message)
                );
            }
            if !a.violations.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str("]}");
        }
        s.push_str("\n  ],\n  \"determinism\": {\n    \"sinks\": ");
        str_array(&mut s, &self.determinism.sinks);
        s.push_str(",\n    \"tainted\": ");
        str_array(&mut s, &self.determinism.tainted);
        s.push_str(",\n    \"allows\": [");
        for (i, a) in self.determinism.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n      {{\"file\": {}, \"line\": {}, \"tag\": {}, \"justification\": {}}}",
                esc(&a.file),
                a.line,
                esc(&a.tag),
                esc(&a.justification)
            );
        }
        if !self.determinism.allows.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  },\n  \"locks\": {\n    \"declared\": ");
        str_array(&mut s, &self.locks.declared);
        s.push_str(",\n    \"edges\": [");
        for (i, e) in self.locks.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n      {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}}}",
                esc(&e.from),
                esc(&e.to),
                esc(&e.file),
                e.line
            );
        }
        if !self.locks.edges.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("],\n    \"cycles\": [");
        for (i, c) in self.locks.cycles.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            str_array(&mut s, c);
        }
        s.push_str("]\n  },\n  \"panics\": {\n    \"roots\": ");
        str_array(&mut s, &self.panics.roots);
        let _ = write!(
            s,
            ",\n    \"contained\": {},\n    \"sites\": [",
            self.panics.contained
        );
        for (i, p) in self.panics.sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n      {{\"fn\": {}, \"file\": {}, \"line\": {}, \"kind\": {}, \"allowed\": {}}}",
                esc(&p.function),
                esc(&p.file),
                p.line,
                esc(&p.kind),
                p.allowed
            );
        }
        if !self.panics.sites.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  }\n}\n");
        s
    }
}

fn str_array(s: &mut String, items: &[String]) {
    s.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&esc(item));
    }
    s.push(']');
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn esc(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{AllowRecord, LockEdge, PanicSiteRecord};

    #[test]
    fn report_renders_valid_shape_and_escapes() {
        let report = Report {
            determinism: DeterminismReport {
                sinks: vec!["RunStore::save".to_string()],
                tainted: vec!["a".to_string(), "b\"quote".to_string()],
                allows: vec![AllowRecord {
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 3,
                    tag: "determinism".to_string(),
                    justification: "wall\tclock".to_string(),
                }],
            },
            locks: LockReport {
                declared: vec!["S.state".to_string()],
                edges: vec![LockEdge {
                    from: "S.state".to_string(),
                    to: "static G".to_string(),
                    file: "f.rs".to_string(),
                    line: 9,
                }],
                cycles: vec![],
            },
            panics: PanicReport {
                roots: vec!["worker_loop".to_string()],
                sites: vec![PanicSiteRecord {
                    function: "f".to_string(),
                    file: "f.rs".to_string(),
                    line: 1,
                    kind: ".unwrap()".to_string(),
                    allowed: false,
                }],
                contained: 7,
            },
        };
        let audits = vec![Audit::new("determinism-taint")];
        let json = report.to_json(&audits);
        assert!(json.contains("\"schema\": \"atscale-analyze/v1\""));
        assert!(json.contains("\"b\\\"quote\""));
        assert!(json.contains("\"wall\\tclock\""));
        assert!(json.contains("\"contained\": 7"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
