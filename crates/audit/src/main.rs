//! CLI entry point: `cargo run -p atscale-audit [workspace-root] [--report PATH]`.
//!
//! Exits non-zero when any rule reports a violation, so CI can gate on
//! it. `--report PATH` additionally writes the machine-readable
//! `analysis_report.json` (see [`atscale_audit::report`]).

#![forbid(unsafe_code)]

use atscale_audit::{run_full, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("atscale-audit: --report requires a path");
                    return ExitCode::FAILURE;
                }
            },
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("atscale-audit: unexpected argument `{arg}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "atscale-audit: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "atscale-audit: scanning {} files under {}",
        ws.files.len(),
        ws.root.display()
    );
    let outcome = run_full(&ws);
    let mut failed = false;
    for audit in &outcome.audits {
        println!(
            "  {:<22} {:>3} checks, {} violation{}",
            audit.rule,
            audit.checked,
            audit.violations.len(),
            if audit.violations.len() == 1 { "" } else { "s" }
        );
        failed |= !audit.violations.is_empty();
    }
    for audit in &outcome.audits {
        for v in &audit.violations {
            eprintln!("{v}");
        }
    }
    if let Some(path) = report_path {
        let json = outcome.report.to_json(&outcome.audits);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("atscale-audit: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("atscale-audit: report written to {}", path.display());
    }
    if failed {
        eprintln!("atscale-audit: FAILED");
        ExitCode::FAILURE
    } else {
        println!("atscale-audit: OK");
        ExitCode::SUCCESS
    }
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`, falling back to the compile-time layout.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            // `crates/audit` → workspace root, resolved at compile time.
            return PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        }
    }
}
