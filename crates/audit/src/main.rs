//! CLI entry point: `cargo run -p atscale-audit [workspace-root]`.
//!
//! Exits non-zero when any rule reports a violation, so CI can gate on it.

#![forbid(unsafe_code)]

use atscale_audit::{run_all, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(find_workspace_root, PathBuf::from);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "atscale-audit: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "atscale-audit: scanning {} files under {}",
        ws.files.len(),
        ws.root.display()
    );
    let audits = run_all(&ws);
    let mut failed = false;
    for audit in &audits {
        println!(
            "  {:<22} {:>3} checks, {} violation{}",
            audit.rule,
            audit.checked,
            audit.violations.len(),
            if audit.violations.len() == 1 { "" } else { "s" }
        );
        failed |= !audit.violations.is_empty();
    }
    for audit in &audits {
        for v in &audit.violations {
            eprintln!("{v}");
        }
    }
    if failed {
        eprintln!("atscale-audit: FAILED");
        ExitCode::FAILURE
    } else {
        println!("atscale-audit: OK");
        ExitCode::SUCCESS
    }
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`, falling back to the compile-time layout.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            // `crates/audit` → workspace root, resolved at compile time.
            return PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        }
    }
}
