pub fn admit(&mut self) {
    // analyze:allow(determinism)
    let t = std::time::Instant::now();
    // analyze:allow(everything): the tag grammar only knows determinism, lock-io, and panic
    let u = std::time::Instant::now();
    // analyze:allow(determinism): deadlines are wall-clock by definition
    let v = std::time::Instant::now();
    use_all(t, u, v);
}
