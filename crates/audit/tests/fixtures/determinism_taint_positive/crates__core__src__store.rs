use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

pub struct RunRecord {
    pub tags: HashMap<String, u64>,
}

pub struct RunSpec {
    pub params: HashMap<String, String>,
}

pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    pub fn save(&self, record: &RunRecord) {
        let started = Instant::now();
        let mut digest = 0;
        for (key, value) in &record.tags {
            digest ^= hash_pair(key, value);
        }
        write_payload(&self.dir, digest, started);
    }

    pub fn key(spec: &RunSpec) -> String {
        let parts: Vec<String> = spec.params.keys().cloned().collect();
        parts.join("-")
    }
}

pub fn cache_path(spec: &RunSpec) -> String {
    let salt = std::env::var("ATSCALE_SALT").unwrap_or_default();
    let key = RunStore::key(spec);
    join_path(salt, key)
}
