impl Tlb {
    pub fn fill(&mut self, tag: u64) {
        self.tags.push(tag)
    }
    pub fn stats(&self) -> u64 {
        self.hits
    }
}

impl CheckInvariants for Tlb {
    fn check_invariants(&self) {}
}
