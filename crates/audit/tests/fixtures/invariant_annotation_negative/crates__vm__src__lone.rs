impl Lone {
    pub fn bump(&mut self) {
        self.n += 1;
        invariant!(self.n > 0, "n must grow");
    }
}
