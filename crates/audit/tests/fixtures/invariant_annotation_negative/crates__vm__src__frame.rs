impl FrameAllocator {
    pub fn alloc_page(&mut self) -> u64 {
        0
    }
}
