pub fn admit(&mut self) {
    // analyze:allow(determinism): deadlines are wall-clock by definition; they gate delivery only
    let t = std::time::Instant::now();
    use_deadline(t);
}

pub fn send(&self) {
    let stream = self.stream.lock();
    // analyze:allow(lock-io): frame writes stay under the writer mutex so replies cannot interleave
    stream.write_all(b"ok");
}
