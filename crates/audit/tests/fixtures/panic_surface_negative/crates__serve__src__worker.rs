pub struct Scheduler {
    queue: Queue,
}

impl Scheduler {
    pub fn worker_loop(&self) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute()));
        if outcome.is_err() {
            report_failure();
        }
    }

    fn execute(&self) {
        let job = self.queue.pop_front().unwrap();
        assert!(job > 0, "job ids start at 1");
        deliver(job);
    }
}

fn deliver(job: u64) {
    let slots = vec![0u64; 8];
    let slot = slots[job as usize];
    publish(slot);
}

fn report_failure() {
    // analyze:allow(panic): failure accounting asserts on an internal tally; a broken tally is unrecoverable state worth crashing on
    assert!(tally_consistent(), "delivery tally out of sync");
}

fn tally_consistent() -> bool {
    true
}
