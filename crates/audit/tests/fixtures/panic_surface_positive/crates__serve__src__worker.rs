pub struct Scheduler {
    queue: Queue,
}

impl Scheduler {
    pub fn worker_loop(&self) {
        let job = self.queue.pop_front().unwrap();
        dispatch(job);
    }
}

fn dispatch(job: u64) {
    assert!(job > 0, "job ids start at 1");
    deliver(job);
}

fn deliver(job: u64) {
    let slots = vec![0u64; 4];
    let slot = slots[job as usize];
    publish(slot);
}
