pub const RATE_NAMES: [&str; 1] = ["cpi"];

pub fn counter_sample(cur: &Counters, prev: &Counters) -> Sample {
    let mut counters = cur.events();
    counters.push(("truth.retired_walks", cur.truth_retired_walks));
    let rates = RATE_NAMES.iter().zip([1.0]).collect();
    Sample { counters, rates }
}
