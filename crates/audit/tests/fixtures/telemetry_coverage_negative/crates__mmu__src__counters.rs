pub struct Counters {
    pub cycles: u64,
    pub truth_retired_walks: u64,
}
