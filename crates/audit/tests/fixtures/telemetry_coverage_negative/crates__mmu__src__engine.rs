fn step(&mut self) {
    if self.telemetry.sample_due(self.counters.inst_retired) {
        self.telemetry.take_sample(&c, &pte);
    }
}
fn finish(&mut self) {
    self.telemetry.take_final_sample(&c, &pte);
}
fn reset_measurement(&mut self) {
    self.telemetry.reset();
}
