pub fn f() {}
