pub enum Request {
    Hello(Hello),
    Query(QueryFilter),
    StoreSegStats,
    Shutdown,
}
pub enum Reply {
    Welcome(Welcome),
    QueryResult(QueryResult),
    Compacted(CompactStats),
    StoreSegStats(SegStats),
    ShuttingDown,
}
