fn t() {
    r(Request::Shutdown);
    r(Reply::Welcome(w));
}
