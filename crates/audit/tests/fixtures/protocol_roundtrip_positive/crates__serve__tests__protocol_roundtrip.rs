fn t() {
    r(Request::Query(f));
    r(Request::StoreSegStats);
    r(Request::Shutdown);
    r(Reply::Welcome(w));
    r(Reply::QueryResult(q));
    r(Reply::Compacted(c));
    r(Reply::StoreSegStats(s));
}
