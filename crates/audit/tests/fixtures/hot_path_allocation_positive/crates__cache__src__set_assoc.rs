pub fn access() {}
