pub fn walk(levels: u64) -> Vec<u64> {
    let mut touched = Vec::new();
    for l in 0..levels {
        touched.push(l);
    }
    touched
}
