pub fn lookup() {}
