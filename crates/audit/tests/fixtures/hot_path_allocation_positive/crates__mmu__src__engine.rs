impl Machine {
    pub fn access(&mut self) {
        let label = format!("step {}", self.step);
        self.counters.inst += 1;
        emit(label);
    }
}
