impl CheckInvariants for Machine {
    fn check_invariants(&self) {}
}

impl Machine {
    pub fn finish(&mut self) {
        self.check_invariants()
    }
}
