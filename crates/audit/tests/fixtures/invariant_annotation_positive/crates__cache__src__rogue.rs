impl Rogue {
    pub fn mutate(&mut self) {
        self.state += 1
    }
}
