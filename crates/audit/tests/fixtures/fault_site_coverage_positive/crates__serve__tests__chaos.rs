fn a() {
    arm(FaultSite::StoreWrite);
}
