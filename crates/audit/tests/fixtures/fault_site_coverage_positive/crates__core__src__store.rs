fn save() {
    plan.check(FaultSite::StoreWrite);
}
