pub enum FaultSite {
    StoreWrite,
    WorkerPanic,
}
