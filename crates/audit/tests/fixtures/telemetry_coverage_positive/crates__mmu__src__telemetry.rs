pub const RATE_NAMES: [&str; 1] = ["cpi"];

pub fn counter_sample(cur: &Counters, prev: &Counters) -> Sample {
    let counters = cur.events();
    let rates = vec![("cpi", 1.0)];
    Sample { counters, rates }
}
