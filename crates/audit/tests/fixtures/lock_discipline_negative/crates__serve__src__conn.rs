use std::io::Write;
use std::sync::{Condvar, Mutex};

static ORDER_A: Mutex<u64> = Mutex::new(0);
static ORDER_B: Mutex<u64> = Mutex::new(0);

pub fn forward(n: u64) {
    let a = ORDER_A.lock().unwrap();
    let b = ORDER_B.lock().unwrap();
    consume(n, *a, *b);
    drop(b);
    drop(a);
}

pub fn also_forward(n: u64) {
    let a = ORDER_A.lock().unwrap();
    consume(n, *a, 0);
    drop(a);
    let b = ORDER_B.lock().unwrap();
    consume(n, 0, *b);
    drop(b);
}

pub struct Writer {
    stream: Mutex<Stream>,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl Writer {
    pub fn send(&self, frame: &[u8]) {
        let payload = encode(frame);
        let mut stream = self.stream.lock().unwrap();
        // analyze:allow(lock-io): whole frames are serialized under the writer mutex by design; the hold is bounded by a write timeout
        stream.write_all(&payload).unwrap();
    }

    pub fn release_buffered(&self, frame: &[u8]) {
        let payload = {
            let stream = self.stream.lock().unwrap();
            stamp(&stream, frame)
        };
        emit(payload);
    }

    pub fn wait_open(&self) {
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }
}
