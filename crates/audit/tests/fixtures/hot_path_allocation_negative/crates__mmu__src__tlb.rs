impl TlbArray {
    pub fn new(n: usize) -> Self {
        TlbArray { tags: vec![0; n] }
    }
    pub fn lookup(&self, tag: u64) -> bool {
        self.tags[0] == tag
    }
}
