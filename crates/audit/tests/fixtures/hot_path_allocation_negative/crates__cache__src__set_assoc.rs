pub fn access() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1];
        assert_eq!(v.len(), 1);
    }
}
