impl Machine {
    /// The hot path must never call `format!` or `Vec::new` per access.
    pub fn access(&mut self) {
        self.counters.inst += 1;
        debug_assert!(self.counters.inst > 0, "bad {}", format!("{}", self.counters.inst));
    }
}
