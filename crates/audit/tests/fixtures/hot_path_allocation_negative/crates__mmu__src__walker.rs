#[cold]
fn slow_report() -> String {
    format!("walker stalled")
}

pub fn walk() {
    let msg = "never call format! or Vec::new here";
    emit(msg);
}
