pub struct Counters {
    pub inst_retired: u64,
    pub stlb_hit_loads: u64,
}

impl Counters {
    pub fn events(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("inst_retired.any", self.inst_retired),
            ("dtlb_load_misses.stlb_hit", self.stlb_hit_loads),
        ]
    }
}
