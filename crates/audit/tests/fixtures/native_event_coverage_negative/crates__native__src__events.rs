counter_group! {
    #[doc = "Retired instructions (doc strings like \"inst\" are not event names)."]
    instructions: "inst_retired.any" => EventKind::Hardware(HW_INSTRUCTIONS),
        "a note literal that is not an event name either";
    #[doc = "Native-only extra with no Table VI twin — allowed in MAPPED."]
    cache_misses: "cache-misses" => EventKind::Hardware(HW_CACHE_MISSES),
        "native-only: the simulator does not model the LLC";
}

pub const UNMAPPED: &[(&str, &str)] = &[
    (
        "dtlb_load_misses.stlb_hit",
        "generic dTLB events cannot separate STLB hits from walk-causing misses",
    ),
];

pub const ARCH_UNMAPPED: &[(&str, &str)] =
    &[("victima.hits", "simulator-only structure")];
