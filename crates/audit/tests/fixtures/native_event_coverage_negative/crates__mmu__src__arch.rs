pub const ARCH_COUNTER_SCHEMAS: &[(&str, &[&str])] = &[
    ("baseline", &[]),
    ("victima", &["victima.hits"]),
];
