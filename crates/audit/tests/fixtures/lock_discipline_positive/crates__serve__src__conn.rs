use std::io::Write;
use std::sync::Mutex;

static ORDER_A: Mutex<u64> = Mutex::new(0);
static ORDER_B: Mutex<u64> = Mutex::new(0);

pub fn forward(n: u64) {
    let a = ORDER_A.lock().unwrap();
    let b = ORDER_B.lock().unwrap();
    consume(n, *a, *b);
    drop(b);
    drop(a);
}

pub fn backward(n: u64) {
    let b = ORDER_B.lock().unwrap();
    let a = ORDER_A.lock().unwrap();
    consume(n, *a, *b);
    drop(a);
    drop(b);
}

pub struct Writer {
    stream: Mutex<Stream>,
}

impl Writer {
    pub fn send(&self, frame: &[u8]) {
        let mut stream = self.stream.lock().unwrap();
        stream.write_all(frame).unwrap();
    }
}
