fn t() {
    r(Request::Hello(h));
    r(Request::Query(f));
    r(Request::Compact);
    r(Request::StoreSegStats);
    r(Request::Shutdown);
    r(Reply::Welcome(w));
    r(Reply::QueryResult(q));
    r(Reply::Compacted(c));
    r(Reply::StoreSegStats(s));
    r(Reply::ShuttingDown);
}
