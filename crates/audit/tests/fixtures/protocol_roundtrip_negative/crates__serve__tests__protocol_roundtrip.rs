fn t() {
    r(Request::Hello(h));
    r(Request::Shutdown);
    r(Reply::Welcome(w));
    r(Reply::ShuttingDown);
}
