pub enum Request {
    Hello(Hello),
    Shutdown,
}
pub enum Reply {
    Welcome(Welcome),
    ShuttingDown,
}
