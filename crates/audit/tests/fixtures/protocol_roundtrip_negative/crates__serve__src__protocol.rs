pub enum Request {
    Hello(Hello),
    Query(QueryFilter),
    Compact,
    StoreSegStats,
    Shutdown,
}
pub enum Reply {
    Welcome(Welcome),
    QueryResult(QueryResult),
    Compacted(CompactStats),
    StoreSegStats(SegStats),
    ShuttingDown,
}
