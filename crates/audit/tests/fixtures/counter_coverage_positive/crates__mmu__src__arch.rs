pub const ARCH_COUNTER_SCHEMAS: &[(&str, &[&str])] = &[
    ("baseline", &[]),
    ("victima", &["victima.hits", "victima.fills"]),
];

impl TranslationArchitecture for VictimaArch {
    const KIND: ArchKind = ArchKind::Victima;
    fn extra_counters(&self) -> Vec<(&'static str, u64)> {
        vec![("victima.hits", self.hits), ("victima.bogus", 0)]
    }
}
