pub struct Counters {
    pub cycles: u64,
    pub bogus_event: u64,
    pub truth_retired_walks: u64,
}

impl Counters {
    pub fn cpi(&self) -> f64 {
        self.cycles as f64
    }
    pub fn events(&self) -> Vec<(&'static str, u64)> {
        vec![("cpu_clk_unhalted.thread", self.cycles)]
    }
    pub fn assert_consistent(&self) {
        assert_eq!(self.truth_retired_walks, 0);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let c = Counters { cycles: 1, truth_retired_walks: 0, ..zeroed() };
        assert!(c.cycles > 0);
        assert_eq!(c.truth_retired_walks, 0);
    }
}
