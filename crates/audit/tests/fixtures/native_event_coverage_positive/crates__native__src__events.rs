counter_group! {
    #[doc = "Retired instructions."]
    instructions: "inst_retired.any" => EventKind::Hardware(HW_INSTRUCTIONS),
        "";
}

pub const UNMAPPED: &[(&str, &str)] = &[
    (
        "inst_retired.any",
        "double-booked: also present in MAPPED above",
    ),
    (
        "ancient.event",
        "",
    ),
];

pub const ARCH_UNMAPPED: &[(&str, &str)] = &[
    (
        "victima.gone",
        "",
    ),
];
