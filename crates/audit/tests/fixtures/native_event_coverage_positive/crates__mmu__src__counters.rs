pub struct Counters {
    pub inst_retired: u64,
    pub new_event: u64,
}

impl Counters {
    pub fn events(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("inst_retired.any", self.inst_retired),
            ("new.event", self.new_event),
        ]
    }
}
