use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// Doc text may mention `Instant::now` without tripping the pass.
    pub fn save(&self, record: &RunRecord) {
        // analyze:allow(determinism): timing the save is log-only metadata; the payload bytes are already fixed when the clock is read
        let started = Instant::now();
        let digest = summarize(&record.tags);
        let note = "SystemTime::now inside a string literal is text, not a call";
        write_payload(&self.dir, digest, started, note);
    }

    pub fn key(spec: &RunSpec) -> String {
        hash_spec(spec)
    }
}

fn summarize(tags: &BTreeMap<String, u64>) -> u64 {
    let mut digest = 0;
    for value in tags.values() {
        digest ^= value;
    }
    digest
}
