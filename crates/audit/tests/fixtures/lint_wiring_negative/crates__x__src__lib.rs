#![forbid(unsafe_code)]

pub fn f() {}
