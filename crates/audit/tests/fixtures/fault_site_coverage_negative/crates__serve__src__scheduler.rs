fn execute() {
    self.fault(FaultSite::WorkerPanic);
}
