fn a() {
    arm(FaultSite::StoreWrite);
}
fn b() {
    arm(FaultSite::WorkerPanic);
}
