//! The audit's acceptance tests, run against the *real* workspace.
//!
//! The positive half pins the contract: the shipped tree has zero
//! violations, so `cargo test -p atscale-audit` fails the moment someone
//! adds a counter field without wiring it through events/formula/tests, or
//! a state mutator without invariant coverage. The negative half doctors
//! the real `counters.rs` in memory and asserts each coverage leg trips.

use atscale_audit::counters::COUNTERS_PATH;
use atscale_audit::telemetry::{ENGINE_PATH, TELEMETRY_PATH};
use atscale_audit::{run_all, run_full, SourceFile, Workspace};
use std::path::Path;

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Workspace::load(&root).expect("workspace loads")
}

#[test]
fn the_shipped_workspace_is_clean() {
    let ws = real_workspace();
    for audit in run_all(&ws) {
        assert!(
            audit.violations.is_empty(),
            "rule `{}` found violations:\n{}",
            audit.rule,
            audit
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(audit.checked > 0, "rule `{}` ran no checks", audit.rule);
    }
}

#[test]
fn the_analysis_passes_are_not_vacuous() {
    // A clean audit is only meaningful if the passes actually found their
    // anchors in the real tree: the determinism sinks resolved, functions
    // are tainted by them, locks were discovered, and the panic roots
    // exist with real catch_unwind containment behind them. If a rename
    // silently broke an anchor, the passes would pass on an empty graph.
    let outcome = run_full(&real_workspace());
    let r = &outcome.report;
    assert!(
        r.determinism.sinks.len() >= 2,
        "determinism sinks did not resolve: {:?}",
        r.determinism.sinks
    );
    assert!(
        r.determinism.tainted.len() >= 5,
        "almost nothing reaches the determinism sinks: {:?}",
        r.determinism.tainted
    );
    assert!(
        !r.determinism.allows.is_empty(),
        "the tree carries determinism allows; the pass saw none"
    );
    assert!(
        r.locks.declared.iter().any(|l| l.contains("SchedState"))
            || r.locks.declared.iter().any(|l| l.contains("Scheduler")),
        "the scheduler state lock was not discovered: {:?}",
        r.locks.declared
    );
    assert!(
        !r.locks.edges.is_empty(),
        "no lock-order edges found — nested acquisition exists in the tree"
    );
    assert!(r.locks.cycles.is_empty(), "cycles: {:?}", r.locks.cycles);
    assert!(
        !r.panics.roots.is_empty(),
        "no panic roots resolved — the worker/connection entry points moved"
    );
    assert!(
        r.panics.contained > 0,
        "no panic site is contained by catch_unwind — the containment \
         detection or the scheduler boundary broke"
    );
}

/// Doctors the real counters.rs with `edit` and returns all violations.
fn violations_after(edit: impl Fn(&str) -> String) -> Vec<String> {
    let mut ws = real_workspace();
    let file = ws
        .files
        .iter_mut()
        .find(|f| f.path.ends_with(COUNTERS_PATH))
        .expect("counters.rs present");
    *file = SourceFile::new(file.path.clone(), edit(&file.text));
    run_all(&ws)
        .into_iter()
        .flat_map(|a| a.violations)
        .map(|v| v.to_string())
        .collect()
}

#[test]
fn adding_a_counter_without_wiring_fails_every_coverage_leg() {
    // A new PMU field nobody exports, consumes, or tests.
    let violations = violations_after(|src| {
        src.replace(
            "pub inst_retired: u64,",
            "pub inst_retired: u64,\n    pub unwired_event: u64,",
        )
    });
    assert!(
        violations
            .iter()
            .any(|v| v.contains("`unwired_event`") && v.contains("events()")),
        "missing events() violation in {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.contains("`unwired_event`") && v.contains("formula")),
        "missing formula violation in {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.contains("`unwired_event`") && v.contains("never exercised by a test")),
        "missing test violation in {violations:?}"
    );
}

#[test]
fn dropping_a_field_from_events_is_caught() {
    let violations =
        violations_after(|src| src.replace("(\"machine_clears.count\", self.machine_clears),", ""));
    assert!(
        violations
            .iter()
            .any(|v| v.contains("`machine_clears`") && v.contains("events()")),
        "missing events() violation in {violations:?}"
    );
}

#[test]
fn dropping_the_ground_truth_checks_is_caught() {
    // Sever `truth_aborted_walks` from both consistency paths. The field
    // keeps its formula reads (engine bumps aside, `first_regression_since`
    // is not a consistency check), so only the truth rule should fire.
    // The doctored source only has to fool the text scan, not compile.
    let violations = violations_after(|src| {
        src.replace("== self.truth_aborted_walks", "== 0")
            .replace("o.aborted, self.truth_aborted_walks,", "o.aborted, 0,")
            .replace("+ self.truth_aborted_walks", "")
            .replace("self.truth_aborted_walks\n        );", "0\n        );")
    });
    assert!(
        violations
            .iter()
            .any(|v| v.contains("truth_aborted_walks") && v.contains("validate")),
        "missing ground-truth violation in {violations:?}"
    );
}

#[test]
fn removing_the_lint_opt_in_is_caught() {
    let mut ws = real_workspace();
    let file = ws
        .files
        .iter_mut()
        .find(|f| f.path == "crates/mmu/Cargo.toml")
        .expect("mmu manifest present");
    *file = SourceFile::new(
        file.path.clone(),
        file.text.replace("[lints]\nworkspace = true", ""),
    );
    let violations: Vec<String> = run_all(&ws)
        .into_iter()
        .flat_map(|a| a.violations)
        .map(|v| v.to_string())
        .collect();
    assert!(
        violations
            .iter()
            .any(|v| v.contains("crates/mmu/Cargo.toml") && v.contains("[lints]")),
        "missing lint-wiring violation in {violations:?}"
    );
}

/// Doctors the real file at `path` with `edit` and returns all violations.
fn violations_after_editing(path: &str, edit: impl Fn(&str) -> String) -> Vec<String> {
    let mut ws = real_workspace();
    let file = ws
        .files
        .iter_mut()
        .find(|f| f.path.ends_with(path))
        .unwrap_or_else(|| panic!("{path} present"));
    *file = SourceFile::new(file.path.clone(), edit(&file.text));
    run_all(&ws)
        .into_iter()
        .flat_map(|a| a.violations)
        .map(|v| v.to_string())
        .collect()
}

#[test]
fn dropping_a_truth_field_from_the_sampler_is_caught() {
    // Sever `truth_aborted_walks` from the sample stream: truth fields are
    // not in events(), so counter_sample is their only telemetry route.
    let violations = violations_after_editing(TELEMETRY_PATH, |src| {
        src.replace("cur.truth_aborted_walks", "0")
    });
    assert!(
        violations
            .iter()
            .any(|v| v.contains("truth_aborted_walks") && v.contains("counter_sample")),
        "missing telemetry-coverage violation in {violations:?}"
    );
}

#[test]
fn unwiring_the_final_sample_from_the_engine_is_caught() {
    let violations = violations_after_editing(ENGINE_PATH, |src| {
        src.replace("self.telemetry.take_final_sample", "noop")
    });
    assert!(
        violations
            .iter()
            .any(|v| v.contains("take_final_sample") && v.contains("unwired")),
        "missing engine-wiring violation in {violations:?}"
    );
}

#[test]
fn an_uncovered_state_mutator_is_caught() {
    let mut ws = real_workspace();
    ws.files.push(SourceFile::new(
        "crates/mmu/src/rogue.rs".to_string(),
        "impl RogueState { pub fn mutate(&mut self) { self.n += 1; } }".to_string(),
    ));
    let violations: Vec<String> = run_all(&ws)
        .into_iter()
        .flat_map(|a| a.violations)
        .map(|v| v.to_string())
        .collect();
    assert!(
        violations.iter().any(|v| v.contains("RogueState::mutate")),
        "missing invariant-annotation violation in {violations:?}"
    );
}
