//! The golden fixture corpus: every lint is pinned by positive fixtures
//! (deliberately-violating sources with exact expected findings) and
//! negative fixtures (near-miss sources that must stay clean).
//!
//! Each directory under `tests/fixtures/` is one case. Every file in it
//! except `expected.txt` becomes one workspace file; the workspace path is
//! the filename with `__` decoded to `/` (so `crates__serve__src__x.rs`
//! lands at `crates/serve/src/x.rs` — directives inside the sources would
//! shift line numbers, filenames don't). `expected.txt` starts with a
//! `#!rules: a,b` header naming the rules to run, followed by the exact
//! `Violation` display strings the case must produce — nothing more
//! (false positives fail the corpus), nothing less (false negatives too).

use atscale_audit::graph::Analysis;
use atscale_audit::{
    audit_counter_coverage, audit_fault_site_coverage, audit_hot_path_allocation,
    audit_invariant_annotations, audit_lint_wiring, audit_native_event_coverage,
    audit_protocol_roundtrip, audit_telemetry_coverage,
};
use atscale_audit::{passes, Audit, SourceFile, Workspace};
use std::fs;
use std::path::{Path, PathBuf};

fn run_rule(rule: &str, ws: &Workspace, a: &Analysis) -> Audit {
    match rule {
        "counter-coverage" => audit_counter_coverage(ws),
        "invariant-annotation" => audit_invariant_annotations(ws),
        "lint-wiring" => audit_lint_wiring(ws),
        "telemetry-coverage" => audit_telemetry_coverage(ws),
        "protocol-roundtrip" => audit_protocol_roundtrip(ws),
        "hot-path-allocation" => audit_hot_path_allocation(ws),
        "fault-site-coverage" => audit_fault_site_coverage(ws),
        "native-event-coverage" => audit_native_event_coverage(ws),
        "determinism-taint" => passes::determinism_taint(a).0,
        "lock-discipline" => passes::lock_discipline(a).0,
        "panic-surface" => passes::panic_surface(a).0,
        "analyze-allowlist" => passes::allow_exemptions(ws, a),
        other => panic!("unknown rule `{other}` in a fixture header"),
    }
}

fn case_dirs() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&root)
        .expect("tests/fixtures exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    assert!(!dirs.is_empty(), "fixture corpus is empty");
    dirs
}

fn run_case(dir: &Path) -> Result<(), String> {
    let mut files = Vec::new();
    let mut expected_text = None;
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("case dir readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().expect("file name").to_string_lossy();
        let text = fs::read_to_string(&path).expect("fixture file readable");
        if name == "expected.txt" {
            expected_text = Some(text);
        } else {
            files.push(SourceFile::new(name.replace("__", "/"), text));
        }
    }
    let expected_text = expected_text.expect("case has an expected.txt");
    let mut lines = expected_text.lines();
    let rules: Vec<&str> = lines
        .next()
        .and_then(|h| h.strip_prefix("#!rules:"))
        .expect("expected.txt starts with `#!rules: ...`")
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .collect();
    assert!(!rules.is_empty(), "{}: no rules named", dir.display());
    let mut want: Vec<String> = lines
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    let ws = Workspace {
        root: dir.to_path_buf(),
        files,
    };
    let analysis = Analysis::build(&ws);
    let mut got = Vec::new();
    for rule in rules {
        let audit = run_rule(rule, &ws, &analysis);
        assert!(
            audit.checked > 0,
            "{}: rule `{rule}` ran no checks",
            dir.display()
        );
        got.extend(audit.violations.iter().map(ToString::to_string));
    }
    got.sort();
    want.sort();
    if got == want {
        return Ok(());
    }
    let missing: Vec<&String> = want.iter().filter(|w| !got.contains(w)).collect();
    let extra: Vec<&String> = got.iter().filter(|g| !want.contains(g)).collect();
    Err(format!(
        "case {}:\n  false negatives (expected, not found):\n{}\n  \
         false positives (found, not expected):\n{}",
        dir.display(),
        missing
            .iter()
            .map(|m| format!("    {m}"))
            .collect::<Vec<_>>()
            .join("\n"),
        extra
            .iter()
            .map(|e| format!("    {e}"))
            .collect::<Vec<_>>()
            .join("\n"),
    ))
}

#[test]
fn golden_fixture_corpus() {
    let mut failures = Vec::new();
    for dir in case_dirs() {
        if let Err(report) = run_case(&dir) {
            failures.push(report);
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n\n"));
}

#[test]
fn every_lint_has_positive_and_negative_coverage() {
    // The corpus must stay two-sided: for every rule exercised anywhere,
    // at least one case expects findings from it and at least one case
    // runs it expecting none.
    let mut has_positive = std::collections::BTreeMap::new();
    let mut has_negative = std::collections::BTreeMap::new();
    for dir in case_dirs() {
        let text = fs::read_to_string(dir.join("expected.txt")).expect("expected.txt");
        let mut lines = text.lines();
        let rules: Vec<String> = lines
            .next()
            .and_then(|h| h.strip_prefix("#!rules:"))
            .expect("header")
            .split(',')
            .map(|r| r.trim().to_string())
            .collect();
        let findings: Vec<&str> = lines
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .collect();
        for rule in rules {
            let fired = findings.iter().any(|f| f.starts_with(&format!("[{rule}]")));
            if fired {
                has_positive.insert(rule, true);
            } else {
                has_negative.insert(rule, true);
            }
        }
    }
    for rule in [
        "counter-coverage",
        "invariant-annotation",
        "lint-wiring",
        "telemetry-coverage",
        "protocol-roundtrip",
        "hot-path-allocation",
        "fault-site-coverage",
        "determinism-taint",
        "lock-discipline",
        "panic-surface",
        "analyze-allowlist",
    ] {
        assert!(
            has_positive.contains_key(rule),
            "no positive fixture for `{rule}`"
        );
        assert!(
            has_negative.contains_key(rule),
            "no negative fixture for `{rule}`"
        );
    }
}
