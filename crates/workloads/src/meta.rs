//! Per-program dynamics profiles.
//!
//! The paper stresses (Fig. 5 discussion) that a workload's *dynamics* —
//! the composition of its dynamic instruction stream — determine how much
//! translation latency reaches the critical path. These profiles encode
//! each program's character:
//!
//! * graph kernels: branchy, decent memory-level parallelism (independent
//!   neighbour accesses), moderate base CPI;
//! * `mcf`: pointer-chasing network simplex — almost no MLP, branch
//!   outcomes depend on loaded data;
//! * `memcached`: request-handling code with hash-and-chain dependencies;
//! * `streamcluster`: dense floating-point streaming, superb MLP, few
//!   mispredicts.

use atscale_mmu::WorkloadProfile;

/// Profile for GAPBS `bc`, `bfs`, `cc`, `pr` (edge-centric graph kernels).
pub fn graph_profile() -> WorkloadProfile {
    WorkloadProfile {
        base_cpi: 0.55,
        mlp: 3.0,
        store_walk_exposure: 0.5,
        mispredicts_per_kinstr: 3.5,
        clears_base_per_kinstr: 0.02,
        dep_load_prob: 0.5,
    }
}

/// Profile for GAPBS `tc` (set-intersection heavy, more compare branches).
pub fn tc_profile() -> WorkloadProfile {
    WorkloadProfile {
        base_cpi: 0.5,
        mlp: 3.0,
        store_walk_exposure: 0.5,
        mispredicts_per_kinstr: 8.0,
        clears_base_per_kinstr: 0.02,
        dep_load_prob: 0.45,
    }
}

/// Profile for SPEC `mcf` (serialised pointer chasing).
pub fn mcf_profile() -> WorkloadProfile {
    WorkloadProfile {
        base_cpi: 0.7,
        mlp: 1.4,
        store_walk_exposure: 0.6,
        mispredicts_per_kinstr: 9.0,
        clears_base_per_kinstr: 0.03,
        dep_load_prob: 0.7,
    }
}

/// Profile for `memcached` request handling.
pub fn memcached_profile() -> WorkloadProfile {
    WorkloadProfile {
        base_cpi: 0.8,
        mlp: 2.5,
        store_walk_exposure: 0.5,
        mispredicts_per_kinstr: 3.5,
        clears_base_per_kinstr: 0.025,
        dep_load_prob: 0.5,
    }
}

/// Profile for PARSEC `streamcluster` (dense FP streaming).
pub fn streamcluster_profile() -> WorkloadProfile {
    WorkloadProfile {
        base_cpi: 0.5,
        mlp: 6.0,
        store_walk_exposure: 0.4,
        mispredicts_per_kinstr: 1.5,
        clears_base_per_kinstr: 0.015,
        dep_load_prob: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in [
            graph_profile(),
            tc_profile(),
            mcf_profile(),
            memcached_profile(),
            streamcluster_profile(),
        ] {
            p.validate();
        }
    }

    #[test]
    fn mcf_has_least_parallelism() {
        assert!(mcf_profile().mlp < graph_profile().mlp);
        assert!(mcf_profile().mlp < streamcluster_profile().mlp);
    }

    #[test]
    fn streamcluster_is_least_speculative() {
        let sc = streamcluster_profile();
        for other in [graph_profile(), tc_profile(), mcf_profile()] {
            assert!(sc.mispredicts_per_kinstr < other.mispredicts_per_kinstr);
        }
    }
}
