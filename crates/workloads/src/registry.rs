//! The paper's 13 workload–generator combinations (Table I × Table II).

use crate::models::{GraphGen, GraphKernel, GraphModel, KvModel, McfModel, StreamclusterModel};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Program under study (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Program {
    Bc,
    Bfs,
    Cc,
    Pr,
    Tc,
    Mcf,
    Memcached,
    Streamcluster,
}

impl Program {
    /// Lowercase program name.
    pub const fn name(self) -> &'static str {
        match self {
            Program::Bc => "bc",
            Program::Bfs => "bfs",
            Program::Cc => "cc",
            Program::Pr => "pr",
            Program::Tc => "tc",
            Program::Mcf => "mcf",
            Program::Memcached => "memcached",
            Program::Streamcluster => "streamcluster",
        }
    }

    /// Benchmark suite the program comes from.
    pub const fn suite(self) -> &'static str {
        match self {
            Program::Bc | Program::Bfs | Program::Cc | Program::Pr | Program::Tc => "gapbs",
            Program::Memcached => "ycsb",
            Program::Mcf => "spec2006",
            Program::Streamcluster => "parsec",
        }
    }
}

/// Input generator (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Generator {
    Urand,
    Kron,
    Uniform,
    Rand,
}

impl Generator {
    /// Lowercase generator name.
    pub const fn name(self) -> &'static str {
        match self {
            Generator::Urand => "urand",
            Generator::Kron => "kron",
            Generator::Uniform => "uniform",
            Generator::Rand => "rand",
        }
    }
}

/// A workload identity: `program-generator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkloadId {
    /// The program.
    pub program: Program,
    /// The input generator.
    pub generator: Generator,
}

impl WorkloadId {
    /// Creates an identity.
    ///
    /// # Panics
    ///
    /// Panics for combinations the paper does not study (e.g. `mcf-kron`).
    pub fn new(program: Program, generator: Generator) -> Self {
        let id = WorkloadId { program, generator };
        assert!(
            Self::all().contains(&id),
            "{}-{} is not one of the paper's workloads",
            program.name(),
            generator.name()
        );
        id
    }

    /// All 13 combinations the paper studies.
    pub fn all() -> Vec<WorkloadId> {
        let mut ids = Vec::with_capacity(13);
        for program in [
            Program::Bc,
            Program::Bfs,
            Program::Cc,
            Program::Pr,
            Program::Tc,
        ] {
            for generator in [Generator::Urand, Generator::Kron] {
                ids.push(WorkloadId { program, generator });
            }
        }
        ids.push(WorkloadId {
            program: Program::Mcf,
            generator: Generator::Rand,
        });
        ids.push(WorkloadId {
            program: Program::Memcached,
            generator: Generator::Uniform,
        });
        ids.push(WorkloadId {
            program: Program::Streamcluster,
            generator: Generator::Rand,
        });
        ids
    }

    /// Parses `"program-generator"` labels.
    ///
    /// # Example
    ///
    /// ```
    /// use atscale_workloads::WorkloadId;
    ///
    /// let id = WorkloadId::parse("cc-urand").unwrap();
    /// assert_eq!(id.to_string(), "cc-urand");
    /// assert!(WorkloadId::parse("mcf-kron").is_none());
    /// ```
    pub fn parse(label: &str) -> Option<WorkloadId> {
        WorkloadId::all()
            .into_iter()
            .find(|id| id.to_string() == label)
    }

    /// Builds the paper-scale model of this workload at the given nominal
    /// footprint, seeded for reproducibility.
    pub fn build_model(&self, footprint_bytes: u64, seed: u64) -> Box<dyn Workload> {
        let gg = match self.generator {
            Generator::Urand => Some(GraphGen::Urand),
            Generator::Kron => Some(GraphGen::Kron),
            _ => None,
        };
        match self.program {
            Program::Bc => Box::new(GraphModel::new(
                GraphKernel::Bc,
                gg.expect("graph generator"),
                footprint_bytes,
                seed,
            )),
            Program::Bfs => Box::new(GraphModel::new(
                GraphKernel::Bfs,
                gg.expect("graph generator"),
                footprint_bytes,
                seed,
            )),
            Program::Cc => Box::new(GraphModel::new(
                GraphKernel::Cc,
                gg.expect("graph generator"),
                footprint_bytes,
                seed,
            )),
            Program::Pr => Box::new(GraphModel::new(
                GraphKernel::Pr,
                gg.expect("graph generator"),
                footprint_bytes,
                seed,
            )),
            Program::Tc => Box::new(GraphModel::new(
                GraphKernel::Tc,
                gg.expect("graph generator"),
                footprint_bytes,
                seed,
            )),
            Program::Mcf => Box::new(McfModel::new(footprint_bytes, seed)),
            Program::Memcached => Box::new(KvModel::new(footprint_bytes, seed)),
            Program::Streamcluster => Box::new(StreamclusterModel::new(footprint_bytes, seed)),
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.program.name(), self.generator.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_vm::{AddressSpace, BackingPolicy, PageSize};

    #[test]
    fn there_are_exactly_thirteen_workloads() {
        let all = WorkloadId::all();
        assert_eq!(all.len(), 13);
        let labels: Vec<String> = all.iter().map(ToString::to_string).collect();
        for expected in [
            "bc-urand",
            "bc-kron",
            "bfs-urand",
            "bfs-kron",
            "cc-urand",
            "cc-kron",
            "pr-urand",
            "pr-kron",
            "tc-urand",
            "tc-kron",
            "mcf-rand",
            "memcached-uniform",
            "streamcluster-rand",
        ] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn parse_roundtrips_every_workload() {
        for id in WorkloadId::all() {
            assert_eq!(WorkloadId::parse(&id.to_string()), Some(id));
        }
        assert!(WorkloadId::parse("nonsense").is_none());
    }

    #[test]
    #[should_panic(expected = "not one of the paper's workloads")]
    fn invalid_combination_panics() {
        WorkloadId::new(Program::Mcf, Generator::Kron);
    }

    #[test]
    fn every_model_builds_and_runs() {
        use atscale_mmu::CountingSink;
        for id in WorkloadId::all() {
            let mut w = id.build_model(4 << 20, 1);
            assert_eq!(w.label(), id.to_string());
            let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
            w.setup(&mut space).unwrap();
            let mut sink = CountingSink::with_budget(5_000);
            w.run(&mut sink);
            assert!(sink.loads > 300, "{id}: only {} loads", sink.loads);
        }
    }

    #[test]
    fn suites_match_table_i() {
        assert_eq!(Program::Pr.suite(), "gapbs");
        assert_eq!(Program::Mcf.suite(), "spec2006");
        assert_eq!(Program::Memcached.suite(), "ycsb");
        assert_eq!(Program::Streamcluster.suite(), "parsec");
    }
}
