//! Access-pattern model of SPEC `mcf` (network simplex).
//!
//! `mcf` is the paper's most translation-hostile workload: its network
//! simplex alternates a sequential arc-pricing scan with *dependent*
//! pointer chases through the node tree (computing potentials along basis
//! paths). The chases are serialised — each node load produces the pointer
//! for the next — so the profile's MLP is near 1 and walk latency lands
//! squarely on the critical path. TLB misses per access keep growing with
//! footprint with no sign of saturation (paper Fig. 6), and at very large
//! footprints PTEs "outcompete" regular data in the cache hierarchy,
//! *lowering* the average PTE latency (paper §V-C).

use super::Region;
use crate::meta;
use crate::workload::Workload;
use atscale_gen::zipf::Zipf;
use atscale_mmu::{AccessSink, WorkloadProfile};
use atscale_vm::{AddressSpace, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Probability an arc triggers a basis-path pointer chase.
const CHASE_PROB: f64 = 0.3;

/// Mean chase depth (geometric).
const CHASE_CONTINUE: f64 = 0.55;

/// Probability an arc wins pricing and triggers a pivot.
const PIVOT_PROB: f64 = 0.02;

/// Skew of node-visit popularity. The basis tree's upper levels are hot;
/// a mild Zipf over nodes means the touched set keeps growing with the
/// instance — the paper's "mcf keeps rising with no sign of levelling off"
/// TLB behaviour — instead of saturating immediately.
const NODE_THETA: f64 = 0.35;

struct Layout {
    arcs: Region,
    nodes: Region,
    hot: Region,
}

/// The mcf-rand model.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::models::McfModel;
/// use atscale_workloads::Workload;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut model = McfModel::new(8 << 20, 3);
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// model.setup(&mut space)?;
/// let mut sink = CountingSink::with_budget(5_000);
/// model.run(&mut sink);
/// assert!(sink.loads > 1_000);
/// # Ok(())
/// # }
/// ```
pub struct McfModel {
    footprint: u64,
    rng: SmallRng,
    zipf: Zipf,
    layout: Option<Layout>,
}

impl McfModel {
    /// Creates an instance with ≈`footprint` bytes of network data.
    pub fn new(footprint: u64, seed: u64) -> Self {
        let node_slots = (footprint * 30 / 100 / 8).max(1024);
        McfModel {
            footprint,
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(node_slots, NODE_THETA),
            layout: None,
        }
    }

    /// A skew-weighted node address: hot tree levels get most visits, but
    /// the tail keeps growing with the instance.
    fn node_slot(&mut self) -> atscale_vm::VirtAddr {
        let rank = self.zipf.sample(&mut self.rng);
        let layout = self.layout.as_ref().expect("setup ran");
        layout.nodes.scattered(rank)
    }

    /// Nominal footprint requested at construction.
    pub fn nominal_footprint(&self) -> u64 {
        self.footprint
    }
}

impl Workload for McfModel {
    fn program(&self) -> &'static str {
        "mcf"
    }

    fn generator(&self) -> &'static str {
        "rand"
    }

    fn profile(&self) -> WorkloadProfile {
        meta::mcf_profile()
    }

    fn setup(&mut self, space: &mut AddressSpace) -> Result<(), VmError> {
        // SPEC mcf's memory is dominated by the arc array, with node
        // structures around a third of the total.
        let arcs = Region::new(&space.alloc_heap("net.arcs", self.footprint * 70 / 100)?);
        let nodes = Region::new(&space.alloc_heap("net.nodes", self.footprint * 30 / 100)?);
        let hot = Region::new(&space.alloc_heap("stack", 64 << 10)?);
        arcs.touch_all(space);
        nodes.touch_all(space);
        hot.touch_all(space);
        let mut layout = Layout { arcs, nodes, hot };
        layout.arcs.randomize_cursor(&mut self.rng);
        self.layout = Some(layout);
        Ok(())
    }

    fn run(&mut self, sink: &mut dyn AccessSink) {
        assert!(self.layout.is_some(), "setup() must run before run()");
        while !sink.done() {
            self.step_arc(sink);
        }
    }
}

impl McfModel {
    /// One arc of the pricing scan.
    fn step_arc(&mut self, sink: &mut dyn AccessSink) {
        // Arc structs are 64 bytes; pricing reads cost+state (two fields).
        {
            let layout = self.layout.as_mut().expect("setup ran");
            let arc = layout.arcs.seq(64);
            sink.load(arc);
            sink.load(arc.add(32));
            sink.load(layout.hot.seq(64));
        }
        sink.instructions(6);
        // Reduced-cost computation needs node potentials along the basis
        // path: a serialised pointer chase.
        if self.rng.gen::<f64>() < CHASE_PROB {
            loop {
                let node = self.node_slot();
                sink.load(node);
                sink.instructions(3);
                if self.rng.gen::<f64>() >= CHASE_CONTINUE {
                    break;
                }
            }
        }
        // A winning arc pivots: rethread the tree (loads + stores).
        if self.rng.gen::<f64>() < PIVOT_PROB {
            for _ in 0..8 {
                let node = self.node_slot();
                let arc = {
                    let layout = self.layout.as_ref().expect("setup ran");
                    layout.arcs.random(&mut self.rng)
                };
                sink.load(node);
                sink.load(arc);
                if self.rng.gen::<f64>() < 0.5 {
                    sink.store(node);
                }
                sink.instructions(5);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    #[test]
    fn emits_mixed_load_store_stream() {
        let mut model = McfModel::new(8 << 20, 11);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let mut sink = CountingSink::with_budget(50_000);
        model.run(&mut sink);
        assert!(sink.loads > 10_000);
        assert!(sink.stores > 50, "pivots produce stores: {}", sink.stores);
        assert!(sink.instructions > sink.loads, "mcf is not pure memory ops");
    }

    #[test]
    fn footprint_split_touches_both_regions() {
        let mut model = McfModel::new(16 << 20, 1);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let stats = space.stats();
        assert!(stats.data_bytes as f64 > (16 << 20) as f64 * 0.9);
        assert_eq!(stats.segments, 3, "arcs + nodes + stack");
    }

    #[test]
    fn profile_is_low_mlp() {
        let model = McfModel::new(1 << 20, 0);
        assert!(model.profile().mlp < 2.0);
        assert_eq!(model.label(), "mcf-rand");
    }
}
