//! Access-pattern models for the five GAPBS graph kernels.
//!
//! All five kernels share a CSR-style layout — an `offsets` array, a large
//! `edges` array (16 edges/vertex, the GAPBS default), and per-vertex value
//! arrays — and differ in how they traverse it:
//!
//! * `pr` streams the edge array and gathers per-vertex contributions;
//! * `cc` streams edges and hits both endpoints' component labels;
//! * `bfs` pops frontier vertices, scans their adjacency runs, and probes a
//!   visited bitmap (direction-optimisation keeps the probe rate modest);
//! * `bc` is BFS plus a dependency-accumulation phase over float arrays;
//! * `tc` intersects pairs of sorted adjacency runs — overwhelmingly
//!   sequential, and on `kron` inputs concentrated on the high-degree core
//!   thanks to GAPBS's degree-ordering optimisation (the mechanism behind
//!   the paper's `tc-kron` exception).
//!
//! The `urand`/`kron` distinction enters through endpoint sampling: uniform
//! for `urand`, Zipf-skewed over *scattered* addresses for `kron` (hubs are
//! popular but live on pages shared with cold vertices).

use super::Region;
use crate::meta;
use crate::workload::Workload;
use atscale_gen::zipf::Zipf;
use atscale_mmu::{AccessSink, WorkloadProfile};
use atscale_vm::{AddressSpace, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which GAPBS kernel to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKernel {
    /// Betweenness centrality.
    Bc,
    /// Breadth-first search (direction-optimising).
    Bfs,
    /// Connected components.
    Cc,
    /// PageRank.
    Pr,
    /// Triangle counting (degree-ordered).
    Tc,
}

impl GraphKernel {
    /// Kernel name as used in workload labels.
    pub const fn name(self) -> &'static str {
        match self {
            GraphKernel::Bc => "bc",
            GraphKernel::Bfs => "bfs",
            GraphKernel::Cc => "cc",
            GraphKernel::Pr => "pr",
            GraphKernel::Tc => "tc",
        }
    }
}

/// Which input generator shapes the endpoint distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphGen {
    /// GAPBS `-u`: uniform endpoints.
    Urand,
    /// GAPBS `-g`: Kronecker/RMAT, heavy-tailed endpoints.
    Kron,
}

impl GraphGen {
    /// Generator name as used in workload labels.
    pub const fn name(self) -> &'static str {
        match self {
            GraphGen::Urand => "urand",
            GraphGen::Kron => "kron",
        }
    }
}

/// GAPBS default degree (edges per vertex).
const DEGREE: u64 = 16;

/// Zipf skew approximating RMAT endpoint popularity.
const KRON_THETA: f64 = 0.6;

/// Stronger effective skew for `tc-kron`: degree-ordering concentrates
/// intersection work on the hub core.
const TC_KRON_THETA: f64 = 0.88;

struct Arrays {
    offsets: Region,
    edges: Region,
    vdata: Option<Region>,
    vdata2: Option<Region>,
    bitmap: Option<Region>,
    frontier: Option<Region>,
    /// Stack/locals: the hot accesses every real instruction stream is
    /// diluted with. Always TLB- and mostly L1-resident.
    hot: Region,
}

/// A paper-scale model of one GAPBS kernel on one generator.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::models::{GraphGen, GraphKernel, GraphModel};
/// use atscale_workloads::Workload;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut model = GraphModel::new(GraphKernel::Pr, GraphGen::Urand, 8 << 20, 42);
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// model.setup(&mut space)?;
/// let mut sink = CountingSink::with_budget(10_000);
/// model.run(&mut sink);
/// assert!(sink.loads > 2_000);
/// # Ok(())
/// # }
/// ```
pub struct GraphModel {
    kernel: GraphKernel,
    gen: GraphGen,
    footprint: u64,
    n_vertices: u64,
    rng: SmallRng,
    zipf: Option<Zipf>,
    arrays: Option<Arrays>,
}

impl GraphModel {
    /// Creates a model instance sized so the mapped working set is
    /// approximately `footprint` bytes.
    pub fn new(kernel: GraphKernel, gen: GraphGen, footprint: u64, seed: u64) -> Self {
        let bpv = Self::bytes_per_vertex(kernel);
        let n_vertices = (footprint / bpv).max(1024);
        let theta = match (kernel, gen) {
            (_, GraphGen::Urand) => None,
            (GraphKernel::Tc, GraphGen::Kron) => Some(TC_KRON_THETA),
            (_, GraphGen::Kron) => Some(KRON_THETA),
        };
        GraphModel {
            kernel,
            gen,
            footprint,
            n_vertices,
            rng: SmallRng::seed_from_u64(seed),
            zipf: theta.map(|t| Zipf::new(n_vertices, t)),
            arrays: None,
        }
    }

    /// Vertices in the modelled graph.
    pub fn vertices(&self) -> u64 {
        self.n_vertices
    }

    /// Nominal footprint requested at construction.
    pub fn nominal_footprint(&self) -> u64 {
        self.footprint
    }

    fn bytes_per_vertex(kernel: GraphKernel) -> u64 {
        // offsets (8) + edges (8·16) everywhere; value arrays per kernel.
        match kernel {
            GraphKernel::Pr => 8 + 8 * DEGREE + 8 + 8,
            GraphKernel::Cc => 8 + 8 * DEGREE + 8,
            GraphKernel::Bfs => 8 + 8 * DEGREE + 8 + 1,
            GraphKernel::Bc => 8 + 8 * DEGREE + 8 + 8 + 8 + 1,
            GraphKernel::Tc => 8 + 8 * DEGREE,
        }
    }

    /// Samples an endpoint vertex id according to the generator.
    #[inline]
    fn endpoint(&mut self) -> u64 {
        match &self.zipf {
            None => self.rng.gen_range(0..self.n_vertices),
            Some(z) => z.sample(&mut self.rng),
        }
    }

    /// Address of a sampled endpoint's slot in a per-vertex array.
    ///
    /// Uniform endpoints map uniformly; skewed endpoints are scattered so
    /// hub slots share pages with cold slots (real vertex ids are permuted).
    #[inline]
    fn endpoint_slot(&mut self, which: Which) -> atscale_vm::VirtAddr {
        let e = self.endpoint();
        let arrays = self.arrays.as_ref().expect("setup() must run first");
        let region = match which {
            Which::VData => arrays.vdata.as_ref().expect("kernel uses vdata"),
            Which::VData2 => arrays.vdata2.as_ref().expect("kernel uses vdata2"),
            Which::Offsets => &arrays.offsets,
            Which::Bitmap => arrays.bitmap.as_ref().expect("kernel uses bitmap"),
        };
        match self.gen {
            GraphGen::Urand => {
                let slots = region.len() / 8;
                region.at((e % slots) * 8)
            }
            GraphGen::Kron => region.scattered(e),
        }
    }
}

#[derive(Clone, Copy)]
enum Which {
    VData,
    VData2,
    Offsets,
    Bitmap,
}

impl Workload for GraphModel {
    fn program(&self) -> &'static str {
        self.kernel.name()
    }

    fn generator(&self) -> &'static str {
        self.gen.name()
    }

    fn profile(&self) -> WorkloadProfile {
        match self.kernel {
            GraphKernel::Tc => meta::tc_profile(),
            _ => meta::graph_profile(),
        }
    }

    fn setup(&mut self, space: &mut AddressSpace) -> Result<(), VmError> {
        let n = self.n_vertices;
        let alloc = |space: &mut AddressSpace, name, bytes: u64| -> Result<Region, VmError> {
            let seg = space.alloc_heap(name, bytes.max(4096))?;
            Ok(Region::new(&seg))
        };
        let offsets = alloc(space, "csr.offsets", (n + 1) * 8)?;
        let edges = alloc(space, "csr.edges", n * DEGREE * 8)?;
        let vdata = match self.kernel {
            GraphKernel::Tc => None,
            _ => Some(alloc(space, "vdata", n * 8)?),
        };
        let vdata2 = match self.kernel {
            GraphKernel::Pr | GraphKernel::Bc => Some(alloc(space, "vdata2", n * 8)?),
            _ => None,
        };
        let bitmap = match self.kernel {
            GraphKernel::Bfs | GraphKernel::Bc => Some(alloc(space, "visited", n / 8 + 8)?),
            _ => None,
        };
        let frontier = match self.kernel {
            GraphKernel::Bfs | GraphKernel::Bc => Some(alloc(space, "frontier", n * 8)?),
            _ => None,
        };
        let hot = alloc(space, "stack", 64 << 10)?;
        let mut arrays = Arrays {
            offsets,
            edges,
            vdata,
            vdata2,
            bitmap,
            frontier,
            hot,
        };
        arrays.hot.touch_all(space);
        // Build phase: fault in the whole instance.
        arrays.offsets.touch_all(space);
        arrays.edges.touch_all(space);
        for r in [
            &arrays.vdata,
            &arrays.vdata2,
            &arrays.bitmap,
            &arrays.frontier,
        ]
        .into_iter()
        .flatten()
        {
            r.touch_all(space);
        }
        // Sampled window: sequential cursors start mid-stream.
        arrays.edges.randomize_cursor(&mut self.rng);
        arrays.offsets.randomize_cursor(&mut self.rng);
        if let Some(f) = arrays.frontier.as_mut() {
            f.randomize_cursor(&mut self.rng);
        }
        if let Some(v) = arrays.vdata2.as_mut() {
            v.randomize_cursor(&mut self.rng);
        }
        self.arrays = Some(arrays);
        Ok(())
    }

    fn run(&mut self, sink: &mut dyn AccessSink) {
        assert!(self.arrays.is_some(), "setup() must run before run()");
        while !sink.done() {
            match self.kernel {
                GraphKernel::Pr => self.step_pr(sink),
                GraphKernel::Cc => self.step_cc(sink),
                GraphKernel::Bfs => self.step_bfs(sink, false),
                GraphKernel::Bc => self.step_bfs(sink, true),
                GraphKernel::Tc => self.step_tc(sink),
            }
        }
    }
}

impl GraphModel {
    /// Emits one hot (stack/locals) access — the traffic every real
    /// dynamic instruction stream is diluted with. These hit the TLB and
    /// almost always the L1.
    #[inline]
    fn hot(&mut self, sink: &mut dyn AccessSink) {
        let arrays = self.arrays.as_mut().expect("setup ran");
        sink.load(arrays.hot.seq(64));
    }

    /// One PageRank vertex: stream the adjacency run, gather contributions.
    fn step_pr(&mut self, sink: &mut dyn AccessSink) {
        {
            let arrays = self.arrays.as_mut().expect("setup ran");
            sink.load(arrays.offsets.seq(8));
        }
        self.hot(sink);
        sink.instructions(4);
        for _ in 0..DEGREE {
            let edge_va = self.arrays.as_mut().expect("setup ran").edges.seq(8);
            sink.load(edge_va);
            let contrib = self.endpoint_slot(Which::VData);
            sink.load(contrib);
            self.hot(sink);
            sink.instructions(4);
        }
        let arrays = self.arrays.as_mut().expect("setup ran");
        sink.store(arrays.vdata2.as_mut().expect("pr has vdata2").seq(8));
        sink.instructions(4);
    }

    /// One CC edge-block: GAPBS scans edges by source vertex, so `comp[u]`
    /// is quasi-sequential and only `comp[v]` is a cold random access.
    fn step_cc(&mut self, sink: &mut dyn AccessSink) {
        {
            let arrays = self.arrays.as_mut().expect("setup ran");
            // New source vertex every DEGREE edges: offsets + comp[u].
            sink.load(arrays.offsets.seq(8));
            let vdata = arrays.vdata.as_mut().expect("cc has vdata");
            sink.load(vdata.seq(8));
        }
        sink.instructions(4);
        for _ in 0..DEGREE {
            {
                let arrays = self.arrays.as_mut().expect("setup ran");
                sink.load(arrays.edges.seq(8));
            }
            let comp_v = self.endpoint_slot(Which::VData);
            sink.load(comp_v);
            self.hot(sink);
            sink.instructions(5);
            if self.rng.gen::<f64>() < 0.08 {
                sink.store(comp_v);
                sink.instructions(1);
            }
        }
    }

    /// One BFS vertex. GAPBS's direction-optimising BFS mixes two phases:
    ///
    /// * **top-down** (≈⅓ of work): pop a frontier vertex — its offsets
    ///   entry and adjacency run sit at *random* positions — and probe the
    ///   visited bitmap for nearly every neighbour;
    /// * **bottom-up** (≈⅔): scan vertices sequentially, probing the
    ///   bitmap for a fraction of neighbours with early exit on the first
    ///   visited parent.
    ///
    /// The bitmap (one bit per vertex ≈ footprint/1152) is the array whose
    /// crossing of the TLB reach produces the paper's mid-sweep miss-rate
    /// cliff for bfs-urand. With `bc`, dependency-accumulation float
    /// traffic rides along.
    fn step_bfs(&mut self, sink: &mut dyn AccessSink, bc: bool) {
        let top_down = self.rng.gen::<f64>() < 0.45;
        if top_down {
            let off = self.endpoint_slot(Which::Offsets);
            sink.load(off);
        } else {
            let arrays = self.arrays.as_mut().expect("setup ran");
            sink.load(arrays.offsets.seq(8));
        }
        let run_start = {
            let arrays = self.arrays.as_mut().expect("setup ran");
            let frontier = arrays.frontier.as_mut().expect("bfs has frontier");
            sink.load(frontier.seq(8));
            if top_down {
                Some(arrays.edges.random_run(&mut self.rng, DEGREE * 8))
            } else {
                None
            }
        };
        self.hot(sink);
        sink.instructions(5);
        let probe_prob = if top_down { 0.5 } else { 0.12 };
        for k in 0..DEGREE {
            match run_start {
                Some(start) => sink.load(start.add(k * 8)),
                None => {
                    let arrays = self.arrays.as_mut().expect("setup ran");
                    sink.load(arrays.edges.seq(8));
                }
            }
            self.hot(sink);
            sink.instructions(3);
            if self.rng.gen::<f64>() < probe_prob {
                if top_down {
                    // Top-down checks (and CASes) the parent array —
                    // 8 bytes per vertex, a large cold array.
                    let parent = self.endpoint_slot(Which::VData);
                    sink.load(parent);
                    sink.instructions(1);
                    if self.rng.gen::<f64>() < 0.15 {
                        // Newly discovered: CAS parent + enqueue.
                        sink.store(parent);
                        let arrays = self.arrays.as_mut().expect("setup ran");
                        sink.store(arrays.frontier.as_mut().expect("bfs has frontier").seq(8));
                        sink.instructions(2);
                    }
                } else {
                    // Bottom-up probes the visited bitmap.
                    let bm = self.endpoint_slot(Which::Bitmap);
                    sink.load(bm);
                    sink.instructions(1);
                }
            }
            if bc && self.rng.gen::<f64>() < 0.25 {
                let d = self.endpoint_slot(Which::VData);
                sink.load(d);
                sink.instructions(2);
                if self.rng.gen::<f64>() < 0.4 {
                    let d2 = self.endpoint_slot(Which::VData2);
                    sink.store(d2);
                }
            }
            if !top_down && self.rng.gen::<f64>() < 0.05 {
                break; // bottom-up early exit: found a visited parent
            }
        }
    }

    /// One TC intersection: march two sorted adjacency runs in lockstep.
    fn step_tc(&mut self, sink: &mut dyn AccessSink) {
        // Pick two vertices (hub-biased under kron's degree ordering) and
        // intersect their runs; adjacency of vertex v sits at v·DEGREE·8.
        let (u, v) = (self.endpoint(), self.endpoint());
        {
            let arrays = self.arrays.as_mut().expect("setup ran");
            let run_u = arrays.offsets.at(u * 8); // offsets lookup
            sink.load(run_u);
        }
        self.hot(sink);
        sink.instructions(5);
        // Hub adjacency lists on kron inputs are long: the degree-ordered
        // intersection streams far more sequential work per (hub-biased)
        // random run start, which is what keeps tc-kron translation-cheap.
        let compares = match self.gen {
            GraphGen::Urand => DEGREE * 3 / 4,
            GraphGen::Kron => DEGREE * 5 / 2,
        };
        let run = compares * 8 + 8;
        let (start_u, start_v) = {
            let arrays = self.arrays.as_ref().expect("setup ran");
            (
                arrays.edges.at_run(u * DEGREE * 8, run),
                arrays.edges.at_run(v * DEGREE * 8, run),
            )
        };
        for k in 0..compares {
            sink.load(start_u.add(k * 8));
            sink.load(start_v.add(k * 8));
            if k % 3 == 0 {
                self.hot(sink);
            }
            sink.instructions(4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn run_model(kernel: GraphKernel, gen: GraphGen) -> CountingSink {
        let mut model = GraphModel::new(kernel, gen, 4 << 20, 7);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let mut sink = CountingSink::with_budget(20_000);
        model.run(&mut sink);
        sink
    }

    #[test]
    fn all_kernels_emit_accesses_and_respect_budget() {
        for kernel in [
            GraphKernel::Bc,
            GraphKernel::Bfs,
            GraphKernel::Cc,
            GraphKernel::Pr,
            GraphKernel::Tc,
        ] {
            for gen in [GraphGen::Urand, GraphGen::Kron] {
                let sink = run_model(kernel, gen);
                assert!(
                    sink.loads > 1000,
                    "{kernel:?}/{gen:?}: {} loads",
                    sink.loads
                );
                assert!(
                    sink.total_instructions() >= 20_000,
                    "{kernel:?}/{gen:?} stopped early"
                );
                assert!(
                    sink.total_instructions() < 21_000,
                    "{kernel:?}/{gen:?} overshot the budget grossly"
                );
            }
        }
    }

    #[test]
    fn pr_and_cc_have_store_traffic_tc_does_not() {
        assert!(run_model(GraphKernel::Pr, GraphGen::Urand).stores > 0);
        assert!(run_model(GraphKernel::Cc, GraphGen::Urand).stores > 0);
        assert_eq!(run_model(GraphKernel::Tc, GraphGen::Urand).stores, 0);
    }

    #[test]
    fn footprint_sizing_is_roughly_linear() {
        let small = GraphModel::new(GraphKernel::Pr, GraphGen::Urand, 16 << 20, 1);
        let large = GraphModel::new(GraphKernel::Pr, GraphGen::Urand, 160 << 20, 1);
        let ratio = large.vertices() as f64 / small.vertices() as f64;
        assert!((9.0..=11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn setup_faults_in_the_nominal_footprint() {
        let mut model = GraphModel::new(GraphKernel::Cc, GraphGen::Urand, 8 << 20, 3);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let mapped = space.stats().data_bytes;
        let nominal = 8 << 20;
        assert!(
            mapped as f64 > nominal as f64 * 0.9 && (mapped as f64) < nominal as f64 * 1.15,
            "mapped {mapped} vs nominal {nominal}"
        );
    }

    #[test]
    fn labels_match_paper_notation() {
        let m = GraphModel::new(GraphKernel::Bfs, GraphGen::Kron, 1 << 20, 0);
        assert_eq!(m.label(), "bfs-kron");
        assert_eq!(m.program(), "bfs");
        assert_eq!(m.generator(), "kron");
    }

    #[test]
    #[should_panic(expected = "setup() must run before run()")]
    fn run_before_setup_panics() {
        let mut m = GraphModel::new(GraphKernel::Pr, GraphGen::Urand, 1 << 20, 0);
        let mut sink = CountingSink::with_budget(10);
        m.run(&mut sink);
    }
}
