//! Paper-scale access-pattern models.
//!
//! A cycle-approximate MMU study needs the *address stream* and the
//! *instruction mix* of each workload, not its computed answers. These
//! models reproduce each Table I program's memory behaviour — array
//! layouts, sequential/dependent/random access mixes, hot-set structure —
//! at any footprint, in O(1) host memory, by exploiting the streaming
//! generators in `atscale-gen`. The real kernels in [`crate::kernels`]
//! anchor them: validation tests check that where both can run, the
//! translation metrics agree in trend.
//!
//! Each model's `run` is a *sampled window* of the program's steady state:
//! sequential cursors start at random positions and the stream runs until
//! the sink's instruction budget expires, mirroring how architects sample
//! long-running benchmarks. `setup` faults in the whole working set first
//! (the build phase of the real program), so the measured footprint matches
//! the nominal instance size.

mod graph;
mod kv;
mod mcf;
mod stream;

pub use graph::{GraphGen, GraphKernel, GraphModel};
pub use kv::KvModel;
pub use mcf::McfModel;
pub use stream::StreamclusterModel;

use atscale_gen::splitmix64;
use atscale_vm::{AddressSpace, Segment, VirtAddr};
use rand::rngs::SmallRng;
use rand::Rng;

/// A model's view of one allocated segment: sequential cursor + random
/// addressing helpers, all 8-byte granular.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    base: VirtAddr,
    len: u64,
    cursor: u64,
}

impl Region {
    pub(crate) fn new(seg: &Segment) -> Self {
        Region {
            base: seg.base(),
            len: seg.len(),
            cursor: 0,
        }
    }

    /// Starts the sequential cursor at a random 8-byte-aligned position
    /// (sampled-window semantics).
    pub(crate) fn randomize_cursor(&mut self, rng: &mut SmallRng) {
        self.cursor = rng.gen_range(0..self.len) & !7;
    }

    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Next sequential address, advancing by `stride` and wrapping.
    #[inline]
    pub(crate) fn seq(&mut self, stride: u64) -> VirtAddr {
        if self.cursor + stride > self.len {
            self.cursor = 0;
        }
        let va = self.base.add(self.cursor);
        self.cursor += stride;
        va
    }

    /// Address of byte offset `off` (clamped into range, 8-byte aligned).
    #[inline]
    pub(crate) fn at(&self, off: u64) -> VirtAddr {
        self.base.add((off & !7).min(self.len.saturating_sub(8)))
    }

    /// Uniformly random 8-byte slot.
    #[inline]
    pub(crate) fn random(&self, rng: &mut SmallRng) -> VirtAddr {
        self.base.add(rng.gen_range(0..self.len / 8) * 8)
    }

    /// Uniformly random start for a sequential run of `run_bytes`, clamped
    /// so the whole run stays inside the region.
    #[inline]
    pub(crate) fn random_run(&self, rng: &mut SmallRng, run_bytes: u64) -> VirtAddr {
        let span = (self.len.saturating_sub(run_bytes) / 8).max(1);
        self.base.add(rng.gen_range(0..span) * 8)
    }

    /// Address of byte offset `off`, clamped so a run of `run_bytes`
    /// starting there stays inside the region.
    #[inline]
    pub(crate) fn at_run(&self, off: u64, run_bytes: u64) -> VirtAddr {
        self.base
            .add((off & !7).min(self.len.saturating_sub(run_bytes)))
    }

    /// Deterministically scatters an index over the region's 8-byte slots.
    ///
    /// Used to place skewed-popular items (graph hubs, hot keys) at
    /// *scattered* addresses, as real data layouts do — hot items sharing
    /// pages with cold neighbours is essential to TLB behaviour.
    #[inline]
    pub(crate) fn scattered(&self, idx: u64) -> VirtAddr {
        self.base.add((splitmix64(idx) % (self.len / 8)) * 8)
    }

    /// Faults in every page of the region (setup/build phase).
    pub(crate) fn touch_all(&self, space: &mut AddressSpace) {
        let mut off = 0;
        while off < self.len {
            space
                .touch(self.base.add(off))
                .expect("region lies inside its own segment");
            off += 4096;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_vm::{BackingPolicy, PageSize};
    use rand::SeedableRng;

    fn region(bytes: u64) -> (AddressSpace, Region) {
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        let seg = space.alloc_heap("r", bytes).unwrap();
        let r = Region::new(&seg);
        (space, r)
    }

    #[test]
    fn seq_wraps_cleanly() {
        // Segments are 4 KiB-granular, so a "32-byte" region is one page.
        let (_s, mut r) = region(32);
        assert_eq!(r.len(), 4096);
        let first = r.seq(8);
        for _ in 0..511 {
            r.seq(8);
        }
        assert_eq!(r.seq(8), first, "wraps to start");
    }

    #[test]
    fn random_and_scattered_stay_in_bounds() {
        let (_s, r) = region(4096 * 3);
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..1000u64 {
            let a = r.random(&mut rng).as_u64();
            let b = r.scattered(i).as_u64();
            for v in [a, b] {
                assert!(v >= r.base.as_u64());
                assert!(v + 8 <= r.base.as_u64() + r.len());
            }
        }
    }

    #[test]
    fn scattered_is_deterministic_but_spread() {
        let (_s, r) = region(1 << 20);
        assert_eq!(r.scattered(5), r.scattered(5));
        let mut pages = std::collections::HashSet::new();
        for i in 0..256u64 {
            pages.insert(r.scattered(i).as_u64() >> 12);
        }
        assert!(pages.len() > 128, "hot items land on many pages");
    }

    #[test]
    fn touch_all_faults_every_page() {
        let (mut s, r) = region(4096 * 5);
        r.touch_all(&mut s);
        assert_eq!(s.stats().minor_faults, 5);
        assert_eq!(s.stats().data_bytes, 5 * 4096);
    }
}
