//! Access-pattern model of PARSEC `streamcluster`.
//!
//! streamcluster evaluates k-median gains by repeatedly scanning a block of
//! d-dimensional points — long, page-friendly sequential sweeps with a hot
//! centre table. Address-translation pressure is therefore *low and noisy*:
//! sequential scans miss the TLB once per page at most, so the paper finds
//! no clear footprint trend for this workload (Table IV: adjusted R² 0.12).
//! The model adds small per-instance parameter jitter, as the real
//! program's block boundaries and reassignment phases do, so sweeps exhibit
//! the same scatter.

use super::Region;
use crate::meta;
use crate::workload::Workload;
use atscale_gen::splitmix64;
use atscale_mmu::{AccessOp, AccessSink, SinkEvent, WorkloadProfile};
use atscale_vm::{AddressSpace, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Layout {
    points: Region,
    centers: Region,
}

/// The streamcluster-rand model.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::models::StreamclusterModel;
/// use atscale_workloads::Workload;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut model = StreamclusterModel::new(8 << 20, 3);
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// model.setup(&mut space)?;
/// let mut sink = CountingSink::with_budget(5_000);
/// model.run(&mut sink);
/// assert!(sink.loads > 1_000);
/// # Ok(())
/// # }
/// ```
pub struct StreamclusterModel {
    footprint: u64,
    rng: SmallRng,
    /// Per-instance jitter: probability a point triggers a random
    /// reassignment store.
    assign_prob: f64,
    layout: Option<Layout>,
}

impl StreamclusterModel {
    /// Creates an instance whose point block is ≈`footprint` bytes.
    pub fn new(footprint: u64, seed: u64) -> Self {
        // Instance-to-instance variation (block boundaries, opened-centre
        // counts) makes real streamcluster noisy; derive a small jitter
        // deterministically from the instance parameters.
        let jitter = (splitmix64(seed ^ footprint) % 1000) as f64 / 1000.0;
        StreamclusterModel {
            footprint,
            rng: SmallRng::seed_from_u64(seed),
            assign_prob: 0.01 + 0.03 * jitter,
            layout: None,
        }
    }

    /// Nominal footprint requested at construction.
    pub fn nominal_footprint(&self) -> u64 {
        self.footprint
    }
}

impl Workload for StreamclusterModel {
    fn program(&self) -> &'static str {
        "streamcluster"
    }

    fn generator(&self) -> &'static str {
        "rand"
    }

    fn profile(&self) -> WorkloadProfile {
        meta::streamcluster_profile()
    }

    fn setup(&mut self, space: &mut AddressSpace) -> Result<(), VmError> {
        let points = Region::new(&space.alloc_heap("points", self.footprint * 97 / 100)?);
        // Centre table: small and hot (k ≪ n).
        let centers = Region::new(&space.alloc_heap("centers", 1 << 20)?);
        points.touch_all(space);
        centers.touch_all(space);
        let mut layout = Layout { points, centers };
        layout.points.randomize_cursor(&mut self.rng);
        self.layout = Some(layout);
        Ok(())
    }

    fn run(&mut self, sink: &mut dyn AccessSink) {
        assert!(self.layout.is_some(), "setup() must run before run()");
        while !sink.done() {
            self.step_point(sink);
        }
    }
}

impl StreamclusterModel {
    /// One point's gain evaluation: stream its coordinates, compare against
    /// a couple of centres, occasionally reassign.
    fn step_point(&mut self, sink: &mut dyn AccessSink) {
        // 128 dims × 4 B = 512 B per point; loads at 32 B granularity. The
        // coordinate scan has no data-dependent control flow, so the whole
        // point is emitted through one batched call rather than 32 virtual
        // dispatches; event order matches the per-call form exactly.
        let mut events = [SinkEvent::Instructions(0); 32];
        for i in 0..16 {
            let va = {
                let layout = self.layout.as_mut().expect("setup ran");
                layout.points.seq(32)
            };
            events[2 * i] = SinkEvent::Access(AccessOp::Load, va);
            events[2 * i + 1] = SinkEvent::Instructions(3); // dense FP distance math
        }
        sink.event_batch(&events);
        let (c1, c2) = {
            let layout = self.layout.as_ref().expect("setup ran");
            let rng = &mut self.rng;
            (layout.centers.random(rng), layout.centers.random(rng))
        };
        sink.load(c1);
        sink.load(c2);
        sink.instructions(6);
        if self.rng.gen::<f64>() < self.assign_prob {
            // Reassignment writes the point's cluster field (random point).
            let p = {
                let layout = self.layout.as_ref().expect("setup ran");
                layout.points.random(&mut self.rng)
            };
            sink.store(p);
            sink.instructions(4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    #[test]
    fn stream_is_overwhelmingly_sequential_loads() {
        let mut model = StreamclusterModel::new(8 << 20, 21);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let mut sink = CountingSink::with_budget(50_000);
        model.run(&mut sink);
        assert!(sink.loads > 8_000);
        assert!(
            (sink.stores as f64) < sink.loads as f64 * 0.02,
            "stores are rare: {} vs {}",
            sink.stores,
            sink.loads
        );
    }

    #[test]
    fn jitter_differs_across_instances() {
        let a = StreamclusterModel::new(1 << 30, 1).assign_prob;
        let b = StreamclusterModel::new(2 << 30, 1).assign_prob;
        assert_ne!(a, b);
        assert!((0.01..=0.04).contains(&a));
    }

    #[test]
    fn label_and_profile() {
        let m = StreamclusterModel::new(1 << 20, 0);
        assert_eq!(m.label(), "streamcluster-rand");
        assert!(m.profile().mlp >= 6.0);
    }
}
