//! Access-pattern model of `memcached` under YCSB uniform keys.
//!
//! The paper (§V-A, Fig. 3) highlights memcached's *complex* scaling: the
//! key-value cache hit rate varies with the memory footprint, so the
//! dynamic instruction mix itself changes across the sweep. This model
//! reproduces that mechanism: the key space is fixed (64 Mi keys ≈ a 70 GB
//! dataset) while the cache grows with footprint, so the uniform-key hit
//! rate rises from ≈0 % at 256 MB to most-hits at the top of the sweep —
//! and the hit path (value reads) displaces the miss path (eviction and
//! insertion stores) as footprint grows.

use super::Region;
use crate::meta;
use crate::workload::Workload;
use atscale_mmu::{AccessSink, WorkloadProfile};
use atscale_vm::{AddressSpace, VmError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed key-space size (uniform draws), ≈70 GB of values.
const KEY_SPACE: u64 = 1 << 26;

/// Bytes per cached item: header + key + ~1 KiB value.
const ITEM_BYTES: u64 = 1152;

/// Sequential loads per value read (1 KiB at 64-byte lines, 2 per line).
const VALUE_LOADS: u64 = 8;

/// Instructions of request/protocol processing per operation. memcached
/// spends most of its time in network/syscall/protocol code whose memory
/// traffic is hot (packet buffers, connection state, stack) — the reason
/// the paper finds it insensitive to page size at small footprints.
const PROTOCOL_INSTRS: u64 = 60;

/// Hot accesses (buffers/stack) per operation.
const PROTOCOL_ACCESSES: u64 = 24;

struct Layout {
    buckets: Region,
    items: Region,
    hot: Region,
}

/// The memcached-uniform model.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::models::KvModel;
/// use atscale_workloads::Workload;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut model = KvModel::new(16 << 20, 1);
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// model.setup(&mut space)?;
/// let mut sink = CountingSink::with_budget(5_000);
/// model.run(&mut sink);
/// assert!(sink.loads > 200);
/// # Ok(())
/// # }
/// ```
pub struct KvModel {
    footprint: u64,
    items: u64,
    hit_rate: f64,
    read_fraction: f64,
    rng: SmallRng,
    layout: Option<Layout>,
}

impl KvModel {
    /// Creates a model whose cache holds `footprint` bytes of items.
    pub fn new(footprint: u64, seed: u64) -> Self {
        // ~85% of memory holds items; the rest is the bucket array.
        let items = (footprint * 85 / 100 / ITEM_BYTES).max(64);
        KvModel {
            footprint,
            items,
            hit_rate: (items as f64 / KEY_SPACE as f64).min(1.0),
            read_fraction: 0.95,
            rng: SmallRng::seed_from_u64(seed),
            layout: None,
        }
    }

    /// The uniform-key cache hit rate implied by this footprint.
    pub fn hit_rate(&self) -> f64 {
        self.hit_rate
    }

    /// Number of cached items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Nominal footprint requested at construction.
    pub fn nominal_footprint(&self) -> u64 {
        self.footprint
    }
}

impl Workload for KvModel {
    fn program(&self) -> &'static str {
        "memcached"
    }

    fn generator(&self) -> &'static str {
        "uniform"
    }

    fn profile(&self) -> WorkloadProfile {
        meta::memcached_profile()
    }

    fn setup(&mut self, space: &mut AddressSpace) -> Result<(), VmError> {
        let buckets = Region::new(&space.alloc_heap("hash.buckets", self.items * 8)?);
        let items = Region::new(&space.alloc_heap("slab.items", self.items * ITEM_BYTES)?);
        let hot = Region::new(&space.alloc_heap("conn.buffers", 128 << 10)?);
        buckets.touch_all(space);
        items.touch_all(space);
        hot.touch_all(space);
        self.layout = Some(Layout {
            buckets,
            items,
            hot,
        });
        Ok(())
    }

    fn run(&mut self, sink: &mut dyn AccessSink) {
        assert!(self.layout.is_some(), "setup() must run before run()");
        while !sink.done() {
            self.step_op(sink);
        }
    }
}

impl KvModel {
    /// One GET/SET request.
    fn step_op(&mut self, sink: &mut dyn AccessSink) {
        let hit = self.rng.gen::<f64>() < self.hit_rate;
        let is_read = self.rng.gen::<f64>() < self.read_fraction;
        // Protocol processing: parse request, connection state, response
        // buffers — hot traffic that dominates the instruction stream.
        for i in 0..PROTOCOL_ACCESSES {
            let va = {
                let layout = self.layout.as_mut().expect("setup ran");
                layout.hot.seq(64)
            };
            if i % 4 == 3 {
                sink.store(va);
            } else {
                sink.load(va);
            }
            sink.instructions(PROTOCOL_INSTRS / PROTOCOL_ACCESSES);
        }
        // Hash the key, index the bucket array.
        sink.instructions(8);
        let (bucket, item, item2) = {
            let layout = self.layout.as_ref().expect("setup ran");
            (
                layout.buckets.random(&mut self.rng),
                layout.items.random(&mut self.rng),
                layout.items.random(&mut self.rng),
            )
        };
        sink.load(bucket);
        // Walk the chain: one item header, sometimes two.
        sink.load(item);
        sink.instructions(6);
        if self.rng.gen::<f64>() < 0.25 {
            sink.load(item2);
            sink.instructions(6);
        }
        if hit {
            // Value access: sequential within the item.
            for k in 0..VALUE_LOADS {
                if is_read {
                    sink.load(item.add(64 + k * 128));
                } else {
                    sink.store(item.add(64 + k * 128));
                }
            }
            // LRU list maintenance.
            sink.store(item);
            sink.instructions(10);
        } else {
            // Miss: on SETs (and a fraction of GET-misses that trigger
            // refill) evict the LRU item and insert.
            if !is_read || self.rng.gen::<f64>() < 0.3 {
                let (lru, bucket2) = {
                    let layout = self.layout.as_ref().expect("setup ran");
                    (
                        layout.items.random(&mut self.rng),
                        layout.buckets.random(&mut self.rng),
                    )
                };
                sink.load(lru); // victim header
                sink.store(lru); // unlink
                sink.store(bucket2); // old bucket update
                for k in 0..VALUE_LOADS {
                    sink.store(item.add(64 + k * 128)); // write new value
                }
                sink.store(bucket); // link into bucket
                sink.instructions(14);
            } else {
                sink.instructions(4); // cheap miss response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn run_at(footprint: u64) -> (KvModel, CountingSink) {
        let mut model = KvModel::new(footprint, 5);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let mut sink = CountingSink::with_budget(30_000);
        model.run(&mut sink);
        (model, sink)
    }

    #[test]
    fn hit_rate_grows_with_footprint() {
        let small = KvModel::new(256 << 20, 0);
        let large = KvModel::new(16u64 << 30, 0);
        assert!(small.hit_rate() < 0.01);
        assert!(large.hit_rate() > 0.15);
        assert!(large.hit_rate() > small.hit_rate() * 30.0);
    }

    #[test]
    fn instruction_mix_shifts_with_hit_rate() {
        // At tiny hit rates the op stream is miss-path (store-heavy on the
        // insert fraction); at high hit rates reads dominate.
        let (_m, miss_heavy) = run_at(8 << 20);
        let mut hit_model = KvModel::new(8 << 20, 5);
        hit_model.hit_rate = 0.95; // force the asymptotic regime
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        hit_model.setup(&mut space).unwrap();
        let mut hit_sink = CountingSink::with_budget(30_000);
        hit_model.run(&mut hit_sink);
        let miss_store_ratio = miss_heavy.stores as f64 / miss_heavy.loads as f64;
        let hit_store_ratio = hit_sink.stores as f64 / hit_sink.loads as f64;
        assert!(
            hit_store_ratio < miss_store_ratio,
            "hit path is read-heavy: {hit_store_ratio} vs {miss_store_ratio}"
        );
    }

    #[test]
    fn footprint_is_mapped_by_setup() {
        let mut model = KvModel::new(8 << 20, 1);
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        model.setup(&mut space).unwrap();
        let mapped = space.stats().data_bytes as f64;
        assert!(mapped > (8 << 20) as f64 * 0.85);
    }

    #[test]
    fn respects_budget() {
        let (_m, sink) = run_at(4 << 20);
        let total = sink.total_instructions();
        assert!((30_000..31_000).contains(&total), "total {total}");
    }
}
