//! Minimum-cost flow by successive shortest paths (the `mcf` workload).
//!
//! SPEC `429.mcf` uses a network simplex; successive shortest paths (SSP)
//! with Bellman–Ford label correction has the same memory character — a
//! sequential arc scan inside a label-correcting loop plus pointer-heavy
//! path walks — while being considerably easier to verify. The residual
//! arc arrays and node labels live in simulated memory.

use crate::SimArray;
use atscale_gen::mcf_net::Network;
use atscale_mmu::AccessSink;
use atscale_vm::{AddressSpace, VmError};

/// Result of a min-cost-flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow shipped from the source to the sink.
    pub flow: i64,
    /// Total cost of the shipped flow.
    pub cost: i64,
}

/// A min-cost-flow solver whose residual network lives in simulated
/// memory. Allocation (`new`) is separate from solving (`solve`) so the
/// arrays can be placed in a [`crate::Workload`]-style machine address
/// space before the measured phase begins.
#[derive(Debug)]
pub struct McfSolver {
    n: usize,
    supply: i64,
    adj_off: SimArray<u32>,
    adj_arc: SimArray<u32>,
    heads: SimArray<u32>,
    caps: SimArray<i64>,
    costs: SimArray<i64>,
    dist: SimArray<i64>,
    pred: SimArray<u32>,
}

/// Convenience wrapper: allocates a [`McfSolver`] in `space` and solves.
///
/// # Errors
///
/// Propagates allocation failure for the residual-network arrays.
///
/// # Example
///
/// ```
/// use atscale_gen::mcf_net::{generate, McfConfig};
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::min_cost_flow;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let net = generate(McfConfig::new(50, 1));
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let mut sink = CountingSink::new();
/// let result = min_cost_flow(&net, &mut space, &mut sink)?;
/// assert!(result.flow > 0);
/// assert!(result.cost > 0);
/// # Ok(())
/// # }
/// ```
pub fn min_cost_flow(
    net: &Network,
    space: &mut AddressSpace,
    sink: &mut dyn AccessSink,
) -> Result<FlowResult, VmError> {
    let mut solver = McfSolver::new(space, net)?;
    Ok(solver.solve(sink))
}

impl McfSolver {
    /// Builds the residual network (forward arc `2i`, backward `2i+1`) and
    /// its CSR adjacency in `space`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    pub fn new(space: &mut AddressSpace, net: &Network) -> Result<Self, VmError> {
        let n = net.nodes as usize;

        // Residual network: forward arc 2i, backward arc 2i+1.
        let m = net.arcs.len() * 2;
        #[allow(clippy::needless_range_loop)]
        {
            let mut heads = vec![0u32; m];
            let mut caps = vec![0i64; m];
            let mut costs = vec![0i64; m];
            let mut tails = vec![0u32; m];
            for (i, arc) in net.arcs.iter().enumerate() {
                heads[2 * i] = arc.to;
                tails[2 * i] = arc.from;
                caps[2 * i] = arc.capacity as i64;
                costs[2 * i] = arc.cost;
                heads[2 * i + 1] = arc.from;
                tails[2 * i + 1] = arc.to;
                caps[2 * i + 1] = 0;
                costs[2 * i + 1] = -arc.cost;
            }
            // CSR adjacency over residual arcs.
            let mut degree = vec![0u32; n];
            for &t in &tails {
                degree[t as usize] += 1;
            }
            let mut adj_off = vec![0u32; n + 1];
            for v in 0..n {
                adj_off[v + 1] = adj_off[v] + degree[v];
            }
            let mut cursor = adj_off.clone();
            let mut adj_arc = vec![0u32; m];
            for (a, &t) in tails.iter().enumerate() {
                adj_arc[cursor[t as usize] as usize] = a as u32;
                cursor[t as usize] += 1;
            }

            Ok(McfSolver {
                n,
                supply: net.supply as i64,
                adj_off: SimArray::from_vec(space, "mcf.adj_off", adj_off)?,
                adj_arc: SimArray::from_vec(space, "mcf.adj_arc", adj_arc)?,
                heads: SimArray::from_vec(space, "mcf.heads", heads)?,
                caps: SimArray::from_vec(space, "mcf.caps", caps)?,
                costs: SimArray::from_vec(space, "mcf.costs", costs)?,
                dist: SimArray::new(space, "mcf.dist", n, i64::MAX)?,
                pred: SimArray::new(space, "mcf.pred", n, u32::MAX)?,
            })
        }
    }

    /// Runs successive shortest paths, shipping up to the network's supply
    /// from node 0 to the last node; returns flow and cost. Polls
    /// `sink.done()` between augmentations.
    pub fn solve(&mut self, sink: &mut dyn AccessSink) -> FlowResult {
        let n = self.n;
        let supply = self.supply;
        let source = 0usize;
        let target = n - 1;
        let McfSolver {
            adj_off,
            adj_arc,
            heads,
            caps,
            costs,
            dist,
            pred,
            ..
        } = self;

        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        let mut remaining = supply;

        while remaining > 0 && !sink.done() {
            // Bellman–Ford label correction (SPFA) from the source.
            for v in 0..n {
                dist.set_silent(v, i64::MAX);
                pred.set_silent(v, u32::MAX);
            }
            dist.set(source, 0, sink);
            let mut queue = std::collections::VecDeque::from([source as u32]);
            let mut in_queue = vec![false; n];
            in_queue[source] = true;
            while let Some(u) = queue.pop_front() {
                let u = u as usize;
                in_queue[u] = false;
                let du = dist.get(u, sink);
                let start = adj_off.get(u, sink) as usize;
                let end = adj_off.get(u + 1, sink) as usize;
                for e in start..end {
                    let a = adj_arc.get(e, sink) as usize;
                    sink.instructions(3);
                    if caps.get(a, sink) <= 0 {
                        continue;
                    }
                    let v = heads.get(a, sink) as usize;
                    let nd = du + costs.get(a, sink);
                    if nd < dist.get(v, sink) {
                        dist.set(v, nd, sink);
                        pred.set(v, a as u32, sink);
                        sink.instructions(2);
                        if !in_queue[v] {
                            in_queue[v] = true;
                            queue.push_back(v as u32);
                        }
                    }
                }
                if sink.done() {
                    break;
                }
            }
            if dist.get_silent(target) == i64::MAX {
                break; // no augmenting path
            }
            // Walk the predecessor path: bottleneck, then augment.
            let mut bottleneck = remaining;
            let mut v = target;
            while v != source {
                let a = pred.get(v, sink) as usize;
                bottleneck = bottleneck.min(caps.get(a, sink));
                v = heads.get_silent(a ^ 1) as usize; // tail of a = head of its pair
                sink.instructions(3);
            }
            let mut v = target;
            while v != source {
                let a = pred.get(v, sink) as usize;
                caps.set(a, caps.get(a, sink) - bottleneck, sink);
                caps.set(a ^ 1, caps.get(a ^ 1, sink) + bottleneck, sink);
                total_cost += bottleneck * costs.get_silent(a);
                v = heads.get_silent(a ^ 1) as usize;
                sink.instructions(4);
            }
            total_flow += bottleneck;
            remaining -= bottleneck;
        }
        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_gen::mcf_net::{Arc, Network};
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    #[test]
    fn picks_the_cheaper_path() {
        // 0 → 2 directly costs 10; 0 → 1 → 2 costs 2 + 3 = 5.
        let net = Network {
            nodes: 3,
            arcs: vec![
                Arc {
                    from: 0,
                    to: 2,
                    capacity: 1,
                    cost: 10,
                },
                Arc {
                    from: 0,
                    to: 1,
                    capacity: 1,
                    cost: 2,
                },
                Arc {
                    from: 1,
                    to: 2,
                    capacity: 1,
                    cost: 3,
                },
            ],
            supply: 1,
        };
        let mut s = space();
        let mut sink = CountingSink::new();
        let r = min_cost_flow(&net, &mut s, &mut sink).unwrap();
        assert_eq!(r, FlowResult { flow: 1, cost: 5 });
    }

    #[test]
    fn splits_flow_across_paths_when_capacity_binds() {
        // Two units must use both paths: cheap (cost 5) then expensive (10).
        let net = Network {
            nodes: 3,
            arcs: vec![
                Arc {
                    from: 0,
                    to: 2,
                    capacity: 1,
                    cost: 10,
                },
                Arc {
                    from: 0,
                    to: 1,
                    capacity: 1,
                    cost: 2,
                },
                Arc {
                    from: 1,
                    to: 2,
                    capacity: 1,
                    cost: 3,
                },
            ],
            supply: 2,
        };
        let mut s = space();
        let mut sink = CountingSink::new();
        let r = min_cost_flow(&net, &mut s, &mut sink).unwrap();
        assert_eq!(r, FlowResult { flow: 2, cost: 15 });
    }

    #[test]
    fn residual_arcs_enable_rerouting() {
        // Classic case where a later augmentation must push flow *back*
        // along an earlier choice: diamond with a cross edge.
        //   0→1 (1, cost 1), 0→2 (1, cost 10), 1→3 (1, cost 10),
        //   2→3 (1, cost 1), 1→2 (1, cost 1).
        // 2 units: optimum routes 0→1→2→3 (3) + 0→2... capacity of 0→2 is 1
        // and 2→3 is 1 → optimum = 0→1→3 (11) + 0→2→3 (11)?? With the cross
        // edge the SSP first sends 0→1→2→3 at cost 3, then must reroute.
        let net = Network {
            nodes: 4,
            arcs: vec![
                Arc {
                    from: 0,
                    to: 1,
                    capacity: 1,
                    cost: 1,
                },
                Arc {
                    from: 0,
                    to: 2,
                    capacity: 1,
                    cost: 10,
                },
                Arc {
                    from: 1,
                    to: 3,
                    capacity: 1,
                    cost: 10,
                },
                Arc {
                    from: 2,
                    to: 3,
                    capacity: 1,
                    cost: 1,
                },
                Arc {
                    from: 1,
                    to: 2,
                    capacity: 1,
                    cost: 1,
                },
            ],
            supply: 2,
        };
        let mut s = space();
        let mut sink = CountingSink::new();
        let r = min_cost_flow(&net, &mut s, &mut sink).unwrap();
        assert_eq!(r.flow, 2);
        // Optimal: 0→1→2→3 (cost 3) + 0→2 residual... enumerate: the two
        // disjoint routings are {0→1→3, 0→2→3} = 22 and the SSP answer
        // must match the true optimum 22 − nothing cheaper exists for 2
        // units, but 1 unit via 0→1→2→3 then 1 via 0→2(→3 is full)→ fails,
        // so rerouting through residuals yields exactly 22.
        assert_eq!(r.cost, 22);
    }

    #[test]
    fn generated_networks_ship_their_supply() {
        use atscale_gen::mcf_net::{generate, McfConfig};
        let net = generate(McfConfig::new(120, 4));
        let mut s = space();
        let mut sink = CountingSink::new();
        let r = min_cost_flow(&net, &mut s, &mut sink).unwrap();
        assert!(r.flow >= 1);
        assert!(r.cost > 0);
        assert!(sink.loads > 1000, "label correction reads heavily");
    }
}
