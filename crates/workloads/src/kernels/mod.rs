//! Real, executable implementations of the paper's workloads.
//!
//! Every kernel here genuinely computes its answer — BFS produces a parent
//! tree, PageRank converges, the min-cost-flow solver finds optimal flow —
//! while addressing its data through [`crate::SimArray`]s so the simulated
//! MMU observes the true address trace. They are used by the example
//! binaries and by validation tests that anchor the paper-scale models in
//! [`crate::models`].

mod bc;
mod bfs;
mod cc;
mod graph;
mod kv;
mod mcf;
mod pr;
mod streamcluster;
mod tc;

pub use bc::{betweenness_centrality, BcArrays};
pub use bfs::bfs;
pub use cc::connected_components;
pub use graph::CsrGraph;
pub use kv::KvCache;
pub use mcf::{min_cost_flow, FlowResult, McfSolver};
pub use pr::pagerank;
pub use streamcluster::{generate_points, stream_kmedian, ClusteringResult};
pub use tc::triangle_count;
