//! Streaming k-median clustering (PARSEC `streamcluster`).

use crate::SimArray;
use atscale_gen::points::{point, PointsConfig};
use atscale_mmu::AccessSink;
use atscale_vm::{AddressSpace, VmError};

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    /// Indices of the opened centres (into the point block).
    pub centers: Vec<usize>,
    /// Sum of distances from every point to its nearest centre.
    pub cost: f64,
}

/// Generates `n_points` points from `config` into a simulated-memory
/// block, `dims` consecutive `f32`s per point (the program's untimed
/// input-read phase).
///
/// # Errors
///
/// Propagates allocation failure for the point block.
pub fn generate_points(
    config: PointsConfig,
    n_points: usize,
    space: &mut AddressSpace,
) -> Result<SimArray<f32>, VmError> {
    let dims = config.dims as usize;
    let mut block = vec![0.0f32; n_points * dims];
    let mut buf = vec![0.0f32; dims];
    for i in 0..n_points {
        point(config, i as u64, &mut buf);
        block[i * dims..(i + 1) * dims].copy_from_slice(&buf);
    }
    SimArray::from_vec(space, "sc.points", block)
}

/// Online facility-location clustering over a pre-generated block of
/// points — the core loop of PARSEC streamcluster: every point is scanned
/// against the current centres (dense sequential float reads), opening a
/// new facility when it is far from all of them. At most `max_centers`
/// facilities open.
///
/// # Panics
///
/// Panics if `max_centers` is zero or the block is not a whole number of
/// `dims`-sized points.
///
/// # Example
///
/// ```
/// use atscale_gen::points::PointsConfig;
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::{generate_points, stream_kmedian};
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let cfg = PointsConfig::new(7);
/// let points = generate_points(cfg, 200, &mut space)?;
/// let mut sink = CountingSink::new();
/// let result = stream_kmedian(&points, cfg.dims as usize, 8, &mut sink);
/// assert!(!result.centers.is_empty());
/// assert!(result.cost.is_finite());
/// # Ok(())
/// # }
/// ```
pub fn stream_kmedian(
    points: &SimArray<f32>,
    dims: usize,
    max_centers: usize,
    sink: &mut dyn AccessSink,
) -> ClusteringResult {
    assert!(max_centers > 0, "need at least one centre");
    assert_eq!(points.len() % dims, 0, "block must be whole points");
    let n_points = points.len() / dims;

    let mut centers: Vec<usize> = vec![0];
    let mut cost = 0.0f64;
    // Opening threshold adapts like streamcluster's facility cost.
    let mut facility_cost = 0.5 * dims as f64 * 0.01;

    for i in 1..n_points {
        if sink.done() {
            break;
        }
        // Distance to every open centre: dense sequential reads of the
        // point's coords and the centre's coords.
        let mut best = f64::MAX;
        for &c in &centers {
            let mut d = 0.0f64;
            for k in (0..dims).step_by(8) {
                let a = points.get(i * dims + k, sink) as f64;
                let b = points.get(c * dims + k, sink) as f64;
                d += (a - b) * (a - b);
                sink.instructions(4);
            }
            if d < best {
                best = d;
            }
        }
        if best > facility_cost && centers.len() < max_centers {
            centers.push(i);
            facility_cost *= 1.2; // opening gets progressively harder
            sink.instructions(8);
        } else {
            cost += best.sqrt();
            sink.instructions(2);
        }
    }
    ClusteringResult { centers, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    fn run(config: PointsConfig, n: usize, k: usize) -> (ClusteringResult, CountingSink) {
        let mut s = space();
        let points = generate_points(config, n, &mut s).unwrap();
        let mut sink = CountingSink::new();
        let r = stream_kmedian(&points, config.dims as usize, k, &mut sink);
        (r, sink)
    }

    #[test]
    fn separated_clusters_open_multiple_centers() {
        let config = PointsConfig {
            dims: 32,
            centers: 4,
            spread: 0.01,
            seed: 9,
        };
        let (r, _sink) = run(config, 400, 16);
        assert!(
            r.centers.len() >= 3,
            "4 latent clusters should open ≥3 centres, got {}",
            r.centers.len()
        );
        assert!(r.cost > 0.0);
    }

    #[test]
    fn center_budget_is_respected() {
        let (r, _sink) = run(PointsConfig::new(3), 300, 2);
        assert!(r.centers.len() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = PointsConfig::new(11);
        let (a, k1) = run(config, 150, 8);
        let (b, k2) = run(config, 150, 8);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
        assert_eq!(k1.loads, k2.loads);
    }

    #[test]
    fn access_stream_is_load_dominated() {
        let (_r, sink) = run(PointsConfig::new(1), 200, 8);
        assert!(sink.loads > 1000);
        assert_eq!(sink.stores, 0);
    }
}
