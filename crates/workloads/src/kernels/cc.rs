//! Connected components (GAPBS `cc`, label-propagation style).

use super::CsrGraph;
use crate::SimArray;
use atscale_mmu::AccessSink;

/// Computes connected components by iterative label propagation into a
/// caller-allocated label array (initialised to `0..n`): every vertex
/// repeatedly adopts the minimum label among itself and its neighbours
/// until a fixpoint. Returns the number of propagation rounds.
///
/// The label array must live in the same address space as the graph.
///
/// # Panics
///
/// Panics if `comp.len() != graph.vertices()`.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::{connected_components, CsrGraph};
/// use atscale_workloads::SimArray;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let g = CsrGraph::build(&mut space, 5, [(0, 1), (1, 2), (3, 4)].into_iter())?;
/// let mut comp = SimArray::from_vec(&mut space, "cc.comp", (0..5u64).collect())?;
/// let mut sink = CountingSink::new();
/// connected_components(&g, &mut comp, &mut sink);
/// assert_eq!(comp.as_slice()[0], comp.as_slice()[2]);
/// assert_ne!(comp.as_slice()[0], comp.as_slice()[3]);
/// # Ok(())
/// # }
/// ```
pub fn connected_components(
    graph: &CsrGraph,
    comp: &mut SimArray<u64>,
    sink: &mut dyn AccessSink,
) -> u32 {
    assert_eq!(
        comp.len(),
        graph.vertices(),
        "label array must have one slot per vertex"
    );
    let n = graph.vertices();
    let mut rounds = 0;
    let mut changed = true;
    while changed && !sink.done() {
        changed = false;
        rounds += 1;
        for u in 0..n {
            let mut label = comp.get(u, sink);
            let (start, end) = graph.range(u, sink);
            for i in start..end {
                let v = graph.target(i, sink);
                let lv = comp.get(v, sink);
                sink.instructions(2);
                if lv < label {
                    label = lv;
                    changed = true;
                }
            }
            if changed {
                comp.set(u, label, sink);
            }
            if sink.done() {
                break;
            }
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{AddressSpace, BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    fn run_cc(space: &mut AddressSpace, g: &CsrGraph) -> Vec<u64> {
        let mut comp =
            SimArray::from_vec(space, "cc.comp", (0..g.vertices() as u64).collect()).unwrap();
        let mut sink = CountingSink::new();
        connected_components(g, &mut comp, &mut sink);
        comp.as_slice().to_vec()
    }

    /// Host-side union-find for cross-checking.
    fn reference_components(n: usize, edges: &[(u64, u64)]) -> Vec<usize> {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let root = find(p, p[x]);
                p[x] = root;
            }
            p[x]
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            parent[ru] = rv;
        }
        (0..n).map(|v| find(&mut parent, v)).collect()
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        use atscale_gen::kron::{edges, KronConfig};
        let cfg = KronConfig::new(8, 5); // 256 vertices (kron leaves isolates)
        let edge_list: Vec<(u64, u64)> = edges(cfg).collect();
        let mut s = space();
        let g = CsrGraph::build(&mut s, 256, edge_list.iter().copied()).unwrap();
        let comp = run_cc(&mut s, &g);
        let reference = reference_components(256, &edge_list);
        // Same partition: comp labels equal iff reference roots equal.
        for a in 0..256 {
            for b in (a + 1)..256 {
                assert_eq!(
                    comp[a] == comp[b],
                    reference[a] == reference[b],
                    "partition mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 3, [(0u64, 1u64)].into_iter()).unwrap();
        let comp = run_cc(&mut s, &g);
        assert_eq!(comp[2], 2);
        assert_eq!(comp[0], comp[1]);
    }

    #[test]
    fn converges_in_few_rounds_on_a_path() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 4, [(0u64, 1u64), (1, 2), (2, 3)].into_iter()).unwrap();
        let mut comp = SimArray::from_vec(&mut s, "c", (0..4u64).collect()).unwrap();
        let mut sink = CountingSink::new();
        let rounds = connected_components(&g, &mut comp, &mut sink);
        assert!(comp.as_slice().iter().all(|&l| l == 0));
        assert!(rounds >= 2, "at least one change round plus a quiet round");
    }
}
