//! PageRank (GAPBS `pr`, pull direction).

use super::CsrGraph;
use crate::SimArray;
use atscale_mmu::AccessSink;

/// Damping factor used by GAPBS.
const DAMPING: f64 = 0.85;

/// Pull-style PageRank into caller-allocated rank/contribution arrays
/// (both of length `n`; initial contents are overwritten). Runs
/// `iterations` rounds and normalises so ranks sum to 1. Returns the
/// normalised ranks (host copy).
///
/// Both arrays must live in the same address space as the graph.
///
/// # Panics
///
/// Panics if either array's length differs from `graph.vertices()`.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::{pagerank, CsrGraph};
/// use atscale_workloads::SimArray;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let g = CsrGraph::build(&mut space, 3, [(0, 1), (1, 2), (2, 0)].into_iter())?;
/// let mut ranks = SimArray::new(&mut space, "pr.ranks", 3, 0.0f64)?;
/// let mut contrib = SimArray::new(&mut space, "pr.contrib", 3, 0.0f64)?;
/// let mut sink = CountingSink::new();
/// let out = pagerank(&g, 10, &mut ranks, &mut contrib, &mut sink);
/// assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn pagerank(
    graph: &CsrGraph,
    iterations: u32,
    ranks: &mut SimArray<f64>,
    contrib: &mut SimArray<f64>,
    sink: &mut dyn AccessSink,
) -> Vec<f64> {
    let n = graph.vertices();
    assert_eq!(ranks.len(), n, "ranks must have one slot per vertex");
    assert_eq!(contrib.len(), n, "contrib must have one slot per vertex");
    let base = (1.0 - DAMPING) / n as f64;
    for v in 0..n {
        ranks.set_silent(v, 1.0 / n as f64);
    }
    for _ in 0..iterations {
        if sink.done() {
            break;
        }
        // Scatter phase: contribution = rank / degree.
        for v in 0..n {
            let r = ranks.get(v, sink);
            let d = graph.degree_silent(v).max(1) as f64;
            contrib.set(v, r / d, sink);
            sink.instructions(3);
        }
        // Gather phase: pull contributions along incoming edges.
        for v in 0..n {
            let (start, end) = graph.range(v, sink);
            let mut sum = 0.0;
            for i in start..end {
                let u = graph.target(i, sink);
                sum += contrib.get(u, sink);
                sink.instructions(2);
            }
            ranks.set(v, base + DAMPING * sum, sink);
            sink.instructions(4);
            if sink.done() {
                break;
            }
        }
    }
    // Dangling mass correction so ranks stay a distribution.
    let total: f64 = ranks.as_slice().iter().sum();
    ranks.as_slice().iter().map(|r| r / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{AddressSpace, BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    fn run_pr(space: &mut AddressSpace, g: &CsrGraph, iterations: u32) -> Vec<f64> {
        let n = g.vertices();
        let mut ranks = SimArray::new(space, "pr.ranks", n, 0.0f64).unwrap();
        let mut contrib = SimArray::new(space, "pr.contrib", n, 0.0f64).unwrap();
        let mut sink = CountingSink::new();
        pagerank(g, iterations, &mut ranks, &mut contrib, &mut sink)
    }

    #[test]
    fn ranks_sum_to_one_and_favor_hubs() {
        let mut s = space();
        // Star: vertex 0 is the hub.
        let g = CsrGraph::build(
            &mut s,
            5,
            [(0u64, 1u64), (0, 2), (0, 3), (0, 4)].into_iter(),
        )
        .unwrap();
        let ranks = run_pr(&mut s, &g, 30);
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for leaf in 1..5 {
            assert!(ranks[0] > ranks[leaf], "hub outranks leaves");
        }
    }

    #[test]
    fn symmetric_graph_gives_uniform_ranks() {
        let mut s = space();
        // A 4-cycle: all vertices equivalent.
        let g = CsrGraph::build(
            &mut s,
            4,
            [(0u64, 1u64), (1, 2), (2, 3), (3, 0)].into_iter(),
        )
        .unwrap();
        let ranks = run_pr(&mut s, &g, 40);
        for r in &ranks {
            assert!((r - 0.25).abs() < 1e-6, "rank {r}");
        }
    }
}
