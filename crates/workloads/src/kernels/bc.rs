//! Betweenness centrality (GAPBS `bc`, Brandes' algorithm).

use super::CsrGraph;
use crate::SimArray;
use atscale_mmu::AccessSink;
use atscale_vm::{AddressSpace, VmError};

/// The per-vertex working arrays Brandes' algorithm needs, allocated by
/// the caller in the same address space as the graph.
#[derive(Debug)]
pub struct BcArrays {
    scores: SimArray<f64>,
    sigma: SimArray<f64>,
    depth: SimArray<i64>,
    delta: SimArray<f64>,
}

impl BcArrays {
    /// Allocates zeroed working arrays for an `n`-vertex graph.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    pub fn new(space: &mut AddressSpace, n: usize) -> Result<Self, VmError> {
        Ok(BcArrays {
            scores: SimArray::new(space, "bc.scores", n, 0.0f64)?,
            sigma: SimArray::new(space, "bc.sigma", n, 0.0f64)?,
            depth: SimArray::new(space, "bc.depth", n, -1i64)?,
            delta: SimArray::new(space, "bc.delta", n, 0.0f64)?,
        })
    }

    /// The accumulated centrality scores.
    pub fn scores(&self) -> &[f64] {
        self.scores.as_slice()
    }
}

/// Brandes' betweenness centrality from the given source vertices:
/// a BFS computing shortest-path counts (σ), then a reverse sweep
/// accumulating dependencies (δ). Returns the centrality scores.
///
/// GAPBS samples a handful of sources rather than all vertices; pass the
/// sources explicitly for determinism.
///
/// # Panics
///
/// Panics if the arrays were allocated for a different vertex count.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::{betweenness_centrality, BcArrays, CsrGraph};
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// // Path 0-1-2: vertex 1 lies on every shortest path.
/// let g = CsrGraph::build(&mut space, 3, [(0, 1), (1, 2)].into_iter())?;
/// let mut arrays = BcArrays::new(&mut space, 3)?;
/// let mut sink = CountingSink::new();
/// let scores = betweenness_centrality(&g, &[0, 2], &mut arrays, &mut sink);
/// assert!(scores[1] > scores[0]);
/// assert!(scores[1] > scores[2]);
/// # Ok(())
/// # }
/// ```
pub fn betweenness_centrality(
    graph: &CsrGraph,
    sources: &[usize],
    arrays: &mut BcArrays,
    sink: &mut dyn AccessSink,
) -> Vec<f64> {
    let n = graph.vertices();
    assert_eq!(arrays.scores.len(), n, "arrays sized for a different graph");
    let BcArrays {
        scores,
        sigma,
        depth,
        delta,
    } = arrays;

    for &source in sources {
        if sink.done() {
            break;
        }
        // Reset per-source state (untimed in GAPBS via epoch tricks).
        for v in 0..n {
            sigma.set_silent(v, 0.0);
            depth.set_silent(v, -1);
            delta.set_silent(v, 0.0);
        }
        sigma.set(source, 1.0, sink);
        depth.set(source, 0, sink);

        // Forward BFS recording visit order.
        let mut order = vec![source];
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let du = depth.get(u, sink);
            let su = sigma.get(u, sink);
            let (start, end) = graph.range(u, sink);
            for i in start..end {
                let v = graph.target(i, sink);
                let dv = depth.get(v, sink);
                sink.instructions(2);
                if dv == -1 {
                    depth.set(v, du + 1, sink);
                    order.push(v);
                }
                if dv == -1 || dv == du + 1 {
                    let sv = sigma.get(v, sink);
                    sigma.set(v, sv + su, sink);
                    sink.instructions(2);
                }
            }
            if sink.done() {
                return scores.as_slice().to_vec();
            }
        }

        // Reverse dependency accumulation.
        for &u in order.iter().rev() {
            let du = depth.get(u, sink);
            let su = sigma.get(u, sink);
            let mut acc = 0.0;
            let (start, end) = graph.range(u, sink);
            for i in start..end {
                let v = graph.target(i, sink);
                sink.instructions(2);
                if depth.get(v, sink) == du + 1 {
                    let term = su / sigma.get(v, sink) * (1.0 + delta.get(v, sink));
                    acc += term;
                    sink.instructions(4);
                }
            }
            delta.set(u, acc, sink);
            if u != source {
                let s = scores.get(u, sink);
                scores.set(u, s + acc, sink);
            }
            if sink.done() {
                break;
            }
        }
    }
    scores.as_slice().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    #[test]
    fn bridge_vertex_has_highest_centrality() {
        let mut s = space();
        // Two cliques joined through vertex 2: 0-1-2, 2-3-4 with extra edges.
        let g = CsrGraph::build(
            &mut s,
            5,
            [(0u64, 1u64), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)].into_iter(),
        )
        .unwrap();
        let mut arrays = BcArrays::new(&mut s, 5).unwrap();
        let mut sink = CountingSink::new();
        let all: Vec<usize> = (0..5).collect();
        let scores = betweenness_centrality(&g, &all, &mut arrays, &mut sink);
        for v in [0usize, 1, 3, 4] {
            assert!(scores[2] > scores[v], "bridge 2 > {v}: {scores:?}");
        }
    }

    #[test]
    fn path_centrality_matches_analytic_value() {
        let mut s = space();
        // Path 0-1-2-3-4. For the middle vertex 2, pairs (0,3),(0,4),(1,3),
        // (1,4) pass through it plus (0..) — classic Brandes value is 4 per
        // direction when summed over all sources... just check symmetry and
        // ordering: centrality(2) > centrality(1) = centrality(3) > ends.
        let g = CsrGraph::build(
            &mut s,
            5,
            [(0u64, 1u64), (1, 2), (2, 3), (3, 4)].into_iter(),
        )
        .unwrap();
        let mut arrays = BcArrays::new(&mut s, 5).unwrap();
        let mut sink = CountingSink::new();
        let all: Vec<usize> = (0..5).collect();
        let scores = betweenness_centrality(&g, &all, &mut arrays, &mut sink);
        assert!((scores[1] - scores[3]).abs() < 1e-9, "symmetry: {scores:?}");
        assert!(scores[2] > scores[1]);
        assert!(scores[1] > scores[0]);
        assert_eq!(scores[0], 0.0);
    }
}
