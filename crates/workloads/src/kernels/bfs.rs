//! Breadth-first search (GAPBS `bfs`).

use super::CsrGraph;
use crate::SimArray;
use atscale_mmu::AccessSink;

/// Top-down BFS from `source` into a caller-allocated parent array
/// (`-1` everywhere initially; `source` becomes its own parent).
///
/// The parent array must be allocated in the **same address space** as the
/// graph (typically via `machine.space_mut()`), so that its simulated
/// accesses resolve; see the `graph_sweep` example. The frontier queue is
/// kept host-side (GAPBS's sliding queue is sequential and negligible next
/// to the graph traffic).
///
/// Returns the number of vertices reached (including `source`).
///
/// # Panics
///
/// Panics if `parent.len() != graph.vertices()`.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::{bfs, CsrGraph};
/// use atscale_workloads::SimArray;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let g = CsrGraph::build(&mut space, 4, [(0, 1), (1, 2)].into_iter())?;
/// let mut parent = SimArray::new(&mut space, "bfs.parent", 4, -1i64)?;
/// let mut sink = CountingSink::new();
/// let reached = bfs(&g, 0, &mut parent, &mut sink);
/// assert_eq!(reached, 3);
/// assert_eq!(parent.as_slice(), &[0, 0, 1, -1]);
/// # Ok(())
/// # }
/// ```
pub fn bfs(
    graph: &CsrGraph,
    source: usize,
    parent: &mut SimArray<i64>,
    sink: &mut dyn AccessSink,
) -> usize {
    assert_eq!(
        parent.len(),
        graph.vertices(),
        "parent array must have one slot per vertex"
    );
    parent.set(source, source as i64, sink);
    let mut reached = 1;
    let mut frontier = vec![source];
    while !frontier.is_empty() && !sink.done() {
        let mut next = Vec::new();
        for &u in &frontier {
            let (start, end) = graph.range(u, sink);
            for i in start..end {
                let v = graph.target(i, sink);
                sink.instructions(2);
                if parent.get(v, sink) == -1 {
                    parent.set(v, u as i64, sink);
                    reached += 1;
                    next.push(v);
                }
            }
            if sink.done() {
                break;
            }
        }
        frontier = next;
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{AddressSpace, BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    fn run_bfs(space: &mut AddressSpace, g: &CsrGraph, source: usize) -> (usize, Vec<i64>) {
        let mut parent = SimArray::new(space, "bfs.parent", g.vertices(), -1i64).unwrap();
        let mut sink = CountingSink::new();
        let reached = bfs(g, source, &mut parent, &mut sink);
        (reached, parent.as_slice().to_vec())
    }

    #[test]
    fn parents_form_a_valid_bfs_tree() {
        let mut s = space();
        // A path plus a branch: 0-1-2-3, 1-4.
        let g = CsrGraph::build(
            &mut s,
            5,
            [(0u64, 1u64), (1, 2), (2, 3), (1, 4)].into_iter(),
        )
        .unwrap();
        let (reached, parents) = run_bfs(&mut s, &g, 0);
        assert_eq!(parents, vec![0, 0, 1, 2, 1]);
        assert_eq!(reached, 5);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 4, [(0u64, 1u64)].into_iter()).unwrap();
        let (reached, parents) = run_bfs(&mut s, &g, 0);
        assert_eq!(reached, 2);
        assert_eq!(parents[2], -1);
        assert_eq!(parents[3], -1);
    }

    #[test]
    fn bfs_on_random_graph_reaches_giant_component() {
        use atscale_gen::urand::{edges, UrandConfig};
        let mut s = space();
        let cfg = UrandConfig::new(9, 3); // 512 vertices, degree 16
        let g = CsrGraph::build(&mut s, 512, edges(cfg)).unwrap();
        let mut parent = SimArray::new(&mut s, "bfs.parent", 512, -1i64).unwrap();
        let mut sink = CountingSink::new();
        let reached = bfs(&g, 0, &mut parent, &mut sink);
        assert!(reached > 500, "degree-16 urand is connected whp: {reached}");
        assert!(sink.loads > 8192, "every edge is examined");
    }

    #[test]
    #[should_panic(expected = "one slot per vertex")]
    fn wrong_parent_size_panics() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 4, [(0u64, 1u64)].into_iter()).unwrap();
        let mut parent = SimArray::new(&mut s, "p", 3, -1i64).unwrap();
        let mut sink = CountingSink::new();
        bfs(&g, 0, &mut parent, &mut sink);
    }
}
