//! CSR graph representation addressed through simulated memory.

use crate::SimArray;
use atscale_mmu::AccessSink;
use atscale_vm::{AddressSpace, VmError};

/// A compressed-sparse-row graph whose `offsets` and `targets` arrays live
/// in simulated virtual memory (via [`SimArray`]), exactly like GAPBS's
/// in-memory representation.
///
/// Graphs are stored undirected: each generated edge is inserted in both
/// directions, and self-loops are dropped.
///
/// # Example
///
/// ```
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::CsrGraph;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let g = CsrGraph::build(&mut space, 4, [(0, 1), (1, 2), (2, 3)].into_iter())?;
/// assert_eq!(g.vertices(), 4);
/// assert_eq!(g.degree_silent(1), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CsrGraph {
    n: usize,
    offsets: SimArray<u64>,
    targets: SimArray<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph over `n` vertices from a directed edge stream,
    /// symmetrising and dropping self-loops.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn build(
        space: &mut AddressSpace,
        n: usize,
        edges: impl Iterator<Item = (u64, u64)>,
    ) -> Result<Self, VmError> {
        // Host-side build (the real benchmark's untimed build phase).
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u != v {
                pairs.push((u as u32, v as u32));
                pairs.push((v as u32, u as u32));
            }
        }
        let mut degree = vec![0u64; n];
        for &(u, _) in &pairs {
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; pairs.len()];
        for &(u, v) in &pairs {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }
        // Sort each adjacency list (GAPBS does; tc requires it).
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Ok(CsrGraph {
            n,
            offsets: SimArray::from_vec(space, "csr.offsets", offsets)?,
            targets: SimArray::from_vec(space, "csr.targets", targets)?,
        })
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.n
    }

    /// Number of directed (symmetrised) edges.
    pub fn directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Adjacency range of `v`, emitting the two offset loads.
    pub fn range(&self, v: usize, sink: &mut dyn AccessSink) -> (usize, usize) {
        let start = self.offsets.get(v, sink) as usize;
        let end = self.offsets.get(v + 1, sink) as usize;
        (start, end)
    }

    /// Adjacency range without simulated accesses.
    pub fn range_silent(&self, v: usize) -> (usize, usize) {
        (
            self.offsets.get_silent(v) as usize,
            self.offsets.get_silent(v + 1) as usize,
        )
    }

    /// Degree of `v` without simulated accesses.
    pub fn degree_silent(&self, v: usize) -> usize {
        let (s, e) = self.range_silent(v);
        e - s
    }

    /// Reads the target at CSR index `i`, emitting the load.
    pub fn target(&self, i: usize, sink: &mut dyn AccessSink) -> usize {
        self.targets.get(i, sink) as usize
    }

    /// Reads the target at CSR index `i` silently.
    pub fn target_silent(&self, i: usize) -> usize {
        self.targets.get_silent(i) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    #[test]
    fn builds_symmetric_sorted_csr() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 4, [(0u64, 2u64), (0, 1), (3, 0)].into_iter()).unwrap();
        assert_eq!(g.directed_edges(), 6);
        let (start, end) = g.range_silent(0);
        let neigh: Vec<usize> = (start..end).map(|i| g.target_silent(i)).collect();
        assert_eq!(neigh, vec![1, 2, 3], "sorted adjacency");
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 3, [(1u64, 1u64), (0, 1)].into_iter()).unwrap();
        assert_eq!(g.directed_edges(), 2);
        assert_eq!(g.degree_silent(1), 1);
    }

    #[test]
    fn accesses_are_emitted() {
        let mut s = space();
        let g = CsrGraph::build(&mut s, 3, [(0u64, 1u64), (1, 2)].into_iter()).unwrap();
        let mut sink = CountingSink::new();
        let (start, end) = g.range(1, &mut sink);
        for i in start..end {
            g.target(i, &mut sink);
        }
        assert_eq!(sink.loads, 2 + 2, "two offsets + two targets");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut s = space();
        let _ = CsrGraph::build(&mut s, 2, [(0u64, 5u64)].into_iter());
    }
}
