//! Triangle counting (GAPBS `tc`).

use super::CsrGraph;
use atscale_mmu::AccessSink;

/// Counts triangles by merge-intersecting sorted adjacency lists, visiting
/// each triangle once via the `u < v < w` ordering — the same strategy as
/// GAPBS (which additionally relabels by degree for scale-free graphs; the
/// ordering filter below provides the equivalent work-concentration
/// behaviour on our already-scrambled vertex ids).
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::{triangle_count, CsrGraph};
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let g = CsrGraph::build(&mut space, 3, [(0, 1), (1, 2), (2, 0)].into_iter())?;
/// let mut sink = CountingSink::new();
/// assert_eq!(triangle_count(&g, &mut sink), 1);
/// # Ok(())
/// # }
/// ```
pub fn triangle_count(graph: &CsrGraph, sink: &mut dyn AccessSink) -> u64 {
    let n = graph.vertices();
    let mut triangles = 0u64;
    for u in 0..n {
        if sink.done() {
            break;
        }
        let (us, ue) = graph.range(u, sink);
        for i in us..ue {
            let v = graph.target(i, sink);
            sink.instructions(2);
            if v <= u {
                continue; // ordering filter: count each triangle once
            }
            // Merge-intersect adj(u) and adj(v), counting w > v.
            let (vs, ve) = graph.range(v, sink);
            let (mut a, mut b) = (us, vs);
            while a < ue && b < ve {
                let wa = graph.target(a, sink);
                let wb = graph.target(b, sink);
                sink.instructions(3);
                if wa <= v {
                    a += 1;
                    continue;
                }
                match wa.cmp(&wb) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{AddressSpace, BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    /// O(n³) brute force over the adjacency matrix.
    fn brute_force(n: usize, edges: &[(u64, u64)]) -> u64 {
        let mut adj = vec![vec![false; n]; n];
        for &(u, v) in edges {
            if u != v {
                adj[u as usize][v as usize] = true;
                adj[v as usize][u as usize] = true;
            }
        }
        let mut count = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if !adj[a][b] {
                    continue;
                }
                count += ((b + 1)..n).filter(|&c| adj[a][c] && adj[b][c]).count() as u64;
            }
        }
        count
    }

    #[test]
    fn counts_k4_correctly() {
        let mut s = space();
        let edges = [(0u64, 1u64), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = CsrGraph::build(&mut s, 4, edges.into_iter()).unwrap();
        let mut sink = CountingSink::new();
        assert_eq!(triangle_count(&g, &mut sink), 4);
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        use atscale_gen::kron::{edges, KronConfig};
        let cfg = KronConfig::new(6, 7); // 64 vertices — brute-forceable
        let edge_list: Vec<(u64, u64)> = edges(cfg).collect();
        let mut s = space();
        let g = CsrGraph::build(&mut s, 64, edge_list.iter().copied()).unwrap();
        let mut sink = CountingSink::new();
        // Note: CSR drops duplicate edges? No — it keeps multi-edges, which
        // would double-count. Deduplicate for the comparison.
        let mut dedup = edge_list.clone();
        dedup.iter_mut().for_each(|e| {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        });
        dedup.sort_unstable();
        dedup.dedup();
        let mut s2 = space();
        let g2 = CsrGraph::build(&mut s2, 64, dedup.iter().copied()).unwrap();
        let _ = g; // original kept to ensure multigraph build also works
        assert_eq!(triangle_count(&g2, &mut sink), brute_force(64, &dedup));
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let mut s = space();
        // A star is triangle-free.
        let g = CsrGraph::build(
            &mut s,
            5,
            [(0u64, 1u64), (0, 2), (0, 3), (0, 4)].into_iter(),
        )
        .unwrap();
        let mut sink = CountingSink::new();
        assert_eq!(triangle_count(&g, &mut sink), 0);
    }
}
