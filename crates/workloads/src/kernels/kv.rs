//! A memcached-like key-value cache: chained hash table + LRU eviction,
//! with values in a slab, all addressed through simulated memory.

use crate::SimArray;
use atscale_gen::splitmix64;
use atscale_mmu::AccessSink;
use atscale_vm::{AddressSpace, VmError};

/// Sentinel for "no item" in index-plus-one links.
const NIL: u32 = 0;

/// A fixed-capacity KV cache with LRU eviction.
///
/// Structure mirrors memcached: a bucket array of chain heads, per-item
/// chain links, an intrusive LRU list, and a value slab. Every lookup
/// walks its bucket chain with simulated loads; every hit touches the
/// value bytes and rewires the LRU list with simulated stores.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::kernels::KvCache;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let mut cache = KvCache::new(&mut space, 64, 256)?;
/// let mut sink = CountingSink::new();
/// cache.set(42, &mut sink);
/// assert!(cache.get(42, &mut sink));
/// assert!(!cache.get(7, &mut sink));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KvCache {
    buckets: SimArray<u32>,
    keys: SimArray<u64>,
    chain_next: SimArray<u32>,
    lru_prev: SimArray<u32>,
    lru_next: SimArray<u32>,
    values: SimArray<u8>,
    value_size: usize,
    capacity: usize,
    len: usize,
    lru_head: u32,
    lru_tail: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl KvCache {
    /// Creates a cache holding up to `capacity` items of `value_size` bytes.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(
        space: &mut AddressSpace,
        capacity: usize,
        value_size: usize,
    ) -> Result<Self, VmError> {
        assert!(capacity > 0, "cache must hold at least one item");
        Ok(KvCache {
            buckets: SimArray::new(space, "kv.buckets", capacity, NIL)?,
            keys: SimArray::new(space, "kv.keys", capacity, 0u64)?,
            chain_next: SimArray::new(space, "kv.chain", capacity, NIL)?,
            lru_prev: SimArray::new(space, "kv.lru_prev", capacity, NIL)?,
            lru_next: SimArray::new(space, "kv.lru_next", capacity, NIL)?,
            values: SimArray::new(space, "kv.values", capacity * value_size, 0u8)?,
            value_size,
            capacity,
            len: 0,
            lru_head: NIL,
            lru_tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    }

    /// Items currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(hits, misses, evictions)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    fn bucket_of(&self, key: u64) -> usize {
        (splitmix64(key) % self.capacity as u64) as usize
    }

    /// Looks up `key`; on a hit, reads the value and refreshes LRU.
    pub fn get(&mut self, key: u64, sink: &mut dyn AccessSink) -> bool {
        sink.instructions(8); // hashing + dispatch
        match self.find(key, sink) {
            Some(slot) => {
                self.touch_value(slot, false, sink);
                self.lru_unlink(slot, sink);
                self.lru_push_front(slot, sink);
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts or updates `key`, writing its value bytes. Evicts the LRU
    /// item when full.
    pub fn set(&mut self, key: u64, sink: &mut dyn AccessSink) {
        sink.instructions(8);
        if let Some(slot) = self.find(key, sink) {
            self.touch_value(slot, true, sink);
            self.lru_unlink(slot, sink);
            self.lru_push_front(slot, sink);
            return;
        }
        let slot = if self.len < self.capacity {
            let s = self.len;
            self.len += 1;
            s
        } else {
            self.evict(sink)
        };
        self.keys.set(slot, key, sink);
        let bucket = self.bucket_of(key);
        let head = self.buckets.get(bucket, sink);
        self.chain_next.set(slot, head, sink);
        self.buckets.set(bucket, slot as u32 + 1, sink);
        self.touch_value(slot, true, sink);
        self.lru_push_front(slot, sink);
        sink.instructions(6);
    }

    fn find(&mut self, key: u64, sink: &mut dyn AccessSink) -> Option<usize> {
        let bucket = self.bucket_of(key);
        let mut cursor = self.buckets.get(bucket, sink);
        while cursor != NIL {
            let slot = cursor as usize - 1;
            sink.instructions(3);
            if self.keys.get(slot, sink) == key {
                return Some(slot);
            }
            cursor = self.chain_next.get(slot, sink);
        }
        None
    }

    fn touch_value(&mut self, slot: usize, write: bool, sink: &mut dyn AccessSink) {
        let base = slot * self.value_size;
        let mut off = 0;
        while off < self.value_size {
            if write {
                self.values.set(base + off, off as u8, sink);
            } else {
                self.values.get(base + off, sink);
            }
            off += 64;
        }
        sink.instructions((self.value_size / 64).max(1) as u64);
    }

    fn evict(&mut self, sink: &mut dyn AccessSink) -> usize {
        debug_assert_ne!(self.lru_tail, NIL, "full cache has an LRU tail");
        let victim = self.lru_tail as usize - 1;
        self.evictions += 1;
        self.lru_unlink(victim, sink);
        // Unlink from its bucket chain.
        let key = self.keys.get(victim, sink);
        let bucket = self.bucket_of(key);
        let mut cursor = self.buckets.get(bucket, sink);
        if cursor as usize == victim + 1 {
            let next = self.chain_next.get(victim, sink);
            self.buckets.set(bucket, next, sink);
        } else {
            while cursor != NIL {
                let slot = cursor as usize - 1;
                let next = self.chain_next.get(slot, sink);
                if next as usize == victim + 1 {
                    let skip = self.chain_next.get(victim, sink);
                    self.chain_next.set(slot, skip, sink);
                    break;
                }
                cursor = next;
            }
        }
        sink.instructions(8);
        victim
    }

    fn lru_unlink(&mut self, slot: usize, sink: &mut dyn AccessSink) {
        let prev = self.lru_prev.get(slot, sink);
        let next = self.lru_next.get(slot, sink);
        if prev != NIL {
            self.lru_next.set(prev as usize - 1, next, sink);
        } else if self.lru_head as usize == slot + 1 {
            self.lru_head = next;
        }
        if next != NIL {
            self.lru_prev.set(next as usize - 1, prev, sink);
        } else if self.lru_tail as usize == slot + 1 {
            self.lru_tail = prev;
        }
        self.lru_prev.set(slot, NIL, sink);
        self.lru_next.set(slot, NIL, sink);
    }

    fn lru_push_front(&mut self, slot: usize, sink: &mut dyn AccessSink) {
        let old_head = self.lru_head;
        self.lru_next.set(slot, old_head, sink);
        self.lru_prev.set(slot, NIL, sink);
        if old_head != NIL {
            self.lru_prev
                .set(old_head as usize - 1, slot as u32 + 1, sink);
        }
        self.lru_head = slot as u32 + 1;
        if self.lru_tail == NIL {
            self.lru_tail = slot as u32 + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn cache(capacity: usize) -> (AddressSpace, KvCache) {
        let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
        let cache = KvCache::new(&mut space, capacity, 128).unwrap();
        (space, cache)
    }

    #[test]
    fn get_after_set_hits() {
        let (_s, mut c) = cache(16);
        let mut sink = CountingSink::new();
        for key in [1u64, 100, 12345] {
            c.set(key, &mut sink);
        }
        for key in [1u64, 100, 12345] {
            assert!(c.get(key, &mut sink), "key {key}");
        }
        assert!(!c.get(999, &mut sink));
        assert_eq!(c.stats().0, 3);
        assert_eq!(c.stats().1, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lru_eviction_removes_coldest_key() {
        let (_s, mut c) = cache(4);
        let mut sink = CountingSink::new();
        for key in 0..4u64 {
            c.set(key, &mut sink);
        }
        c.get(0, &mut sink); // refresh key 0; key 1 is now coldest
        c.set(100, &mut sink); // evicts key 1
        assert!(c.get(0, &mut sink));
        assert!(!c.get(1, &mut sink), "coldest key evicted");
        assert!(c.get(100, &mut sink));
        assert_eq!(c.stats().2, 1);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn update_does_not_grow_the_cache() {
        let (_s, mut c) = cache(4);
        let mut sink = CountingSink::new();
        c.set(7, &mut sink);
        c.set(7, &mut sink);
        c.set(7, &mut sink);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().2, 0);
    }

    #[test]
    fn chains_survive_collisions() {
        // Capacity 2 → every key collides in a 2-bucket table often.
        let (_s, mut c) = cache(2);
        let mut sink = CountingSink::new();
        c.set(10, &mut sink);
        c.set(20, &mut sink);
        assert!(c.get(10, &mut sink));
        assert!(c.get(20, &mut sink));
        // Insert a third: evicts LRU (10, since 20 was touched last... then
        // 10 was re-touched — check semantics precisely below).
        c.set(30, &mut sink);
        assert!(c.get(30, &mut sink));
        assert_eq!(c.len(), 2);
        // Exactly one of 10/20 survived: the most recently used (20).
        assert!(c.get(20, &mut sink));
        assert!(!c.get(10, &mut sink));
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let (_s, mut c) = cache(32);
        let mut sink = CountingSink::new();
        for i in 0..1000u64 {
            c.set(i % 100, &mut sink);
            assert!(c.get(i % 100, &mut sink), "just-set key must hit");
            assert!(c.len() <= 32);
        }
        let (hits, misses, evictions) = c.stats();
        assert_eq!(hits + misses, 1000);
        assert!(evictions > 0);
    }
}
