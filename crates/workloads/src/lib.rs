//! # atscale-workloads — the paper's Table I workload suite
//!
//! The paper characterises eight programs across four suites:
//!
//! | Suite | Program(s) | Generator(s) | Type |
//! |-------|-----------|--------------|------|
//! | GAPBS | `bc bfs cc pr tc` | `urand`, `kron` | graph processing |
//! | YCSB  | `memcached` | `uniform` | key-value store |
//! | SPEC 2006 | `mcf` | `rand` | network simplex |
//! | PARSEC | `streamcluster` | `rand` | clustering |
//!
//! This crate provides each of them **twice**:
//!
//! 1. [`kernels`] — real, executable Rust implementations of the algorithms
//!    (BFS, betweenness centrality, connected components, PageRank, triangle
//!    counting on actual CSR graphs; a chaining hash-table KV cache; a
//!    successive-shortest-path min-cost-flow solver; a streaming k-median
//!    clusterer). Their data lives in host memory but is *addressed* through
//!    [`SimArray`]s in simulated virtual memory, so every load/store they
//!    perform is pushed into an [`atscale_mmu::AccessSink`]. These run at
//!    small-to-medium footprints and anchor the models to reality.
//!
//! 2. [`models`] — statistical access-pattern models of the same kernels
//!    that reach the paper's multi-gigabyte footprints in O(1) host memory
//!    by exploiting the streaming generators in `atscale-gen`. Validation
//!    tests assert that where kernels and models overlap in footprint, the
//!    translation metrics agree in trend.
//!
//! 3. [`native`] — `SimAlloc`-free host-memory twins of four of the
//!    kernels (BFS, PageRank, KV, mcf) for the `atscale-native` hardware
//!    counter harness, where simulated-memory bookkeeping would drown the
//!    PMU readings the harness exists to take.
//!
//! The [`registry`] module names the paper's 13 workload–generator
//! combinations and builds the model for any requested footprint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod meta;
pub mod models;
pub mod native;
pub mod registry;
mod simalloc;
mod workload;

pub use native::{NativeKernel, PreparedKernel};
pub use registry::{Generator, Program, WorkloadId};
pub use simalloc::{SimArray, SimBitmap};
pub use workload::Workload;
