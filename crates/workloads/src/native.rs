//! Native, `SimAlloc`-free mini-kernels for hardware-counter profiling.
//!
//! The [`kernels`](crate::kernels) module routes every load/store through
//! simulated virtual memory — exactly what a PMU harness must *not* do,
//! because the bookkeeping would dominate the counter readings. This module
//! re-implements the four workloads the cross-validation plane profiles
//! (BFS, PageRank, the memcached-style KV cache, and an mcf-style arc
//! relaxation) directly on host memory: plain `Vec`s, deterministic
//! generator-seeded inputs, and a strict **setup/measure split** so
//! `atscale-native` can open its counter group after construction and read
//! it around [`PreparedKernel::run`] alone.
//!
//! Footprints are requested in bytes and honoured approximately (the
//! realised value is reported by [`PreparedKernel::footprint_bytes`]); the
//! per-workload byte budgets below mirror the resident data structures of
//! the simulated twins so a sim run and a native run at the same `MB` label
//! stress comparable working sets. All randomness derives from
//! [`splitmix64`] streams, so a `(kernel, footprint, seed)` triple is fully
//! reproducible and [`PreparedKernel::run`] returns the same checksum on
//! every call.

use atscale_gen::{seed_stream, splitmix64};
use std::hint::black_box;

/// Out-degree used by the synthetic uniform-random graphs (matches the
/// paper's GAPBS `urand` configuration of average degree 16).
const DEGREE: usize = 16;

/// Value payload per cached item, matching the sim KV cache default shape.
const KV_VALUE_BYTES: usize = 64;

/// Arcs per node in the mcf-style network.
const MCF_ARCS_PER_NODE: usize = 8;

/// PageRank rounds per measured pass (enough to touch every edge
/// repeatedly without making `--quick` runs slow).
const PR_ITERATIONS: usize = 5;

/// Bellman-Ford-style relaxation rounds per measured mcf pass.
const MCF_ROUNDS: usize = 4;

/// The native kernels the hardware-counter harness can profile.
///
/// Each maps onto one of the registry's simulated workloads (see
/// [`NativeKernel::sim_workload`]), so paired sim/native telemetry streams
/// join on the workload component of the run label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeKernel {
    /// Top-down BFS on a uniform-random CSR graph (`bfs-urand`).
    Bfs,
    /// Pull-style PageRank on the same graph family (`pr-urand`).
    Pr,
    /// Chained-hash KV cache under a uniform YCSB-C read stream
    /// (`memcached-uniform`).
    Kv,
    /// Arc-relaxation over a random min-cost-flow network (`mcf-rand`).
    Mcf,
}

impl NativeKernel {
    /// Every native kernel, in profiling order.
    pub const ALL: [NativeKernel; 4] = [
        NativeKernel::Bfs,
        NativeKernel::Pr,
        NativeKernel::Kv,
        NativeKernel::Mcf,
    ];

    /// The registry workload id this kernel natively mirrors — the
    /// `workload` component of a sim run label such as `bfs-urand 64MB 4K`.
    pub fn sim_workload(self) -> &'static str {
        match self {
            NativeKernel::Bfs => "bfs-urand",
            NativeKernel::Pr => "pr-urand",
            NativeKernel::Kv => "memcached-uniform",
            NativeKernel::Mcf => "mcf-rand",
        }
    }

    /// Short name used in file stems and log lines.
    pub fn name(self) -> &'static str {
        match self {
            NativeKernel::Bfs => "bfs",
            NativeKernel::Pr => "pr",
            NativeKernel::Kv => "kv",
            NativeKernel::Mcf => "mcf",
        }
    }

    /// Bytes of resident data per unit (vertex / item / node).
    fn bytes_per_unit(self) -> usize {
        match self {
            // offsets (8) + targets (DEGREE * 4) + parent (4)
            NativeKernel::Bfs => 8 + DEGREE * 4 + 4,
            // offsets (8) + targets (DEGREE * 4) + ranks (8) + contrib (8)
            NativeKernel::Pr => 8 + DEGREE * 4 + 16,
            // bucket head (4) + key (8) + chain link (4) + value slab
            NativeKernel::Kv => 16 + KV_VALUE_BYTES,
            // potential (8) + arcs (tail 4 + head 4 + cost 4)
            NativeKernel::Mcf => 8 + MCF_ARCS_PER_NODE * 12,
        }
    }

    /// Builds the kernel's working set for roughly `footprint_bytes` of
    /// resident data. Construction is the *setup* phase: nothing here is
    /// meant to run under counters.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_bytes` is too small to hold even a handful of
    /// units (< 64 units' worth of data).
    pub fn prepare(self, footprint_bytes: usize, seed: u64) -> PreparedKernel {
        let units = footprint_bytes / self.bytes_per_unit();
        assert!(
            units >= 64,
            "footprint {footprint_bytes}B too small for {}",
            self.name()
        );
        let inner = match self {
            NativeKernel::Bfs => Inner::Bfs {
                graph: CsrGraph::uniform(units, seed),
                parent: vec![u32::MAX; units],
            },
            NativeKernel::Pr => Inner::Pr {
                graph: CsrGraph::uniform(units, seed),
                ranks: vec![0.0; units],
                contrib: vec![0.0; units],
            },
            NativeKernel::Kv => Inner::Kv(KvTable::populate(units, seed)),
            NativeKernel::Mcf => Inner::Mcf(ArcNetwork::random(units, seed)),
        };
        PreparedKernel {
            kernel: self,
            footprint: units * self.bytes_per_unit(),
            inner,
        }
    }
}

/// A constructed working set, ready for measured passes.
#[derive(Debug)]
pub struct PreparedKernel {
    kernel: NativeKernel,
    footprint: usize,
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Bfs {
        graph: CsrGraph,
        parent: Vec<u32>,
    },
    Pr {
        graph: CsrGraph,
        ranks: Vec<f64>,
        contrib: Vec<f64>,
    },
    Kv(KvTable),
    Mcf(ArcNetwork),
}

impl PreparedKernel {
    /// Which kernel this is.
    pub fn kernel(&self) -> NativeKernel {
        self.kernel
    }

    /// The realised resident footprint in bytes (≤ the requested budget,
    /// rounded down to whole units).
    pub fn footprint_bytes(&self) -> usize {
        self.footprint
    }

    /// One measured pass over the working set. Deterministic: repeated
    /// calls return the same checksum, so harness warm-up passes and
    /// measured passes are interchangeable. The result is routed through
    /// [`black_box`] internally; callers should still consume it so the
    /// traversals cannot be optimised away.
    pub fn run(&mut self) -> u64 {
        let sum = match &mut self.inner {
            Inner::Bfs { graph, parent } => run_bfs(graph, parent),
            Inner::Pr {
                graph,
                ranks,
                contrib,
            } => run_pagerank(graph, ranks, contrib),
            Inner::Kv(table) => table.run_reads(),
            Inner::Mcf(net) => net.relax(),
        };
        black_box(sum)
    }
}

/// Compressed-sparse-row graph over `u32` vertex ids, built from a
/// splitmix64-hashed uniform edge stream. Degrees are irregular (uniform
/// in `[DEGREE-8, DEGREE+8]`, pairwise balanced so the edge total is
/// exactly `vertices * DEGREE` and footprint accounting stays exact); a
/// perfectly regular graph would make pull-PageRank degenerate to the
/// uniform distribution for every seed.
#[derive(Debug)]
struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl CsrGraph {
    fn uniform(vertices: usize, seed: u64) -> CsrGraph {
        let n = vertices as u64;
        let s = seed_stream(seed, 1);
        let deg_s = seed_stream(seed, 5);
        let mut offsets = Vec::with_capacity(vertices + 1);
        let mut targets = Vec::with_capacity(vertices * DEGREE);
        offsets.push(0u64);
        let mut total = 0u64;
        for v in 0..vertices {
            let deg = if v + 1 == vertices && vertices % 2 == 1 {
                DEGREE
            } else {
                let skew = (splitmix64(deg_s ^ (v / 2) as u64) % 9) as usize;
                if v % 2 == 0 {
                    DEGREE - skew
                } else {
                    DEGREE + skew
                }
            };
            for k in 0..deg as u64 {
                targets.push((splitmix64(s ^ (total + k)) % n) as u32);
            }
            total += deg as u64;
            offsets.push(total);
        }
        CsrGraph { offsets, targets }
    }

    #[inline]
    fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn neighbors(&self, v: usize) -> &[u32] {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        &self.targets[start..end]
    }
}

/// Top-down BFS from vertex 0; the frontier queue is host-side scratch
/// just as in the simulated twin. Returns `reached + Σ parent`.
fn run_bfs(graph: &CsrGraph, parent: &mut [u32]) -> u64 {
    parent.fill(u32::MAX);
    parent[0] = 0;
    let mut reached = 1u64;
    let mut frontier = vec![0u32];
    let mut next = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            for &v in graph.neighbors(u as usize) {
                if parent[v as usize] == u32::MAX {
                    parent[v as usize] = u;
                    reached += 1;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    reached + parent.iter().map(|&p| u64::from(p) & 0xFFFF).sum::<u64>()
}

/// Pull-style PageRank, [`PR_ITERATIONS`] rounds, GAPBS damping. Returns
/// a position-sensitive fold of the per-vertex rank bit patterns (the
/// plain rank *sum* is ~1.0 for any seed, so it cannot serve as a
/// checksum; deterministic: same input → same floats).
fn run_pagerank(graph: &CsrGraph, ranks: &mut [f64], contrib: &mut [f64]) -> u64 {
    const DAMPING: f64 = 0.85;
    let n = graph.vertices();
    let base = (1.0 - DAMPING) / n as f64;
    ranks.fill(1.0 / n as f64);
    for _ in 0..PR_ITERATIONS {
        for v in 0..n {
            contrib[v] = ranks[v] / graph.degree(v) as f64;
        }
        for (v, rank) in ranks.iter_mut().enumerate().take(n) {
            let mut sum = 0.0;
            for &u in graph.neighbors(v) {
                sum += contrib[u as usize];
            }
            *rank = base + DAMPING * sum;
        }
    }
    ranks.iter().enumerate().fold(0u64, |acc, (i, r)| {
        acc.wrapping_add(r.to_bits().rotate_left((i % 63) as u32))
    })
}

/// A memcached-shaped chained hash table: bucket heads, per-item chain
/// links, and a value slab, all index-plus-one linked like the simulated
/// [`KvCache`](crate::kernels::KvCache).
#[derive(Debug)]
struct KvTable {
    buckets: Vec<u32>,
    keys: Vec<u64>,
    chain_next: Vec<u32>,
    values: Vec<u8>,
    filled: usize,
    seed: u64,
}

/// Sentinel for "no item" in index-plus-one links.
const NIL: u32 = 0;

impl KvTable {
    /// Builds a table of `capacity` slots and inserts `capacity * 7 / 8`
    /// deterministic keys (memcached-like fill factor). Setup phase.
    fn populate(capacity: usize, seed: u64) -> KvTable {
        let mut table = KvTable {
            buckets: vec![NIL; capacity],
            keys: vec![0; capacity],
            chain_next: vec![NIL; capacity],
            values: vec![0; capacity * KV_VALUE_BYTES],
            filled: capacity * 7 / 8,
            seed,
        };
        let key_seed = seed_stream(seed, 2);
        for slot in 0..table.filled {
            let key = splitmix64(key_seed ^ slot as u64);
            let bucket = (splitmix64(key) % capacity as u64) as usize;
            table.keys[slot] = key;
            table.chain_next[slot] = table.buckets[bucket];
            table.buckets[bucket] = slot as u32 + 1;
            let v = &mut table.values[slot * KV_VALUE_BYTES..(slot + 1) * KV_VALUE_BYTES];
            v.fill((key & 0xFF) as u8);
        }
        table
    }

    /// One read pass: `capacity` uniform GETs over a key space twice the
    /// filled size (so roughly half hit), each hit summing its value
    /// bytes — the measured phase.
    fn run_reads(&mut self) -> u64 {
        let capacity = self.buckets.len();
        let op_seed = seed_stream(self.seed, 3);
        let key_seed = seed_stream(self.seed, 2);
        let key_space = (self.filled * 2) as u64;
        let mut hits = 0u64;
        let mut sum = 0u64;
        for op in 0..capacity {
            let probe = splitmix64(op_seed ^ op as u64) % key_space;
            // Keys were inserted for slots < filled; re-derive the probed
            // key through the same stream so hits are real chain walks.
            let key = splitmix64(key_seed ^ probe);
            let bucket = (splitmix64(key) % capacity as u64) as usize;
            let mut link = self.buckets[bucket];
            while link != NIL {
                let slot = (link - 1) as usize;
                if self.keys[slot] == key {
                    hits += 1;
                    let v = &self.values[slot * KV_VALUE_BYTES..(slot + 1) * KV_VALUE_BYTES];
                    sum += v.iter().map(|&b| u64::from(b)).sum::<u64>();
                    break;
                }
                link = self.chain_next[slot];
            }
        }
        hits + sum
    }
}

/// An mcf-style network: node potentials plus a flat arc list in hashed
/// (cache-hostile) order, relaxed Bellman-Ford style.
#[derive(Debug)]
struct ArcNetwork {
    potential: Vec<i64>,
    arc_tail: Vec<u32>,
    arc_head: Vec<u32>,
    arc_cost: Vec<i32>,
}

impl ArcNetwork {
    fn random(nodes: usize, seed: u64) -> ArcNetwork {
        let n = nodes as u64;
        let s = seed_stream(seed, 4);
        let arcs = nodes * MCF_ARCS_PER_NODE;
        let mut arc_tail = Vec::with_capacity(arcs);
        let mut arc_head = Vec::with_capacity(arcs);
        let mut arc_cost = Vec::with_capacity(arcs);
        for a in 0..arcs {
            let h = splitmix64(s ^ a as u64);
            arc_tail.push((h % n) as u32);
            arc_head.push((splitmix64(h) % n) as u32);
            arc_cost.push(((h >> 32) % 1000) as i32 + 1);
        }
        ArcNetwork {
            potential: vec![i64::MAX / 4; nodes],
            arc_tail,
            arc_head,
            arc_cost,
        }
    }

    /// [`MCF_ROUNDS`] relaxation sweeps over the arc list from a fixed
    /// source. Potentials are reset first so every pass is identical.
    fn relax(&mut self) -> u64 {
        self.potential.fill(i64::MAX / 4);
        self.potential[0] = 0;
        for _ in 0..MCF_ROUNDS {
            for a in 0..self.arc_tail.len() {
                let tail = self.arc_tail[a] as usize;
                let head = self.arc_head[a] as usize;
                let candidate = self.potential[tail].saturating_add(i64::from(self.arc_cost[a]));
                if candidate < self.potential[head] {
                    self.potential[head] = candidate;
                }
            }
        }
        self.potential
            .iter()
            .map(|&p| (p as u64) & 0xFFFF_FFFF)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::WorkloadId;

    const MB: usize = 1 << 20;

    #[test]
    fn every_kernel_is_deterministic_across_runs_and_rebuilds() {
        for kernel in NativeKernel::ALL {
            let mut a = kernel.prepare(MB, 42);
            let first = a.run();
            assert_eq!(first, a.run(), "{} repeat run drifted", kernel.name());
            let mut b = kernel.prepare(MB, 42);
            assert_eq!(first, b.run(), "{} rebuild drifted", kernel.name());
        }
    }

    #[test]
    fn different_seeds_change_the_checksum() {
        for kernel in NativeKernel::ALL {
            let x = kernel.prepare(MB, 1).run();
            let y = kernel.prepare(MB, 2).run();
            assert_ne!(x, y, "{} ignores its seed", kernel.name());
        }
    }

    #[test]
    fn realised_footprint_is_close_to_the_request() {
        for kernel in NativeKernel::ALL {
            let prepared = kernel.prepare(4 * MB, 7);
            let got = prepared.footprint_bytes();
            assert!(got <= 4 * MB, "{} overshot: {got}", kernel.name());
            assert!(
                got >= 4 * MB - kernel.bytes_per_unit(),
                "{} undershot: {got}",
                kernel.name()
            );
        }
    }

    #[test]
    fn sim_workload_names_exist_in_the_registry() {
        let known: Vec<String> = WorkloadId::all()
            .iter()
            .map(WorkloadId::to_string)
            .collect();
        for kernel in NativeKernel::ALL {
            assert!(
                known.iter().any(|n| n == kernel.sim_workload()),
                "{} maps to unknown workload {}",
                kernel.name(),
                kernel.sim_workload()
            );
        }
    }

    #[test]
    fn bfs_reaches_the_giant_component() {
        let mut prepared = NativeKernel::Bfs.prepare(MB, 9);
        prepared.run();
        // Degree-16 urand is connected whp, so nearly every parent entry
        // is set after a pass.
        let Inner::Bfs { parent, .. } = &prepared.inner else {
            unreachable!()
        };
        let reached = parent.iter().filter(|&&p| p != u32::MAX).count();
        assert!(reached * 10 > parent.len() * 9, "only {reached} reached");
    }

    #[test]
    fn kv_read_pass_hits_roughly_half() {
        let table = match NativeKernel::Kv.prepare(MB, 11).inner {
            Inner::Kv(t) => t,
            _ => unreachable!(),
        };
        let mut table = table;
        let capacity = table.buckets.len();
        // hits + value sums: every hit adds 64 * (key & 0xFF) ≥ 0, so
        // bound the raw hit count instead by re-walking.
        let _ = table.run_reads();
        let op_seed = seed_stream(11_u64, 3);
        let key_seed = seed_stream(11_u64, 2);
        let key_space = (table.filled * 2) as u64;
        let mut hits = 0usize;
        for op in 0..capacity {
            let probe = splitmix64(op_seed ^ op as u64) % key_space;
            if probe < table.filled as u64 {
                let key = splitmix64(key_seed ^ probe);
                let bucket = (splitmix64(key) % capacity as u64) as usize;
                let mut link = table.buckets[bucket];
                while link != NIL {
                    let slot = (link - 1) as usize;
                    if table.keys[slot] == key {
                        hits += 1;
                        break;
                    }
                    link = table.chain_next[slot];
                }
            }
        }
        assert!(
            hits * 10 > capacity * 3 && hits * 10 < capacity * 7,
            "hit rate off: {hits}/{capacity}"
        );
    }
}
