//! Instrumented arrays: host data addressed through simulated virtual
//! memory.
//!
//! [`SimArray<T>`] is how the *real* kernels couple to the simulator: the
//! element values live in an ordinary `Vec<T>` (so the algorithm genuinely
//! computes), while every `get`/`set` also emits the corresponding simulated
//! virtual address to an [`AccessSink`]. The MMU stack therefore sees
//! exactly the address trace the algorithm produces.

use atscale_mmu::AccessSink;
use atscale_vm::{AddressSpace, VirtAddr, VmError};

/// A typed array in simulated virtual memory backed by host data.
///
/// # Example
///
/// ```
/// use atscale_mmu::CountingSink;
/// use atscale_vm::{AddressSpace, BackingPolicy, PageSize};
/// use atscale_workloads::SimArray;
///
/// # fn main() -> Result<(), atscale_vm::VmError> {
/// let mut space = AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K));
/// let mut arr = SimArray::new(&mut space, "ranks", 100, 0.0f64)?;
/// let mut sink = CountingSink::new();
/// arr.set(3, 1.5, &mut sink);
/// assert_eq!(arr.get(3, &mut sink), 1.5);
/// assert_eq!(sink.loads, 1);
/// assert_eq!(sink.stores, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimArray<T> {
    base: VirtAddr,
    data: Vec<T>,
}

impl<T: Copy> SimArray<T> {
    /// Allocates a named segment holding `len` elements of `fill`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the address space.
    pub fn new(space: &mut AddressSpace, name: &str, len: usize, fill: T) -> Result<Self, VmError> {
        Self::from_vec(space, name, vec![fill; len])
    }

    /// Wraps an existing host vector in a simulated segment.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the address space.
    pub fn from_vec(space: &mut AddressSpace, name: &str, data: Vec<T>) -> Result<Self, VmError> {
        let bytes = (data.len().max(1) * size_of::<T>()) as u64;
        let seg = space.alloc_heap(name, bytes)?;
        Ok(SimArray {
            base: seg.base(),
            data,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated virtual address of element `i`.
    #[inline]
    pub fn va(&self, i: usize) -> VirtAddr {
        debug_assert!(i < self.data.len());
        self.base.add((i * size_of::<T>()) as u64)
    }

    /// Reads element `i`, emitting the load to `sink`.
    #[inline]
    pub fn get(&self, i: usize, sink: &mut dyn AccessSink) -> T {
        sink.load(self.va(i));
        self.data[i]
    }

    /// Writes element `i`, emitting the store to `sink`.
    #[inline]
    pub fn set(&mut self, i: usize, value: T, sink: &mut dyn AccessSink) {
        sink.store(self.va(i));
        self.data[i] = value;
    }

    /// Reads element `i` without touching the simulator (setup-phase work
    /// that a real program would have done before measurement).
    #[inline]
    pub fn get_silent(&self, i: usize) -> T {
        self.data[i]
    }

    /// Writes element `i` without touching the simulator.
    #[inline]
    pub fn set_silent(&mut self, i: usize, value: T) {
        self.data[i] = value;
    }

    /// The raw host data (no simulated accesses).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// A bit-per-item visited set (BFS/BC frontier bookkeeping), addressed in
/// simulated memory at one `u64` word per 64 bits like a real bitmap.
#[derive(Debug, Clone)]
pub struct SimBitmap {
    words: SimArray<u64>,
    bits: usize,
}

impl SimBitmap {
    /// Allocates a cleared bitmap of `bits` bits.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from the address space.
    pub fn new(space: &mut AddressSpace, name: &str, bits: usize) -> Result<Self, VmError> {
        let words = SimArray::new(space, name, bits.div_ceil(64).max(1), 0u64)?;
        Ok(SimBitmap { words, bits })
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// `true` if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Tests bit `i`, emitting one load.
    pub fn test(&self, i: usize, sink: &mut dyn AccessSink) -> bool {
        debug_assert!(i < self.bits);
        (self.words.get(i / 64, sink) >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`, emitting one load and one store (read-modify-write).
    pub fn set(&mut self, i: usize, sink: &mut dyn AccessSink) {
        debug_assert!(i < self.bits);
        let word = self.words.get(i / 64, sink) | (1u64 << (i % 64));
        self.words.set(i / 64, word, sink);
    }

    /// Tests without simulated accesses.
    pub fn test_silent(&self, i: usize) -> bool {
        (self.words.get_silent(i / 64) >> (i % 64)) & 1 == 1
    }

    /// Clears all bits without simulated accesses (setup phase).
    pub fn clear_silent(&mut self) {
        for i in 0..self.words.len() {
            self.words.set_silent(i, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atscale_mmu::CountingSink;
    use atscale_vm::{BackingPolicy, PageSize};

    fn space() -> AddressSpace {
        AddressSpace::new(BackingPolicy::uniform(PageSize::Size4K))
    }

    #[test]
    fn elements_have_disjoint_addresses() {
        let mut s = space();
        let arr = SimArray::new(&mut s, "a", 10, 0u32).unwrap();
        let vas: Vec<u64> = (0..10).map(|i| arr.va(i).as_u64()).collect();
        for w in vas.windows(2) {
            assert_eq!(w[1] - w[0], 4, "u32 elements are 4 bytes apart");
        }
    }

    #[test]
    fn get_set_roundtrip_and_count() {
        let mut s = space();
        let mut arr = SimArray::new(&mut s, "a", 8, 0i64).unwrap();
        let mut sink = CountingSink::new();
        arr.set(7, -42, &mut sink);
        assert_eq!(arr.get(7, &mut sink), -42);
        assert_eq!((sink.loads, sink.stores), (1, 1));
        assert_eq!(arr.get_silent(7), -42);
        assert_eq!((sink.loads, sink.stores), (1, 1), "silent ops emit nothing");
    }

    #[test]
    fn from_vec_preserves_contents() {
        let mut s = space();
        let arr = SimArray::from_vec(&mut s, "v", vec![3u8, 1, 4, 1, 5]).unwrap();
        assert_eq!(arr.as_slice(), &[3, 1, 4, 1, 5]);
        assert_eq!(arr.len(), 5);
        assert!(!arr.is_empty());
    }

    #[test]
    fn bitmap_set_and_test() {
        let mut s = space();
        let mut bm = SimBitmap::new(&mut s, "visited", 130).unwrap();
        let mut sink = CountingSink::new();
        assert!(!bm.test(129, &mut sink));
        bm.set(129, &mut sink);
        assert!(bm.test(129, &mut sink));
        assert!(!bm.test_silent(128));
        assert!(bm.test_silent(129));
        assert_eq!(bm.len(), 130);
        bm.clear_silent();
        assert!(!bm.test_silent(129));
    }

    #[test]
    fn bitmap_words_are_packed() {
        let mut s = space();
        let mut bm = SimBitmap::new(&mut s, "b", 256).unwrap();
        let mut sink = CountingSink::new();
        // Bits 0..63 share one word → same address.
        bm.set(0, &mut sink);
        bm.set(63, &mut sink);
        assert!(bm.test_silent(0) && bm.test_silent(63));
    }

    #[test]
    fn arrays_in_same_space_do_not_overlap() {
        let mut s = space();
        let a = SimArray::new(&mut s, "a", 1000, 0u64).unwrap();
        let b = SimArray::new(&mut s, "b", 1000, 0u64).unwrap();
        let a_end = a.va(999).as_u64() + 8;
        assert!(b.va(0).as_u64() >= a_end);
    }
}
