//! The workload abstraction consumed by the experiment framework.

use atscale_mmu::{AccessSink, WorkloadProfile};
use atscale_vm::{AddressSpace, VmError};

/// A runnable workload instance: something that can lay out its memory in a
/// simulated address space and then drive an access stream into a sink.
///
/// The lifecycle is `setup` once, then `run` once; `run` must poll
/// [`AccessSink::done`] and return promptly when it reports the instruction
/// budget is exhausted.
pub trait Workload {
    /// Program name (e.g. `"pr"`).
    fn program(&self) -> &'static str;

    /// Input-generator name (e.g. `"kron"`).
    fn generator(&self) -> &'static str;

    /// The paper's `program-generator` workload label.
    fn label(&self) -> String {
        format!("{}-{}", self.program(), self.generator())
    }

    /// The workload's dynamics profile (base CPI, MLP, speculation rates).
    fn profile(&self) -> WorkloadProfile;

    /// Allocates segments and faults in the working set (the build phase of
    /// the real benchmark, which the paper excludes from measurement via
    /// dry runs).
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from allocation.
    fn setup(&mut self, space: &mut AddressSpace) -> Result<(), VmError>;

    /// Drives the access stream until the sink reports `done`.
    fn run(&mut self, sink: &mut dyn AccessSink);
}
