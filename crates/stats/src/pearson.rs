//! Pearson product-moment correlation.

use crate::{check_pair, mean, StatsError};

/// Pearson correlation coefficient between `x` and `y`.
///
/// Returns a value in `[-1, 1]`: the degree of *linear* association. The
/// paper uses this in Table V to ask how well each AT-pressure metric
/// linearly predicts relative AT overhead.
///
/// # Errors
///
/// Returns [`StatsError`] if the slices differ in length, have fewer than
/// two points, contain non-finite values, or either has zero variance.
///
/// # Example
///
/// ```
/// let x = [1.0, 2.0, 3.0];
/// let y = [10.0, 8.0, 6.0];
/// assert!((atscale_stats::pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair(x, y, 2)?;
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // Symmetric pattern: y identical for +x and −x.
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y = [4.0, 1.0, 0.0, 1.0, 4.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn scale_and_shift_invariant() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0];
        let y = [2.0, 9.0, 3.0, 16.0, 11.0];
        let r1 = pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| 100.0 * v - 7.0).collect();
        let r2 = pearson(&xs, &y).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_an_error() {
        assert_eq!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn monotone_but_nonlinear_is_less_than_one() {
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp2()).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r > 0.5 && r < 0.95, "r = {r}");
    }
}
