//! Basic descriptive statistics.

/// Arithmetic mean; 0 for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(atscale_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than two points.
///
/// # Example
///
/// ```
/// assert_eq!(atscale_stats::variance(&[2.0, 4.0]), 1.0);
/// ```
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Example
///
/// ```
/// assert_eq!(atscale_stats::stddev(&[2.0, 4.0]), 1.0);
/// ```
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
    }

    #[test]
    fn known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&xs), 3.0);
        assert_eq!(variance(&xs), 2.0);
        assert!((stddev(&xs) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_variance() {
        assert_eq!(variance(&[7.0; 10]), 0.0);
    }
}
