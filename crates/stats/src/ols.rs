//! Ordinary least squares, simple linear regression.

use crate::{check_pair, mean, StatsError};
use serde::{Deserialize, Serialize};

/// A fitted simple linear regression `y = intercept + slope·x`.
///
/// Produced by [`ols`]; carries the goodness-of-fit statistics the paper's
/// Table IV reports (adjusted R²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// β₀.
    pub intercept: f64,
    /// β₁.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// R² adjusted for the two estimated parameters —
    /// `1 − (1−R²)(n−1)/(n−2)`.
    pub adj_r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl OlsFit {
    /// Predicts `y` at `x`.
    ///
    /// # Example
    ///
    /// ```
    /// let fit = atscale_stats::ols(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
    /// assert!((fit.predict(10.0) - 21.0).abs() < 1e-9);
    /// ```
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = β₀ + β₁·x` by least squares.
///
/// This is the regression behind the paper's Table IV
/// (`relative AT overhead = β₀ + β₁·log10(M) + ε`).
///
/// # Errors
///
/// Returns [`StatsError`] for mismatched lengths, fewer than three points
/// (adjusted R² needs `n > 2`), non-finite values, or constant `x`.
///
/// # Example
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.1, 5.9, 8.0];
/// let fit = atscale_stats::ols(&x, &y).unwrap();
/// assert!((fit.slope - 2.0).abs() < 0.05);
/// assert!(fit.adj_r_squared > 0.99);
/// ```
pub fn ols(x: &[f64], y: &[f64]) -> Result<OlsFit, StatsError> {
    check_pair(x, y, 3)?;
    let n = x.len();
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let pred = intercept + slope * xi;
        ss_res += (yi - pred) * (yi - pred);
        ss_tot += (yi - my) * (yi - my);
    }
    let r_squared = if ss_tot == 0.0 {
        1.0 // y is constant and perfectly fit by slope 0
    } else {
        1.0 - ss_res / ss_tot
    };
    let adj_r_squared = 1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / (n as f64 - 2.0);
    Ok(OlsFit {
        intercept,
        slope,
        r_squared,
        adj_r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_parameters() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.83 + 0.153 * v).collect();
        let fit = ols(&x, &y).unwrap();
        assert!((fit.intercept + 0.83).abs() < 1e-9);
        assert!((fit.slope - 0.153).abs() < 1e-12);
        assert!((fit.adj_r_squared - 1.0).abs() < 1e-9);
        assert_eq!(fit.n, 20);
    }

    #[test]
    fn noisy_line_has_lower_adjusted_r2() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // Deterministic "noise" via a hash-like wobble.
        let y: Vec<f64> = x
            .iter()
            .map(|v| 2.0 * v + ((v * 12.9898).sin() * 43758.5453).fract() * 30.0)
            .collect();
        let fit = ols(&x, &y).unwrap();
        assert!(fit.adj_r_squared < fit.r_squared + 1e-12);
        assert!(
            fit.adj_r_squared > 0.5,
            "still broadly linear: {}",
            fit.adj_r_squared
        );
        assert!(fit.adj_r_squared < 0.999, "noise must reduce the fit");
        assert!((fit.slope - 2.0).abs() < 0.5);
    }

    #[test]
    fn constant_x_is_rejected() {
        assert_eq!(
            ols(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn constant_y_fits_perfectly_with_zero_slope() {
        let fit = ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn two_points_are_too_few() {
        assert!(matches!(
            ols(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::TooFewPoints { .. })
        ));
    }
}
