//! # atscale-stats — the statistics the paper's analysis uses
//!
//! Three tools, matching the paper's methodology exactly:
//!
//! * [`pearson`] — Pearson correlation coefficient (Table V, degree of
//!   linear association between a pressure metric and AT overhead);
//! * [`spearman`] — Spearman rank correlation with average-rank tie
//!   handling (Table V, monotonicity; "pick the ten workloads with the most
//!   AT pressure" robustness);
//! * [`ols`] / [`OlsFit`] — simple linear regression with adjusted R²
//!   (Table IV, `overhead = β₀ + β₁·log10(M)` fits).
//!
//! ## Example
//!
//! ```
//! use atscale_stats::{ols, pearson, spearman};
//!
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let y = [2.1, 3.9, 6.2, 7.8];
//! assert!(pearson(&x, &y).unwrap() > 0.99);
//! assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
//! let fit = ols(&x, &y).unwrap();
//! assert!((fit.slope - 1.94).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descriptive;
mod ols;
mod pearson;
mod spearman;

pub use descriptive::{mean, stddev, variance};
pub use ols::{ols, OlsFit};
pub use pearson::pearson;
pub use spearman::{rank_with_ties, spearman};

/// Error for statistical routines given unusable inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// Input slices have different lengths.
    LengthMismatch {
        /// Length of `x`.
        x: usize,
        /// Length of `y`.
        y: usize,
    },
    /// Too few points for the statistic (need at least `needed`).
    TooFewPoints {
        /// Points provided.
        got: usize,
        /// Points required.
        needed: usize,
    },
    /// A variable has zero variance, so correlation is undefined.
    ZeroVariance,
    /// An input value is NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::LengthMismatch { x, y } => {
                write!(f, "input lengths differ: {x} vs {y}")
            }
            StatsError::TooFewPoints { got, needed } => {
                write!(f, "need at least {needed} points, got {got}")
            }
            StatsError::ZeroVariance => write!(f, "a variable has zero variance"),
            StatsError::NonFinite => write!(f, "inputs contain NaN or infinity"),
        }
    }
}

impl std::error::Error for StatsError {}

pub(crate) fn check_pair(x: &[f64], y: &[f64], needed: usize) -> Result<(), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            x: x.len(),
            y: y.len(),
        });
    }
    if x.len() < needed {
        return Err(StatsError::TooFewPoints {
            got: x.len(),
            needed,
        });
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(StatsError::ZeroVariance.to_string().contains("variance"));
        assert!(StatsError::LengthMismatch { x: 1, y: 2 }
            .to_string()
            .contains("1 vs 2"));
    }

    #[test]
    fn check_pair_catches_problems() {
        assert!(check_pair(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(check_pair(&[1.0], &[1.0], 2).is_err());
        assert!(check_pair(&[f64::NAN], &[1.0], 1).is_err());
        assert!(check_pair(&[1.0, 2.0], &[3.0, 4.0], 2).is_ok());
    }
}
