//! Spearman rank correlation.

use crate::{check_pair, pearson, StatsError};

/// Assigns ranks (1-based) with ties receiving their average rank —
/// the standard "fractional ranking" used by Spearman's ρ.
///
/// # Example
///
/// ```
/// let ranks = atscale_stats::rank_with_ties(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn rank_with_ties(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average of ranks i+1..=j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation coefficient between `x` and `y`.
///
/// The Pearson correlation of the rank vectors: measures *monotonicity*
/// rather than linearity. The paper prefers this view for workload
/// selection ("pick the ten workloads with the most AT pressure"), and its
/// Table V reports both.
///
/// # Errors
///
/// As for [`pearson`]: mismatched lengths, fewer than two points,
/// non-finite inputs, or constant input.
///
/// # Example
///
/// ```
/// // Monotone but wildly nonlinear → Spearman 1, Pearson < 1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 10.0, 100.0, 1000.0];
/// assert!((atscale_stats::spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    check_pair(x, y, 2)?;
    let rx = rank_with_ties(x);
    let ry = rank_with_ties(y);
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_order_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [9.0, 7.0, 5.0, 3.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_exactly_one() {
        let x: Vec<f64> = (1..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3) - 5.0).collect();
        assert_eq!(spearman(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn ties_get_average_ranks() {
        let ranks = rank_with_ties(&[5.0, 5.0, 5.0]);
        assert_eq!(ranks, vec![2.0, 2.0, 2.0]);
        let ranks = rank_with_ties(&[3.0, 1.0, 3.0]);
        assert_eq!(ranks, vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn all_tied_input_is_zero_variance_error() {
        assert_eq!(
            spearman(&[2.0, 2.0], &[1.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn spearman_is_robust_to_outliers_where_pearson_is_not() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 1e6];
        let rho = spearman(&x, &y).unwrap();
        let r = pearson(&x, &y).unwrap();
        assert_eq!(rho, 1.0);
        assert!(r < 0.9);
    }
}
