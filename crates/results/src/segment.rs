//! Sealed columnar segment files.
//!
//! A segment is immutable once written (tmp + fsync + rename). Layout:
//!
//! ```text
//! [magic u32][version u32][row_count u32]
//! 15 column blocks (fixed schema order: key, workload, footprint_mb,
//!   page_size, seed, source, arch, wcpi_fp, x_fp, walk_duration_cycles,
//!   inst_retired, cycles, walks_initiated, walks_completed, walks_retired)
//! 1 raw-sidecar block (per-row LZ-compressed raw record JSON)
//! 1 aggregate block (the AggState over this segment's rows)
//! ```
//!
//! Version 1 files — written before the translation-architecture axis —
//! have no `arch` column and a v1 aggregate block; they still decode
//! (every row and group key gets `arch = "baseline"`), so an existing
//! store keeps serving across the upgrade. New segments are always v2.
//!
//! Every block is framed `[len u32][crc u32][payload]` and validated on
//! read; any failure makes the whole file [`Corrupt`] and the store
//! quarantines it (records are recomputable by construction, so
//! quarantine granularity is the file). The aggregate block means a
//! reopened store can merge per-segment aggregates instead of re-deriving
//! them row by row, and `store_compact --verify` can diff that merged
//! state against a from-raw recomputation.

use crate::aggregate::{AggState, HotRow};
use crate::codec::{crc32, Corrupt, Dec, DecResult, Enc};

/// File magic (`"ASEG"` little-endian).
const SEG_MAGIC: u32 = 0x4745_5341;
/// Pre-arch format version (no arch column): read-only compatibility.
const SEG_VERSION_V1: u32 = 1;
/// Current format version (arch column after source).
const SEG_VERSION: u32 = 2;

/// A decoded segment: parallel row vectors plus the aggregate sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentData {
    pub keys: Vec<String>,
    pub hots: Vec<HotRow>,
    /// Per-row LZ-compressed raw record JSON.
    pub raws: Vec<Vec<u8>>,
    pub agg: AggState,
}

impl SegmentData {
    pub(crate) fn rows(&self) -> usize {
        self.keys.len()
    }
}

fn push_block(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(
        &(u32::try_from(payload.len()).expect("blocks stay under 4 GiB")).to_le_bytes(),
    );
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn column<F: Fn(&mut Enc, usize)>(rows: usize, write: F) -> Vec<u8> {
    let mut enc = Enc::new();
    for i in 0..rows {
        write(&mut enc, i);
    }
    enc.finish()
}

/// Encodes a segment image from parallel row vectors.
pub(crate) fn encode_segment(keys: &[String], hots: &[HotRow], raws: &[Vec<u8>]) -> Vec<u8> {
    assert_eq!(keys.len(), hots.len());
    assert_eq!(keys.len(), raws.len());
    let rows = keys.len();
    let mut agg = AggState::new();
    for hot in hots {
        agg.add(hot);
    }
    let mut out = Vec::new();
    out.extend_from_slice(&SEG_MAGIC.to_le_bytes());
    out.extend_from_slice(&SEG_VERSION.to_le_bytes());
    out.extend_from_slice(&(u32::try_from(rows).expect("row count fits u32")).to_le_bytes());
    // The 15 fixed-schema column blocks, column-major.
    push_block(&mut out, &column(rows, |e, i| e.str(&keys[i])));
    push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].workload)));
    push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].footprint_mb)));
    push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].page_size)));
    push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].seed)));
    push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].source)));
    push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].arch)));
    push_block(&mut out, &column(rows, |e, i| e.i64(hots[i].wcpi_fp)));
    push_block(&mut out, &column(rows, |e, i| e.i64(hots[i].x_fp)));
    push_block(
        &mut out,
        &column(rows, |e, i| e.u64(hots[i].walk_duration_cycles)),
    );
    push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].inst_retired)));
    push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].cycles)));
    push_block(
        &mut out,
        &column(rows, |e, i| e.u64(hots[i].walks_initiated)),
    );
    push_block(
        &mut out,
        &column(rows, |e, i| e.u64(hots[i].walks_completed)),
    );
    push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].walks_retired)));
    // Raw sidecar block.
    push_block(&mut out, &column(rows, |e, i| e.bytes(&raws[i])));
    // Aggregate sidecar block.
    let mut agg_enc = Enc::new();
    agg.encode(&mut agg_enc);
    push_block(&mut out, &agg_enc.finish());
    out
}

struct Blocks<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Blocks<'a> {
    fn next(&mut self) -> DecResult<&'a [u8]> {
        if self.pos + 8 > self.data.len() {
            return Err(Corrupt);
        }
        let len = u32::from_le_bytes(
            self.data[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        let crc = u32::from_le_bytes(
            self.data[self.pos + 4..self.pos + 8]
                .try_into()
                .expect("4 bytes"),
        );
        let start = self.pos + 8;
        let end = start.checked_add(len).ok_or(Corrupt)?;
        if end > self.data.len() {
            return Err(Corrupt);
        }
        let payload = &self.data[start..end];
        if crc32(payload) != crc {
            return Err(Corrupt);
        }
        self.pos = end;
        Ok(payload)
    }
}

fn decode_column<'a, T, F: Fn(&mut Dec<'a>) -> DecResult<T>>(
    payload: &'a [u8],
    rows: usize,
    read: F,
) -> DecResult<Vec<T>> {
    let mut dec = Dec::new(payload);
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(read(&mut dec)?);
    }
    dec.done()?;
    Ok(out)
}

/// Decodes and fully validates a segment image.
pub(crate) fn decode_segment(data: &[u8]) -> DecResult<SegmentData> {
    if data.len() < 12 {
        return Err(Corrupt);
    }
    if u32::from_le_bytes(data[0..4].try_into().expect("4 bytes")) != SEG_MAGIC {
        return Err(Corrupt);
    }
    let v1 = match u32::from_le_bytes(data[4..8].try_into().expect("4 bytes")) {
        SEG_VERSION => false,
        SEG_VERSION_V1 => true,
        _ => return Err(Corrupt),
    };
    let rows = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    let mut blocks = Blocks { data, pos: 12 };
    let keys = decode_column(blocks.next()?, rows, Dec::str)?;
    let workload = decode_column(blocks.next()?, rows, Dec::str)?;
    let footprint_mb = decode_column(blocks.next()?, rows, Dec::u64)?;
    let page_size = decode_column(blocks.next()?, rows, Dec::str)?;
    let seed = decode_column(blocks.next()?, rows, Dec::u64)?;
    let source = decode_column(blocks.next()?, rows, Dec::str)?;
    let arch = if v1 {
        vec!["baseline".to_string(); rows]
    } else {
        decode_column(blocks.next()?, rows, Dec::str)?
    };
    let wcpi_fp = decode_column(blocks.next()?, rows, Dec::i64)?;
    let x_fp = decode_column(blocks.next()?, rows, Dec::i64)?;
    let walk_duration_cycles = decode_column(blocks.next()?, rows, Dec::u64)?;
    let inst_retired = decode_column(blocks.next()?, rows, Dec::u64)?;
    let cycles = decode_column(blocks.next()?, rows, Dec::u64)?;
    let walks_initiated = decode_column(blocks.next()?, rows, Dec::u64)?;
    let walks_completed = decode_column(blocks.next()?, rows, Dec::u64)?;
    let walks_retired = decode_column(blocks.next()?, rows, Dec::u64)?;
    let raws = decode_column(blocks.next()?, rows, Dec::bytes)?;
    let agg_payload = blocks.next()?;
    let mut agg_dec = Dec::new(agg_payload);
    let agg = if v1 {
        AggState::decode_v1(&mut agg_dec)?
    } else {
        AggState::decode(&mut agg_dec)?
    };
    agg_dec.done()?;
    if blocks.pos != data.len() {
        return Err(Corrupt);
    }
    let mut hots = Vec::with_capacity(rows);
    let mut iters = (
        workload.into_iter(),
        page_size.into_iter(),
        source.into_iter(),
        arch.into_iter(),
    );
    for i in 0..rows {
        hots.push(HotRow {
            workload: iters.0.next().expect("length checked"),
            footprint_mb: footprint_mb[i],
            page_size: iters.1.next().expect("length checked"),
            seed: seed[i],
            source: iters.2.next().expect("length checked"),
            arch: iters.3.next().expect("length checked"),
            wcpi_fp: wcpi_fp[i],
            x_fp: x_fp[i],
            walk_duration_cycles: walk_duration_cycles[i],
            inst_retired: inst_retired[i],
            cycles: cycles[i],
            walks_initiated: walks_initiated[i],
            walks_completed: walks_completed[i],
            walks_retired: walks_retired[i],
        });
    }
    // The stored aggregate must equal one recomputed from the columns —
    // a stale or tampered sidecar is corruption, not a best effort.
    let mut recomputed = AggState::new();
    for hot in &hots {
        recomputed.add(hot);
    }
    if recomputed != agg {
        return Err(Corrupt);
    }
    Ok(SegmentData {
        keys,
        hots,
        raws,
        agg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::x_fp;
    use crate::sketch::value_fp;

    fn rows(n: u64) -> (Vec<String>, Vec<HotRow>, Vec<Vec<u8>>) {
        let mut keys = Vec::new();
        let mut hots = Vec::new();
        let mut raws = Vec::new();
        for i in 0..n {
            keys.push(format!("{i:016x}"));
            hots.push(HotRow {
                workload: if i % 2 == 0 { "cc-urand" } else { "bfs-urand" }.to_string(),
                footprint_mb: 16 << (i % 3),
                page_size: "4K".to_string(),
                seed: i,
                source: "sim".to_string(),
                arch: if i % 3 == 0 { "baseline" } else { "victima" }.to_string(),
                wcpi_fp: value_fp(0.1 * (i + 1) as f64),
                x_fp: x_fp(4.0 + i as f64 * 0.3),
                walk_duration_cycles: 1000 * i,
                inst_retired: 100_000,
                cycles: 150_000,
                walks_initiated: 90,
                walks_completed: 80,
                walks_retired: 70,
            });
            raws.push(crate::lz::compress(format!(r#"{{"seed":{i}}}"#).as_bytes()));
        }
        (keys, hots, raws)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (keys, hots, raws) = rows(7);
        let image = encode_segment(&keys, &hots, &raws);
        let seg = decode_segment(&image).unwrap();
        assert_eq!(seg.keys, keys);
        assert_eq!(seg.hots, hots);
        assert_eq!(seg.raws, raws);
        assert_eq!(seg.rows(), 7);
        let mut expect = AggState::new();
        for hot in &hots {
            expect.add(hot);
        }
        assert_eq!(seg.agg, expect);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let image = encode_segment(&[], &[], &[]);
        let seg = decode_segment(&image).unwrap();
        assert_eq!(seg.rows(), 0);
        assert!(seg.agg.is_empty());
    }

    /// Encodes a v1 (pre-arch) segment image for the compatibility test:
    /// version 1, no arch column, v1 aggregate block.
    fn encode_segment_v1(keys: &[String], hots: &[HotRow], raws: &[Vec<u8>]) -> Vec<u8> {
        let rows = keys.len();
        let mut agg = AggState::new();
        for hot in hots {
            agg.add(hot);
        }
        let mut out = Vec::new();
        out.extend_from_slice(&SEG_MAGIC.to_le_bytes());
        out.extend_from_slice(&SEG_VERSION_V1.to_le_bytes());
        out.extend_from_slice(&(rows as u32).to_le_bytes());
        push_block(&mut out, &column(rows, |e, i| e.str(&keys[i])));
        push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].workload)));
        push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].footprint_mb)));
        push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].page_size)));
        push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].seed)));
        push_block(&mut out, &column(rows, |e, i| e.str(&hots[i].source)));
        push_block(&mut out, &column(rows, |e, i| e.i64(hots[i].wcpi_fp)));
        push_block(&mut out, &column(rows, |e, i| e.i64(hots[i].x_fp)));
        push_block(
            &mut out,
            &column(rows, |e, i| e.u64(hots[i].walk_duration_cycles)),
        );
        push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].inst_retired)));
        push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].cycles)));
        push_block(
            &mut out,
            &column(rows, |e, i| e.u64(hots[i].walks_initiated)),
        );
        push_block(
            &mut out,
            &column(rows, |e, i| e.u64(hots[i].walks_completed)),
        );
        push_block(&mut out, &column(rows, |e, i| e.u64(hots[i].walks_retired)));
        push_block(&mut out, &column(rows, |e, i| e.bytes(&raws[i])));
        // v1 aggregate block: keys encoded without the arch string.
        // GroupAgg's fields are pub, so its byte layout is reproduced
        // directly (sketch, regress, exact sums — unchanged between v1
        // and v2; only the key layout differs).
        let mut agg_enc = Enc::new();
        agg_enc.u32(agg.groups().len() as u32);
        for (key, group) in agg.groups() {
            agg_enc.str(&key.workload);
            agg_enc.u64(key.footprint_mb);
            agg_enc.str(&key.source);
            group.sketch.encode(&mut agg_enc);
            group.regress.encode(&mut agg_enc);
            agg_enc.u128(group.walk_cycles);
            agg_enc.u128(group.instructions);
        }
        push_block(&mut out, &agg_enc.finish());
        out
    }

    #[test]
    fn v1_segment_decodes_with_baseline_arch() {
        let (keys, mut hots, raws) = rows(5);
        for hot in &mut hots {
            hot.arch = "baseline".to_string();
        }
        let image = encode_segment_v1(&keys, &hots, &raws);
        let seg = decode_segment(&image).expect("v1 images stay readable");
        assert_eq!(seg.keys, keys);
        assert_eq!(seg.hots, hots, "every v1 row defaults to arch=baseline");
        assert_eq!(seg.raws, raws);
        let mut expect = AggState::new();
        for hot in &hots {
            expect.add(hot);
        }
        assert_eq!(seg.agg, expect, "v1 agg block keys default to baseline");
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let (keys, hots, raws) = rows(3);
        let image = encode_segment(&keys, &hots, &raws);
        // Exhaustive over bytes, one bit each — magic, lengths, CRCs,
        // payloads: every flip must be caught, none may panic.
        for byte in 0..image.len() {
            let mut damaged = image.clone();
            damaged[byte] ^= 1 << (byte % 8);
            assert_eq!(
                decode_segment(&damaged),
                Err(Corrupt),
                "flip at byte {byte} undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let (keys, hots, raws) = rows(2);
        let image = encode_segment(&keys, &hots, &raws);
        for cut in 0..image.len() {
            assert_eq!(decode_segment(&image[..cut]), Err(Corrupt), "cut {cut}");
        }
        // Trailing garbage is corruption too.
        let mut padded = image;
        padded.push(0);
        assert_eq!(decode_segment(&padded), Err(Corrupt));
    }
}
