//! Mergeable log-bucket quantile sketch over fixed-point WCPI values.
//!
//! Values are quantized to integers at [`VALUE_SCALE`] before they ever
//! reach a sketch, and the sketch state is integers only (bucket counts
//! and an `i128` fixed-point sum). That makes every operation *exactly*
//! associative and commutative: merging per-segment sketches in any order
//! or grouping yields bit-identical state — the property the daemon's
//! online aggregation and `store_compact`'s verify pass both lean on,
//! pinned by `tests/prop_merge.rs`.
//!
//! Positive values land in geometric buckets of ratio `2^(1/8)`; a
//! quantile is reported as its bucket's geometric midpoint, so the
//! **documented relative error bound is `2^(1/16) − 1 ≈ 4.5%`** (plus the
//! one-part-in-`VALUE_SCALE` quantization, negligible for WCPI). Zero and
//! negative values (an idle run's WCPI is exactly 0) count in a dedicated
//! zero bucket reported as `0.0`, exactly.

use crate::codec::{Corrupt, Dec, DecResult, Enc};

/// Fixed-point scale for sketched values (WCPI): 1 unit = 1e-9.
pub const VALUE_SCALE: f64 = 1e9;

/// Buckets per doubling; relative error is `2^(1/(2·BUCKETS_PER_OCTAVE)) − 1`.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Documented worst-case relative error of [`Sketch::quantile`] for
/// positive values: `2^(1/16) − 1`.
pub const QUANTILE_RELATIVE_ERROR: f64 = 0.0443;

/// Quantizes a value to the sketch's fixed-point representation.
pub fn value_fp(v: f64) -> i64 {
    let scaled = v * VALUE_SCALE;
    debug_assert!(scaled.abs() < 9.0e18, "value {v} overflows fixed point");
    scaled.round() as i64
}

fn bucket_of(fp: i64) -> i32 {
    debug_assert!(fp > 0);
    ((fp as f64 / VALUE_SCALE).log2() * BUCKETS_PER_OCTAVE).floor() as i32
}

fn bucket_midpoint(bucket: i32) -> f64 {
    2f64.powf((f64::from(bucket) + 0.5) / BUCKETS_PER_OCTAVE)
}

/// A mergeable quantile/mean summary. See the module docs for the exact
/// associativity guarantee and the quantile error bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sketch {
    count: u64,
    zero_count: u64,
    sum_fp: i128,
    /// `(bucket, count)` sorted by bucket, counts strictly positive — the
    /// canonical form `PartialEq` compares.
    buckets: Vec<(i32, u64)>,
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Sketch {
        Sketch::default()
    }

    /// Number of values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no values have been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Observes one fixed-point value.
    pub fn add_fp(&mut self, fp: i64) {
        self.count += 1;
        self.sum_fp += i128::from(fp);
        if fp <= 0 {
            self.zero_count += 1;
            return;
        }
        let b = bucket_of(fp);
        match self.buckets.binary_search_by_key(&b, |(id, _)| *id) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (b, 1)),
        }
    }

    /// Retracts one previously-added value (used when a re-saved record
    /// supersedes an older row for the same key). Exact: the state returns
    /// to what it would have been had the value never been added.
    pub fn remove_fp(&mut self, fp: i64) {
        debug_assert!(self.count > 0, "removing from an empty sketch");
        self.count = self.count.saturating_sub(1);
        self.sum_fp -= i128::from(fp);
        if fp <= 0 {
            self.zero_count = self.zero_count.saturating_sub(1);
            return;
        }
        let b = bucket_of(fp);
        if let Ok(i) = self.buckets.binary_search_by_key(&b, |(id, _)| *id) {
            self.buckets[i].1 -= 1;
            if self.buckets[i].1 == 0 {
                self.buckets.remove(i);
            }
        }
    }

    /// Merges `other` into `self`. Exactly associative and commutative.
    pub fn merge(&mut self, other: &Sketch) {
        self.count += other.count;
        self.zero_count += other.zero_count;
        self.sum_fp += other.sum_fp;
        for &(b, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&b, |(id, _)| *id) {
                // analyze:allow(panic): `i` is the Ok index binary_search just returned for this vec, so the access cannot be out of bounds
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (b, n)),
            }
        }
    }

    /// Exact mean of the observed values (fixed-point sum over count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_fp as f64 / VALUE_SCALE / self.count as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), within
    /// [`QUANTILE_RELATIVE_ERROR`] of the true order statistic for
    /// positive values and exact (`0.0`) for the zero bucket. Returns
    /// `0.0` on an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.zero_count;
        if target <= cum {
            return 0.0;
        }
        for &(b, n) in &self.buckets {
            cum += n;
            if target <= cum {
                return bucket_midpoint(b);
            }
        }
        // Unreachable when counts are consistent; fall back to the top
        // bucket rather than panicking on a hand-edited state.
        self.buckets
            .last()
            .map_or(0.0, |&(b, _)| bucket_midpoint(b))
    }

    /// Serializes into `enc` (binary, see `codec`).
    pub fn encode(&self, enc: &mut Enc) {
        enc.u64(self.count);
        enc.u64(self.zero_count);
        enc.i128(self.sum_fp);
        enc.u32(u32::try_from(self.buckets.len()).expect("bucket count fits u32"));
        for &(b, n) in &self.buckets {
            enc.i64(i64::from(b));
            enc.u64(n);
        }
    }

    /// Deserializes a sketch, validating canonical form.
    pub fn decode(dec: &mut Dec<'_>) -> DecResult<Sketch> {
        let count = dec.u64()?;
        let zero_count = dec.u64()?;
        let sum_fp = dec.i128()?;
        let n = dec.u32()? as usize;
        let mut buckets = Vec::with_capacity(n.min(4096));
        let mut last: Option<i32> = None;
        let mut bucket_total = zero_count;
        for _ in 0..n {
            let b = i32::try_from(dec.i64()?).map_err(|_| Corrupt)?;
            let cnt = dec.u64()?;
            if cnt == 0 || last.is_some_and(|prev| prev >= b) {
                return Err(Corrupt);
            }
            last = Some(b);
            bucket_total = bucket_total.checked_add(cnt).ok_or(Corrupt)?;
            buckets.push((b, cnt));
        }
        if bucket_total != count {
            return Err(Corrupt);
        }
        Ok(Sketch {
            count,
            zero_count,
            sum_fp,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> Sketch {
        let mut s = Sketch::new();
        for &v in values {
            s.add_fp(value_fp(v));
        }
        s
    }

    #[test]
    fn empty_sketch_is_canonical() {
        let s = Sketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn mean_is_exact_and_quantiles_bounded() {
        let values: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 0.001).collect();
        let s = sketch_of(&values);
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((s.mean() - exact_mean).abs() < 1e-9);
        for (q, truth) in [(0.5, 0.5), (0.99, 0.99), (0.01, 0.01)] {
            let got = s.quantile(q);
            assert!(
                (got - truth).abs() / truth <= QUANTILE_RELATIVE_ERROR + 1e-6,
                "q{q}: got {got}, truth {truth}"
            );
        }
    }

    #[test]
    fn zeros_are_exact() {
        let s = sketch_of(&[0.0, 0.0, 0.0, 1.0]);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.quantile(1.0) > 0.9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = sketch_of(&[0.1, 0.2, 0.3]);
        let b = sketch_of(&[0.4, 0.0, 7.5]);
        let mut merged = a.clone();
        merged.merge(&b);
        let together = sketch_of(&[0.1, 0.2, 0.3, 0.4, 0.0, 7.5]);
        assert_eq!(merged, together);
        let mut reversed = b;
        reversed.merge(&a);
        assert_eq!(reversed, together, "commutative");
    }

    #[test]
    fn remove_restores_prior_state() {
        let before = sketch_of(&[0.25, 1.5]);
        let mut s = before.clone();
        s.add_fp(value_fp(0.75));
        s.remove_fp(value_fp(0.75));
        assert_eq!(s, before);
        s.add_fp(value_fp(0.0));
        s.remove_fp(value_fp(0.0));
        assert_eq!(s, before);
    }

    #[test]
    fn codec_roundtrip_and_corruption_detection() {
        let s = sketch_of(&[0.0, 0.1, 0.1, 2.0, 300.0]);
        let mut enc = Enc::new();
        s.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert_eq!(Sketch::decode(&mut dec).unwrap(), s);
        assert!(dec.done().is_ok());
        // A tampered count no longer matches the bucket totals.
        let mut bad = bytes;
        bad[0] ^= 1;
        assert_eq!(Sketch::decode(&mut Dec::new(&bad)), Err(Corrupt));
    }
}
