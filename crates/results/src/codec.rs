//! Little-endian binary codec shared by the WAL, segment, and index file
//! formats, plus the CRC-32 used to frame every block.
//!
//! The vendored serde stack is JSON-only and Value-tree based; persisting
//! columnar blocks through it would both bloat the files and forbid the
//! `i128` fixed-point sums the mergeable aggregates need. A ~100-line
//! hand-rolled codec with explicit bounds checks is smaller than the
//! workaround would be.

/// Marker for data that failed structural validation (bounds, CRC, magic,
/// or version). Corruption is never an error the caller propagates — the
/// store quarantines the evidence and recomputes — so the type carries no
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corrupt;

/// Result alias for decode paths.
pub type DecResult<T> = Result<T, Corrupt>;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only binary encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i128`.
    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(u32::try_from(b.len()).expect("blocks stay under 4 GiB"));
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(Corrupt)?;
        if end > self.data.len() {
            return Err(Corrupt);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> DecResult<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> DecResult<u128> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a little-endian `i128`.
    pub fn i128(&mut self) -> DecResult<i128> {
        Ok(i128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> DecResult<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> DecResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| Corrupt)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Succeeds only when every byte was consumed — trailing garbage is
    /// corruption, not padding.
    pub fn done(&self) -> DecResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Corrupt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_every_primitive() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.i64(-42);
        enc.u128(u128::MAX >> 1);
        enc.i128(-(1i128 << 100));
        enc.bytes(b"raw");
        enc.str("cc-urand");
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.i64().unwrap(), -42);
        assert_eq!(dec.u128().unwrap(), u128::MAX >> 1);
        assert_eq!(dec.i128().unwrap(), -(1i128 << 100));
        assert_eq!(dec.bytes().unwrap(), b"raw");
        assert_eq!(dec.str().unwrap(), "cc-urand");
        assert!(dec.done().is_ok());
    }

    #[test]
    fn truncated_and_trailing_inputs_are_corrupt() {
        let mut enc = Enc::new();
        enc.str("key");
        let bytes = enc.finish();
        assert_eq!(Dec::new(&bytes[..bytes.len() - 1]).str(), Err(Corrupt));
        let mut dec = Dec::new(&bytes);
        dec.u32().unwrap(); // consumed the length only
        assert_eq!(dec.done(), Err(Corrupt));
        // A length prefix pointing past the end must not panic.
        let mut huge = Enc::new();
        huge.u32(u32::MAX);
        assert_eq!(Dec::new(&huge.finish()).bytes(), Err(Corrupt));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut enc = Enc::new();
        enc.bytes(&[0xFF, 0xFE]);
        assert_eq!(Dec::new(&enc.finish()).str(), Err(Corrupt));
    }
}
