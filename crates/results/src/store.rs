//! The append-only segment store: WAL + sealed columnar segments + index
//! + live aggregate, behind one handle.
//!
//! Write path: [`SegmentStore::append`] frames the row into the WAL
//! (write + fsync under the store lock — the WAL is the serialization
//! point), folds it into the in-memory index and live [`AggState`], and
//! seals a columnar segment once the WAL holds a segment's worth of rows.
//! Sealed segments and the index file are written with the same
//! tmp + fsync + rename discipline the legacy JSON `RunStore` uses.
//!
//! Crash/corruption contract (mirrors the legacy store's
//! quarantine-and-recompute): a torn WAL tail is quarantined to
//! `wal.corrupt` and truncated away; a segment failing any CRC is renamed
//! to `*.corrupt` wholesale; the index is *advisory* — missing, stale, or
//! half-renamed index files are rebuilt from the segment scan. Every
//! quarantined record is recomputable by construction, so corruption is
//! only ever a cache miss.
//!
//! Concurrency: one process owns a segment directory (the serving
//! daemon); handles are `Sync` and appends serialize on the store lock.
//! Multi-process sharing remains the legacy JSON store's domain.

use crate::aggregate::{AggState, CompactStats, HotRow, QueryFilter, QueryResult, SegStats};
use crate::codec::{crc32, Corrupt, Dec, DecResult, Enc};
use crate::lz;
use crate::segment::{decode_segment, encode_segment, SegmentData};
use crate::wal::{encode_entry, scan, WalEntry};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

const WAL_NAME: &str = "wal.log";
const INDEX_NAME: &str = "index.bin";
const INDEX_MAGIC: u32 = 0x5844_4941; // "AIDX"

/// Default number of WAL rows that triggers sealing a segment.
pub const DEFAULT_SEAL_THRESHOLD: usize = 256;

/// Per-process counter uniquifying concurrent tmp files (one daemon owns
/// a segment directory, so process-local uniqueness suffices).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where a live key's newest row lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Row `i` of the active WAL.
    Wal(usize),
    /// Row `row` of sealed segment `id`.
    Seg { id: u64, row: usize },
}

struct SegMeta {
    id: u64,
    path: PathBuf,
    bytes: u64,
    data: SegmentData,
}

struct Inner {
    wal: Vec<WalEntry>,
    wal_file: Option<fs::File>,
    wal_bytes: u64,
    segments: Vec<SegMeta>,
    index: HashMap<String, Loc>,
    live: AggState,
    dead_rows: u64,
    quarantined: u64,
    seal_threshold: usize,
    index_bytes: u64,
}

impl Inner {
    fn seg_by_id(&self, id: u64) -> &SegMeta {
        let i = self
            .segments
            .binary_search_by_key(&id, |s| s.id)
            .expect("index only references loaded segments");
        &self.segments[i]
    }

    fn hot_at(&self, loc: Loc) -> &HotRow {
        match loc {
            Loc::Wal(i) => &self.wal[i].hot,
            Loc::Seg { id, row } => &self.seg_by_id(id).data.hots[row],
        }
    }

    fn raw_at(&self, loc: Loc) -> &[u8] {
        match loc {
            Loc::Wal(i) => &self.wal[i].raw_lz,
            Loc::Seg { id, row } => &self.seg_by_id(id).data.raws[row],
        }
    }

    /// Folds one committed row into the index and live aggregate,
    /// retracting the row it supersedes (last write wins, exactly).
    fn commit(&mut self, key: &str, loc: Loc, hot: &HotRow) {
        if let Some(prev) = self.index.insert(key.to_string(), loc) {
            let prev_hot = self.hot_at(prev).clone();
            self.live.remove(&prev_hot);
            self.dead_rows += 1;
        }
        self.live.add(hot);
    }

    /// Live sealed rows as sorted `(key, seg_id, row)` triples — the
    /// index file's canonical content.
    fn sealed_entries(&self) -> Vec<(String, u64, u32)> {
        let mut out = Vec::new();
        for seg in &self.segments {
            for (row, key) in seg.data.keys.iter().enumerate() {
                if self.index.get(key) == Some(&Loc::Seg { id: seg.id, row }) {
                    out.push((key.clone(), seg.id, row as u32));
                }
            }
        }
        out.sort();
        out
    }
}

/// An append-only columnar run-record store. See the module docs for the
/// on-disk layout and crash contract.
pub struct SegmentStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    #[cfg(feature = "faults")]
    faults: Mutex<Option<std::sync::Arc<atscale_faults::FaultPlan>>>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl SegmentStore {
    /// Opens (creating if needed) a segment store at `dir`, scanning
    /// sealed segments and the WAL: corrupt segments and torn WAL tails
    /// are quarantined, the index and live aggregate are rebuilt, and a
    /// missing or stale index file is rewritten.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or read.
    /// Corrupt *contents* never error — they quarantine.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<SegmentStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut inner = Inner {
            wal: Vec::new(),
            wal_file: None,
            wal_bytes: 0,
            segments: Vec::new(),
            index: HashMap::new(),
            live: AggState::new(),
            dead_rows: 0,
            quarantined: 0,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            index_bytes: 0,
        };
        // Sealed segments, in id order.
        let mut seg_paths: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)?.filter_map(Result::ok) {
            let path = entry.path();
            if let Some(id) = segment_id(&path) {
                seg_paths.push((id, path));
            }
        }
        seg_paths.sort();
        for (id, path) in seg_paths {
            let bytes = fs::read(&path)?;
            match decode_segment(&bytes) {
                Ok(data) => inner.segments.push(SegMeta {
                    id,
                    path,
                    bytes: bytes.len() as u64,
                    data,
                }),
                Err(Corrupt) => {
                    let mut quarantine = path.clone().into_os_string();
                    quarantine.push(".corrupt");
                    let _ = fs::rename(&path, &quarantine);
                    inner.quarantined += 1;
                }
            }
        }
        // The active WAL: quarantine and truncate any torn tail.
        let wal_path = dir.join(WAL_NAME);
        if let Ok(bytes) = fs::read(&wal_path) {
            let scanned = scan(&bytes);
            if let Some(tail) = scanned.torn_tail {
                let _ = fs::write(dir.join("wal.corrupt"), tail);
                let file = fs::OpenOptions::new().write(true).open(&wal_path)?;
                file.set_len(scanned.good_bytes)?;
                file.sync_all()?;
                inner.quarantined += 1;
            }
            inner.wal_bytes = scanned.good_bytes;
            inner.wal = scanned.entries;
        }
        // Rebuild index + live aggregate in commit order.
        for s in 0..inner.segments.len() {
            for row in 0..inner.segments[s].data.rows() {
                let id = inner.segments[s].id;
                let key = inner.segments[s].data.keys[row].clone();
                let hot = inner.segments[s].data.hots[row].clone();
                inner.commit(&key, Loc::Seg { id, row }, &hot);
            }
        }
        for i in 0..inner.wal.len() {
            let key = inner.wal[i].key.clone();
            let hot = inner.wal[i].hot.clone();
            inner.commit(&key, Loc::Wal(i), &hot);
        }
        let store = SegmentStore {
            dir,
            inner: Mutex::new(inner),
            #[cfg(feature = "faults")]
            faults: Mutex::new(None),
        };
        {
            let mut inner = store.guard();
            // Self-heal the advisory index: rewrite unless the persisted
            // file already matches the scan.
            let computed = inner.sealed_entries();
            match load_index(&store.dir.join(INDEX_NAME)) {
                Ok(persisted) if persisted == computed => {
                    inner.index_bytes =
                        fs::metadata(store.dir.join(INDEX_NAME)).map_or(0, |m| m.len());
                }
                _ => {
                    // analyze:allow(lock-io): open is single-threaded — the handle has not been shared yet, so holding the freshly built index lock across the advisory index rewrite cannot block anyone
                    let _ = store.persist_index(&mut inner, &computed);
                }
            }
        }
        Ok(store)
    }

    /// Sets the number of WAL rows that triggers sealing a segment.
    #[must_use]
    pub fn with_seal_threshold(self, rows: usize) -> Self {
        self.set_seal_threshold(rows);
        self
    }

    /// [`SegmentStore::with_seal_threshold`] for an already-shared handle.
    pub fn set_seal_threshold(&self, rows: usize) {
        self.guard().seal_threshold = rows.max(1);
    }

    /// Attaches a fault-injection plan: subsequent appends route through
    /// the plan's `SegmentTorn`/`IndexRename` sites. Test-only machinery.
    #[cfg(feature = "faults")]
    pub fn set_fault_plan(&self, plan: std::sync::Arc<atscale_faults::FaultPlan>) {
        *self.faults.lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    }

    #[cfg(feature = "faults")]
    fn plan(&self) -> Option<std::sync::Arc<atscale_faults::FaultPlan>> {
        self.faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn guard(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record: `key` is the caller's dedup key (the
    /// spec+config byte hash), `hot` the extracted column row, `raw` the
    /// exact legacy record JSON (stored LZ-compressed, returned verbatim
    /// by [`SegmentStore::load`] for bit-for-bit replay).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the WAL write fails. As with the legacy
    /// store, persistence is advisory — callers treat failure as a miss.
    pub fn append(&self, key: &str, hot: HotRow, raw: &[u8]) -> std::io::Result<()> {
        let entry = WalEntry {
            key: key.to_string(),
            hot,
            raw_lz: lz::compress(raw),
        };
        #[allow(unused_mut)]
        let mut frame = encode_entry(&entry);
        #[allow(unused_mut)]
        let mut torn = false;
        #[cfg(feature = "faults")]
        if let Some(plan) = self.plan() {
            if let Some(rule) = plan.check(atscale_faults::FaultSite::SegmentTorn) {
                // A torn append: a strict prefix of the frame reaches disk,
                // as if the process died mid-write. The row never commits
                // in memory; reopen quarantines the tail.
                let keep = ((frame.len() as f64) * rule.torn_keep) as usize;
                frame.truncate(keep.min(frame.len().saturating_sub(1)));
                torn = true;
            }
        }
        let mut inner = self.guard();
        if inner.wal_file.is_none() {
            inner.wal_file = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(WAL_NAME))?,
            );
        }
        let mut file = inner.wal_file.as_ref().expect("just opened");
        // analyze:allow(lock-io): the WAL append is the store's serialization point — the frame write must be ordered under the same lock as the in-memory index it commits to
        file.write_all(&frame)?;
        file.sync_data()?;
        inner.wal_bytes += frame.len() as u64;
        if torn {
            return Ok(());
        }
        let loc = Loc::Wal(inner.wal.len());
        inner.commit(key, loc, &entry.hot);
        inner.wal.push(entry);
        if inner.wal.len() >= inner.seal_threshold {
            self.seal_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Loads the raw record JSON stored under `key`, byte-for-byte as it
    /// was appended. `None` on a miss.
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let inner = self.guard();
        let loc = *inner.index.get(key)?;
        lz::decompress(inner.raw_at(loc)).ok()
    }

    /// Whether `key` has a live row.
    pub fn contains(&self, key: &str) -> bool {
        self.guard().index.contains_key(key)
    }

    /// Number of live (distinct-key) rows.
    pub fn live_len(&self) -> u64 {
        self.guard().index.len() as u64
    }

    /// Seals the active WAL into a columnar segment now (normally
    /// automatic at the seal threshold).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the segment cannot be written.
    pub fn seal(&self) -> std::io::Result<()> {
        let mut inner = self.guard();
        // analyze:allow(lock-io): sealing rewrites files the index under this lock describes
        self.seal_locked(&mut inner)
    }

    fn seal_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        if inner.wal.is_empty() {
            return Ok(());
        }
        let id = inner.segments.last().map_or(0, |s| s.id + 1);
        let keys: Vec<String> = inner.wal.iter().map(|e| e.key.clone()).collect();
        let hots: Vec<HotRow> = inner.wal.iter().map(|e| e.hot.clone()).collect();
        let raws: Vec<Vec<u8>> = inner.wal.iter().map(|e| e.raw_lz.clone()).collect();
        let image = encode_segment(&keys, &hots, &raws);
        let path = self.dir.join(format!("seg-{id:06}.seg"));
        self.write_atomic(&path, &image)?;
        let mut agg = AggState::new();
        for hot in &hots {
            agg.add(hot);
        }
        // Relocate live WAL rows to their sealed positions.
        for (row, key) in keys.iter().enumerate() {
            if inner.index.get(key) == Some(&Loc::Wal(row)) {
                inner.index.insert(key.clone(), Loc::Seg { id, row });
            }
        }
        inner.segments.push(SegMeta {
            id,
            path,
            bytes: image.len() as u64,
            data: SegmentData {
                keys,
                hots,
                raws,
                agg,
            },
        });
        inner.wal.clear();
        inner.wal_bytes = 0;
        if let Some(file) = &inner.wal_file {
            file.set_len(0)?;
            file.sync_all()?;
        }
        // The index is advisory: a failed persist (including the injected
        // IndexRename fault) leaves a stale file that reopen rebuilds.
        let entries = inner.sealed_entries();
        let _ = self.persist_index(inner, &entries);
        Ok(())
    }

    /// Rewrites every live row into a single fresh segment, dropping
    /// superseded rows, the WAL backlog, and all old segment files.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the compacted segment cannot be written;
    /// the store is unchanged in that case.
    pub fn compact(&self) -> std::io::Result<CompactStats> {
        let mut inner = self.guard();
        let bytes_before = inner.segments.iter().map(|s| s.bytes).sum::<u64>()
            + inner.wal_bytes
            + inner.index_bytes;
        let segments_before = inner.segments.len() as u64;
        let dead_rows_dropped = inner.dead_rows;
        // Live rows, sorted by key for a deterministic image.
        let mut rows: Vec<(String, HotRow, Vec<u8>)> = Vec::new();
        for (key, loc) in &inner.index {
            rows.push((
                key.clone(),
                inner.hot_at(*loc).clone(),
                inner.raw_at(*loc).to_vec(),
            ));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let id = inner.segments.last().map_or(0, |s| s.id + 1);
        let mut stats = CompactStats {
            segments_before,
            segments_after: 0,
            live_rows: rows.len() as u64,
            dead_rows_dropped,
            bytes_before,
            bytes_after: 0,
        };
        let new_meta = if rows.is_empty() {
            None
        } else {
            let keys: Vec<String> = rows.iter().map(|r| r.0.clone()).collect();
            let hots: Vec<HotRow> = rows.iter().map(|r| r.1.clone()).collect();
            let raws: Vec<Vec<u8>> = rows.iter().map(|r| r.2.clone()).collect();
            let image = encode_segment(&keys, &hots, &raws);
            let path = self.dir.join(format!("seg-{id:06}.seg"));
            // analyze:allow(lock-io): compaction replaces the files the index under this lock describes
            self.write_atomic(&path, &image)?;
            let mut agg = AggState::new();
            for hot in &hots {
                agg.add(hot);
            }
            Some(SegMeta {
                id,
                path,
                bytes: image.len() as u64,
                data: SegmentData {
                    keys,
                    hots,
                    raws,
                    agg,
                },
            })
        };
        // Point of no return: the compacted segment (if any) is durable.
        for seg in &inner.segments {
            let _ = fs::remove_file(&seg.path);
        }
        inner.segments = new_meta.into_iter().collect();
        inner.wal.clear();
        inner.wal_bytes = 0;
        if let Some(file) = &inner.wal_file {
            file.set_len(0)?;
            file.sync_all()?;
        }
        inner.index.clear();
        inner.live = AggState::new();
        inner.dead_rows = 0;
        for s in 0..inner.segments.len() {
            for row in 0..inner.segments[s].data.rows() {
                let id = inner.segments[s].id;
                let key = inner.segments[s].data.keys[row].clone();
                let hot = inner.segments[s].data.hots[row].clone();
                inner.commit(&key, Loc::Seg { id, row }, &hot);
            }
        }
        let entries = inner.sealed_entries();
        // analyze:allow(lock-io): the advisory index must describe the compacted segment set this lock just installed; releasing before the rewrite would let an append interleave a stale index
        let _ = self.persist_index(&mut inner, &entries);
        stats.segments_after = inner.segments.len() as u64;
        stats.bytes_after = inner.segments.iter().map(|s| s.bytes).sum::<u64>() + inner.index_bytes;
        Ok(stats)
    }

    /// Answers `filter` from the live aggregate — `O(matching groups)`,
    /// independent of run count.
    pub fn query(&self, filter: &QueryFilter) -> QueryResult {
        self.guard().live.query(filter)
    }

    /// A snapshot of the live aggregate state.
    pub fn aggregate(&self) -> AggState {
        self.guard().live.clone()
    }

    /// Store occupancy counters (maintained incrementally; no directory
    /// scan).
    pub fn seg_stats(&self) -> SegStats {
        let inner = self.guard();
        SegStats {
            segments: inner.segments.len() as u64,
            segment_rows: inner.segments.iter().map(|s| s.data.rows() as u64).sum(),
            wal_rows: inner.wal.len() as u64,
            live_rows: inner.index.len() as u64,
            dead_rows: inner.dead_rows,
            disk_bytes: inner.segments.iter().map(|s| s.bytes).sum::<u64>()
                + inner.wal_bytes
                + inner.index_bytes,
            quarantined: inner.quarantined,
        }
    }

    /// Visits every live row in deterministic order (sealed segments by
    /// id then the WAL, in row order) with its key, hot columns, and
    /// decompressed raw record JSON. The verification path: recomputing
    /// aggregates from these rows must match [`SegmentStore::query`].
    pub fn for_each_live<F: FnMut(&str, &HotRow, Vec<u8>)>(&self, mut f: F) {
        let inner = self.guard();
        for seg in &inner.segments {
            for (row, key) in seg.data.keys.iter().enumerate() {
                if inner.index.get(key) == Some(&Loc::Seg { id: seg.id, row }) {
                    if let Ok(raw) = lz::decompress(&seg.data.raws[row]) {
                        f(key, &seg.data.hots[row], raw);
                    }
                }
            }
        }
        for (i, entry) in inner.wal.iter().enumerate() {
            if inner.index.get(&entry.key) == Some(&Loc::Wal(i)) {
                if let Ok(raw) = lz::decompress(&entry.raw_lz) {
                    f(&entry.key, &entry.hot, raw);
                }
            }
        }
    }

    /// Writes `bytes` to `path` via a unique tmp file, fsync, and atomic
    /// rename — the legacy store's durability discipline.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("store paths are valid UTF-8");
        let tmp = self.dir.join(format!(
            ".{name}.{}.tmp",
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    fn persist_index(
        &self,
        inner: &mut Inner,
        entries: &[(String, u64, u32)],
    ) -> std::io::Result<()> {
        let mut payload = Enc::new();
        payload.u32(u32::try_from(entries.len()).expect("entry count fits u32"));
        for (key, id, row) in entries {
            payload.str(key);
            payload.u64(*id);
            payload.u32(*row);
        }
        let payload = payload.finish();
        let mut image = Enc::new();
        image.u32(INDEX_MAGIC);
        image.u32(u32::try_from(payload.len()).expect("index stays under 4 GiB"));
        image.u32(crc32(&payload));
        let mut image = image.finish();
        image.extend_from_slice(&payload);
        let path = self.dir.join(INDEX_NAME);
        let name = INDEX_NAME;
        let tmp = self.dir.join(format!(
            ".{name}.{}.tmp",
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&image)?;
            file.sync_all()?;
            #[cfg(feature = "faults")]
            if let Some(plan) = self.plan() {
                if plan.check(atscale_faults::FaultSite::IndexRename).is_some() {
                    return Err(atscale_faults::injected_io_error(
                        atscale_faults::FaultSite::IndexRename,
                    ));
                }
            }
            fs::rename(&tmp, &path)
        })();
        match &result {
            Ok(()) => inner.index_bytes = image.len() as u64,
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
        result
    }
}

/// Parses `seg-NNNNNN.seg` names; anything else is not a segment.
fn segment_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    stem.parse().ok()
}

/// Reads and validates the index file into sorted `(key, seg_id, row)`
/// triples.
fn load_index(path: &Path) -> DecResult<Vec<(String, u64, u32)>> {
    let bytes = fs::read(path).map_err(|_| Corrupt)?;
    let mut dec = Dec::new(&bytes);
    if dec.u32()? != INDEX_MAGIC {
        return Err(Corrupt);
    }
    let len = dec.u32()? as usize;
    let crc = dec.u32()?;
    if dec.remaining() != len {
        return Err(Corrupt);
    }
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(Corrupt);
    }
    let mut dec = Dec::new(payload);
    let count = dec.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        out.push((dec.str()?, dec.u64()?, dec.u32()?));
    }
    dec.done()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::x_fp;
    use crate::sketch::value_fp;

    fn hot(workload: &str, mb: u64, seed: u64, wcpi: f64) -> HotRow {
        HotRow {
            workload: workload.to_string(),
            footprint_mb: mb,
            page_size: "4K".to_string(),
            seed,
            source: "sim".to_string(),
            arch: "baseline".to_string(),
            wcpi_fp: value_fp(wcpi),
            x_fp: x_fp((mb as f64 * 1024.0).log10()),
            walk_duration_cycles: (wcpi * 1e5) as u64,
            inst_retired: 100_000,
            cycles: 150_000,
            walks_initiated: 90,
            walks_completed: 80,
            walks_retired: 70,
        }
    }

    fn raw(seed: u64) -> Vec<u8> {
        format!(r#"{{"spec":{{"seed":{seed}}},"result":{{"counters":{{}}}}}}"#).into_bytes()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("atscale-results-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_load_roundtrip_is_byte_exact() {
        let dir = scratch("roundtrip");
        let store = SegmentStore::open(&dir).unwrap();
        assert!(store.load("00").is_none());
        store
            .append("00", hot("cc-urand", 16, 1, 0.1), &raw(1))
            .unwrap();
        assert_eq!(store.load("00").unwrap(), raw(1));
        assert!(store.contains("00"));
        assert_eq!(store.live_len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rows_survive_reopen_before_and_after_seal() {
        let dir = scratch("reopen");
        {
            let store = SegmentStore::open(&dir).unwrap().with_seal_threshold(2);
            store
                .append("aa", hot("cc-urand", 16, 1, 0.1), &raw(1))
                .unwrap();
            // One row: still in the WAL.
            assert_eq!(store.seg_stats().wal_rows, 1);
            store
                .append("bb", hot("cc-urand", 64, 2, 0.4), &raw(2))
                .unwrap();
            // Threshold reached: sealed into a segment.
            let stats = store.seg_stats();
            assert_eq!(stats.segments, 1);
            assert_eq!(stats.wal_rows, 0);
            store
                .append("cc", hot("bfs-urand", 16, 3, 0.3), &raw(3))
                .unwrap();
        }
        let store = SegmentStore::open(&dir).unwrap();
        for (key, seed) in [("aa", 1u64), ("bb", 2), ("cc", 3)] {
            assert_eq!(store.load(key).unwrap(), raw(seed), "{key}");
        }
        let stats = store.seg_stats();
        assert_eq!(stats.live_rows, 3);
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.wal_rows, 1);
        assert_eq!(stats.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_keys_are_last_write_wins_with_exact_aggregate_retraction() {
        let dir = scratch("dup");
        let store = SegmentStore::open(&dir).unwrap().with_seal_threshold(2);
        store
            .append("aa", hot("cc-urand", 16, 1, 0.1), &raw(1))
            .unwrap();
        store
            .append("bb", hot("cc-urand", 64, 2, 0.4), &raw(2))
            .unwrap(); // seals
                       // Re-save `aa` with different measurements (the harness's
                       // samples-refresh overwrite).
        store
            .append("aa", hot("cc-urand", 16, 1, 0.9), &raw(9))
            .unwrap();
        assert_eq!(store.load("aa").unwrap(), raw(9), "newest wins");
        let stats = store.seg_stats();
        assert_eq!(stats.live_rows, 2);
        assert_eq!(stats.dead_rows, 1);
        // The aggregate must equal one built from only the live rows.
        let mut expect = AggState::new();
        expect.add(&hot("cc-urand", 16, 1, 0.9));
        expect.add(&hot("cc-urand", 64, 2, 0.4));
        assert_eq!(store.aggregate(), expect);
        // And survive a reopen (segment row superseded by WAL row).
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.aggregate(), expect);
        assert_eq!(store.load("aa").unwrap(), raw(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_dead_rows_and_preserves_everything_live() {
        let dir = scratch("compact");
        let store = SegmentStore::open(&dir).unwrap().with_seal_threshold(2);
        for (key, seed, wcpi) in [
            ("aa", 1u64, 0.1),
            ("bb", 2, 0.4),
            ("cc", 3, 0.3),
            ("aa", 9, 0.9),
        ] {
            store
                .append(
                    key,
                    hot("cc-urand", 16 * seed.max(1), seed, wcpi),
                    &raw(seed),
                )
                .unwrap();
        }
        let agg_before = store.aggregate();
        let query_before = store.query(&QueryFilter::default());
        let stats = store.compact().unwrap();
        assert_eq!(stats.live_rows, 3);
        assert_eq!(stats.dead_rows_dropped, 1);
        assert_eq!(stats.segments_after, 1);
        assert_eq!(
            store.aggregate(),
            agg_before,
            "compaction is aggregate-neutral"
        );
        assert_eq!(store.query(&QueryFilter::default()), query_before);
        assert_eq!(store.load("aa").unwrap(), raw(9));
        assert_eq!(store.load("bb").unwrap(), raw(2));
        // Reopen: only the compacted segment remains.
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        let seg_stats = store.seg_stats();
        assert_eq!(seg_stats.segments, 1);
        assert_eq!(seg_stats.dead_rows, 0);
        assert_eq!(store.aggregate(), agg_before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_quarantined_and_truncated_on_reopen() {
        let dir = scratch("torn");
        {
            let store = SegmentStore::open(&dir).unwrap();
            store
                .append("aa", hot("cc-urand", 16, 1, 0.1), &raw(1))
                .unwrap();
            store
                .append("bb", hot("cc-urand", 64, 2, 0.4), &raw(2))
                .unwrap();
        }
        // Tear the last frame.
        let wal = dir.join(WAL_NAME);
        let bytes = fs::read(&wal).unwrap();
        fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.load("aa").unwrap(), raw(1), "intact prefix survives");
        assert!(store.load("bb").is_none(), "torn row is a miss");
        assert_eq!(store.seg_stats().quarantined, 1);
        assert!(dir.join("wal.corrupt").exists(), "evidence quarantined");
        // The recompute path: re-append lands cleanly after the truncate.
        store
            .append("bb", hot("cc-urand", 64, 2, 0.4), &raw(2))
            .unwrap();
        drop(store);
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.load("bb").unwrap(), raw(2));
        assert_eq!(store.seg_stats().quarantined, 0, "clean reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_is_quarantined_wholesale() {
        let dir = scratch("segcorrupt");
        {
            let store = SegmentStore::open(&dir).unwrap().with_seal_threshold(1);
            store
                .append("aa", hot("cc-urand", 16, 1, 0.1), &raw(1))
                .unwrap();
        }
        let seg = dir.join("seg-000000.seg");
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let store = SegmentStore::open(&dir).unwrap();
        assert!(store.load("aa").is_none(), "corrupt segment is a miss");
        assert_eq!(store.seg_stats().quarantined, 1);
        assert!(dir.join("seg-000000.seg.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_corrupt_index_is_rebuilt() {
        let dir = scratch("index");
        {
            let store = SegmentStore::open(&dir).unwrap().with_seal_threshold(1);
            store
                .append("aa", hot("cc-urand", 16, 1, 0.1), &raw(1))
                .unwrap();
        }
        let index = dir.join(INDEX_NAME);
        assert!(index.exists(), "seal persists the index");
        fs::write(&index, b"garbage").unwrap();
        let store = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.load("aa").unwrap(), raw(1), "rebuilt from scan");
        drop(store);
        let reloaded = load_index(&index).expect("self-healed on reopen");
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded[0].0, "aa");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_answers_from_groups_not_rows() {
        let dir = scratch("query");
        let store = SegmentStore::open(&dir).unwrap();
        for seed in 0..10u64 {
            let mb = 16 << (seed % 3);
            store
                .append(
                    &format!("{seed:016x}"),
                    hot("cc-urand", mb, seed, 0.1 * (seed + 1) as f64),
                    &raw(seed),
                )
                .unwrap();
        }
        let q = store.query(&QueryFilter {
            workload: Some("cc-urand".to_string()),
            ..QueryFilter::default()
        });
        assert_eq!(q.count, 10);
        assert_eq!(q.groups.len(), 3, "three footprints");
        assert!(q.beta.is_some());
        // Recompute from raws: exact for count, identical for the fit.
        let mut recomputed = AggState::new();
        store.for_each_live(|_, h, _| recomputed.add(h));
        let rq = recomputed.query(&QueryFilter::default());
        assert_eq!(rq.count, q.count);
        assert_eq!(rq.beta, q.beta);
        assert_eq!(rq.p99_wcpi, q.p99_wcpi);
        let _ = fs::remove_dir_all(&dir);
    }
}
