//! Streaming β/c regression state for the paper's scaling fit
//! `WCPI = β · log10(M_KB) + c`, mergeable exactly.
//!
//! The state is the four OLS sums over fixed-point integers (`x` at
//! [`X_SCALE`], `y` at [`crate::sketch::VALUE_SCALE`]) accumulated in
//! `i128`. Integer sums make merge exactly associative and commutative,
//! so the fit computed from merged per-segment states is **bit-identical**
//! to the fit over the concatenated records — the "exact for count and
//! fit" half of the results-plane equivalence contract (the quantile half
//! is bounded, see [`crate::sketch`]).

use crate::codec::{Dec, DecResult, Enc};
use crate::sketch::VALUE_SCALE;

/// Fixed-point scale for the regressor `log10(footprint_KB)`: 1 unit = 1e-6.
pub const X_SCALE: f64 = 1e6;

/// Quantizes a regressor value to fixed point.
pub fn x_fp(x: f64) -> i64 {
    let scaled = x * X_SCALE;
    debug_assert!(scaled.abs() < 9.0e18, "regressor {x} overflows fixed point");
    scaled.round() as i64
}

/// A fitted line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope β of WCPI against `log10(M_KB)`.
    pub beta: f64,
    /// Intercept c.
    pub intercept: f64,
}

/// Mergeable OLS accumulator. All state is integral; see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Regress {
    n: u64,
    sx: i128,
    sy: i128,
    sxx: i128,
    sxy: i128,
}

impl Regress {
    /// An empty accumulator.
    pub fn new() -> Regress {
        Regress::default()
    }

    /// Number of points observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observes one `(x, y)` fixed-point pair.
    pub fn add(&mut self, x_fp: i64, y_fp: i64) {
        let (x, y) = (i128::from(x_fp), i128::from(y_fp));
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
    }

    /// Retracts one previously-added pair, exactly.
    pub fn remove(&mut self, x_fp: i64, y_fp: i64) {
        debug_assert!(self.n > 0, "removing from an empty accumulator");
        let (x, y) = (i128::from(x_fp), i128::from(y_fp));
        self.n = self.n.saturating_sub(1);
        self.sx -= x;
        self.sy -= y;
        self.sxx -= x * x;
        self.sxy -= x * y;
    }

    /// Merges `other` into `self`. Exactly associative and commutative.
    pub fn merge(&mut self, other: &Regress) {
        self.n += other.n;
        self.sx += other.sx;
        self.sy += other.sy;
        self.sxx += other.sxx;
        self.sxy += other.sxy;
    }

    /// The least-squares fit, or `None` with fewer than two points or no
    /// spread in `x` (a single-footprint group has no slope). The result
    /// is a pure function of the integer sums, so any merge order that
    /// produced the same point multiset yields the identical `Fit`.
    pub fn fit(&self) -> Option<Fit> {
        if self.n < 2 {
            return None;
        }
        let n = i128::from(self.n);
        let denom = n * self.sxx - self.sx * self.sx; // units: X_SCALE^2
        if denom == 0 {
            return None;
        }
        let num = n * self.sxy - self.sx * self.sy; // units: X_SCALE * VALUE_SCALE
        let beta = (num as f64 / denom as f64) * (X_SCALE / VALUE_SCALE);
        let mean_y = self.sy as f64 / VALUE_SCALE / self.n as f64;
        let mean_x = self.sx as f64 / X_SCALE / self.n as f64;
        Some(Fit {
            beta,
            intercept: mean_y - beta * mean_x,
        })
    }

    /// Serializes into `enc`.
    pub fn encode(&self, enc: &mut Enc) {
        enc.u64(self.n);
        enc.i128(self.sx);
        enc.i128(self.sy);
        enc.i128(self.sxx);
        enc.i128(self.sxy);
    }

    /// Deserializes an accumulator.
    pub fn decode(dec: &mut Dec<'_>) -> DecResult<Regress> {
        Ok(Regress {
            n: dec.u64()?,
            sx: dec.i128()?,
            sy: dec.i128()?,
            sxx: dec.i128()?,
            sxy: dec.i128()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::value_fp;

    fn accumulate(points: &[(f64, f64)]) -> Regress {
        let mut r = Regress::new();
        for &(x, y) in points {
            r.add(x_fp(x), value_fp(y));
        }
        r
    }

    #[test]
    fn fits_a_known_line() {
        // y = 0.5x + 0.25 over the fig1 footprint decades.
        let points: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let x = 4.0 + 0.5 * f64::from(i);
                (x, 0.5 * x + 0.25)
            })
            .collect();
        let fit = accumulate(&points).fit().unwrap();
        assert!((fit.beta - 0.5).abs() < 1e-6, "beta {}", fit.beta);
        assert!((fit.intercept - 0.25).abs() < 1e-6, "c {}", fit.intercept);
    }

    #[test]
    fn degenerate_inputs_have_no_fit() {
        assert_eq!(Regress::new().fit(), None);
        assert_eq!(accumulate(&[(4.0, 1.0)]).fit(), None);
        // Same x twice: no spread, no slope.
        assert_eq!(accumulate(&[(4.0, 1.0), (4.0, 2.0)]).fit(), None);
    }

    #[test]
    fn merge_is_exact_in_any_order() {
        let a = accumulate(&[(4.0, 0.1), (4.5, 0.2)]);
        let b = accumulate(&[(5.0, 0.4)]);
        let c = accumulate(&[(5.5, 0.9), (6.0, 1.3)]);
        let all = accumulate(&[(4.0, 0.1), (4.5, 0.2), (5.0, 0.4), (5.5, 0.9), (6.0, 1.3)]);
        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c;
        c_ba.merge(&b);
        c_ba.merge(&a);
        assert_eq!(ab_c, all);
        assert_eq!(c_ba, all);
        assert_eq!(ab_c.fit(), all.fit(), "bit-identical fit");
    }

    #[test]
    fn remove_restores_prior_state() {
        let before = accumulate(&[(4.0, 0.1), (5.0, 0.4)]);
        let mut r = before;
        r.add(x_fp(6.0), value_fp(1.0));
        r.remove(x_fp(6.0), value_fp(1.0));
        assert_eq!(r, before);
    }

    #[test]
    fn codec_roundtrip() {
        let r = accumulate(&[(4.0, 0.1), (5.0, 0.4), (6.0, 1.0)]);
        let mut enc = Enc::new();
        r.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert_eq!(Regress::decode(&mut dec).unwrap(), r);
        assert!(dec.done().is_ok());
    }
}
