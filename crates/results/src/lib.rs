//! The results plane: an append-only columnar store for run records with
//! online, mergeable aggregation.
//!
//! The legacy `RunStore` keeps one JSON file per run; answering a fig1
//! question ("β/c over the cc-urand sweep") meant replaying every record.
//! This crate stores the same records as fixed-schema column blocks
//! (sealed segments) plus an LZ-compressed raw-JSON sidecar for
//! bit-for-bit replay, and maintains per-`(workload, footprint, source)`
//! aggregate state — a WCPI quantile [`Sketch`] and a streaming β/c
//! [`Regress`] accumulator — incrementally as records commit, so sweep
//! queries are `O(groups)`, not `O(runs)`.
//!
//! Layering:
//!
//! * [`codec`] / [`lz`] — the binary framing and compression primitives.
//! * [`sketch`] / [`regress`] / [`aggregate`] — mergeable aggregation
//!   state. Merging per-segment aggregates in any order/grouping equals
//!   aggregating the concatenated records: exact for counts, means, and
//!   the β/c fit (integer fixed-point sums), bounded by
//!   [`QUANTILE_RELATIVE_ERROR`] for quantiles.
//! * [`SegmentStore`] — WAL + sealed segments + advisory index behind one
//!   handle, with the legacy store's tmp+fsync+rename durability and
//!   quarantine-and-recompute corruption contract.
//!
//! The crate is deliberately ignorant of the simulator: callers hand it a
//! dedup key (the record-byte hash), a [`HotRow`], and the raw record
//! bytes. `atscale-core` adapts `RunRecord` to that interface.

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod codec;
pub mod lz;
pub mod regress;
mod segment;
pub mod sketch;
pub mod store;
mod wal;

pub use aggregate::{
    AggState, CompactStats, GroupAgg, GroupKey, GroupSummary, HotRow, QueryFilter, QueryResult,
    SegStats,
};
pub use codec::Corrupt;
pub use regress::{x_fp, Fit, Regress, X_SCALE};
pub use sketch::{value_fp, Sketch, QUANTILE_RELATIVE_ERROR, VALUE_SCALE};
pub use store::{SegmentStore, DEFAULT_SEAL_THRESHOLD};
