//! Byte-oriented LZ77 for the raw-record sidecar.
//!
//! Run records are JSON with long repeated field names, so even this
//! deliberately simple scheme (greedy single-slot hash table, 64 KiB
//! window) cuts them to a fraction of their size. No external crates: the
//! build environment is offline and the vendored set has no compressor.
//!
//! Format: `u32` uncompressed length, then tokens until the end of input —
//! `0x00 u16-len <bytes>` for a literal run, `0x01 u16-len u16-dist` for a
//! back-reference (`dist` counted back from the current output position).
//! Decompression validates every token and the final length; anything off
//! is [`Corrupt`], never a panic.

use crate::codec::{Corrupt, DecResult};

const MIN_MATCH: usize = 4;
const MAX_RUN: usize = u16::MAX as usize;
const WINDOW: usize = u16::MAX as usize;
const HASH_BITS: u32 = 15;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn emit_literals(out: &mut Vec<u8>, mut lit: &[u8]) {
    while !lit.is_empty() {
        let n = lit.len().min(MAX_RUN);
        out.push(0x00);
        out.extend_from_slice(&(n as u16).to_le_bytes());
        out.extend_from_slice(&lit[..n]);
        lit = &lit[n..];
    }
}

/// Compresses `input`. Deterministic: the output is a pure function of the
/// input bytes.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(
        &(u32::try_from(input.len()).expect("records stay under 4 GiB")).to_le_bytes(),
    );
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0;
    let mut lit_start = 0;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX
            && i - cand <= WINDOW
            && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            let mut len = MIN_MATCH;
            while i + len < input.len() && len < MAX_RUN && input[cand + len] == input[i + len] {
                len += 1;
            }
            emit_literals(&mut out, &input[lit_start..i]);
            out.push(0x01);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    emit_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompresses a [`compress`] stream, validating every token.
pub fn decompress(data: &[u8]) -> DecResult<Vec<u8>> {
    if data.len() < 4 {
        return Err(Corrupt);
    }
    let expected = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0x00 => {
                if pos + 2 > data.len() {
                    return Err(Corrupt);
                }
                let len = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
                pos += 2;
                if len == 0 || pos + len > data.len() {
                    return Err(Corrupt);
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0x01 => {
                if pos + 4 > data.len() {
                    return Err(Corrupt);
                }
                let len = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
                let dist = u16::from_le_bytes([data[pos + 2], data[pos + 3]]) as usize;
                pos += 4;
                if len < MIN_MATCH || dist == 0 || dist > out.len() {
                    return Err(Corrupt);
                }
                // Byte-at-a-time: matches may overlap their own output.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(Corrupt),
        }
        if out.len() > expected {
            return Err(Corrupt);
        }
    }
    if out.len() != expected {
        return Err(Corrupt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_empty_short_and_repetitive() {
        for input in [
            b"".to_vec(),
            b"abc".to_vec(),
            b"aaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            br#"{"spec":{"workload":"cc-urand"},"spec":{"workload":"cc-urand"}}"#.to_vec(),
            (0u8..=255).cycle().take(100_000).collect::<Vec<u8>>(),
        ] {
            let packed = compress(&input);
            assert_eq!(decompress(&packed).unwrap(), input);
        }
    }

    #[test]
    fn json_like_input_actually_shrinks() {
        let record: String = (0..200)
            .map(|i| format!(r#"{{"inst_retired":{i},"walk_duration_cycles":{}}}"#, i * 7))
            .collect();
        let packed = compress(record.as_bytes());
        assert!(
            packed.len() * 2 < record.len(),
            "{} -> {}",
            record.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed).unwrap(), record.as_bytes());
    }

    #[test]
    fn overlapping_matches_roundtrip() {
        // Period-1 and period-3 repetitions force dist < len copies.
        let input: Vec<u8> = b"xyz".iter().copied().cycle().take(5000).collect();
        assert_eq!(decompress(&compress(&input)).unwrap(), input);
    }

    #[test]
    fn damaged_streams_are_corrupt_not_panics() {
        let packed = compress(b"the quick brown fox jumps over the lazy dog, twice over");
        assert_eq!(decompress(&[]), Err(Corrupt));
        assert_eq!(decompress(&packed[..3]), Err(Corrupt));
        for cut in 4..packed.len() {
            // Every truncation must fail cleanly (wrong final length at
            // worst), never panic or return wrong bytes silently.
            if let Ok(out) = decompress(&packed[..cut]) {
                assert!(out.is_empty(), "truncation cannot produce full output");
            }
        }
        let mut bad_tag = packed.clone();
        bad_tag[4] = 0x7F;
        assert_eq!(decompress(&bad_tag), Err(Corrupt));
    }
}
