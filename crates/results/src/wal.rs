//! The active write-ahead log: one CRC-framed row per committed record.
//!
//! Appends go here first (write + fsync) and are folded into the in-memory
//! index and live aggregate; once the log accumulates a segment's worth of
//! rows it is sealed into a columnar segment file and truncated. On open
//! the log is scanned front to back; the first frame that fails its magic,
//! bounds, or CRC check marks a torn tail — everything from there on is
//! quarantined to a `.corrupt` sidecar and the file is truncated back to
//! the last intact frame, mirroring `RunStore`'s
//! quarantine-and-recompute contract for legacy JSON records.

use crate::aggregate::HotRow;
use crate::codec::{crc32, Corrupt, Dec, DecResult, Enc};

/// v1 frame magic (`"AWAL"` little-endian) — rows without the arch
/// column. Still decoded (with `arch = "baseline"`), never written.
const WAL_MAGIC_V1: u32 = 0x4C41_5741;
/// v2 frame magic (`"AWL2"` little-endian) — rows carrying the arch
/// column. A log may mix v1 and v2 frames: the magic is per frame, so an
/// upgraded daemon appends v2 frames to a v1 log in place.
const WAL_MAGIC: u32 = 0x324C_5741;

/// One committed row: the dedup key, the hot columns, and the
/// LZ-compressed raw record JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalEntry {
    pub key: String,
    pub hot: HotRow,
    pub raw_lz: Vec<u8>,
}

/// Encodes one entry as a self-delimiting frame:
/// `[magic u32][len u32][crc u32][payload]`.
pub(crate) fn encode_entry(entry: &WalEntry) -> Vec<u8> {
    let mut payload = Enc::new();
    payload.str(&entry.key);
    entry.hot.encode(&mut payload);
    payload.bytes(&entry.raw_lz);
    let payload = payload.finish();
    let mut frame = Enc::new();
    frame.u32(WAL_MAGIC);
    frame.u32(u32::try_from(payload.len()).expect("rows stay under 4 GiB"));
    frame.u32(crc32(&payload));
    let mut out = frame.finish();
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8], v1: bool) -> DecResult<WalEntry> {
    let mut dec = Dec::new(payload);
    let entry = WalEntry {
        key: dec.str()?,
        hot: if v1 {
            HotRow::decode_v1(&mut dec)?
        } else {
            HotRow::decode(&mut dec)?
        },
        raw_lz: dec.bytes()?,
    };
    dec.done()?;
    Ok(entry)
}

/// The result of scanning a WAL image.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Intact entries, in append order.
    pub entries: Vec<WalEntry>,
    /// Byte length of the intact prefix (truncate the file to this).
    pub good_bytes: u64,
    /// The torn tail past the intact prefix, if any (quarantine this).
    pub torn_tail: Option<Vec<u8>>,
}

/// Scans a WAL image front to back, stopping at the first damaged frame.
pub(crate) fn scan(data: &[u8]) -> WalScan {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    loop {
        match next_entry(data, pos) {
            Ok(Some((entry, end))) => {
                entries.push(entry);
                pos = end;
            }
            Ok(None) => {
                return WalScan {
                    entries,
                    good_bytes: pos as u64,
                    torn_tail: None,
                }
            }
            Err(Corrupt) => {
                return WalScan {
                    entries,
                    good_bytes: pos as u64,
                    torn_tail: Some(data[pos..].to_vec()),
                }
            }
        }
    }
}

/// One frame at `pos`: `Ok(Some((entry, next_pos)))`, `Ok(None)` at a
/// clean end, `Err` on a torn or corrupt frame.
fn next_entry(data: &[u8], pos: usize) -> DecResult<Option<(WalEntry, usize)>> {
    if pos == data.len() {
        return Ok(None);
    }
    let mut dec = Dec::new(&data[pos..]);
    let v1 = match dec.u32()? {
        WAL_MAGIC => false,
        WAL_MAGIC_V1 => true,
        _ => return Err(Corrupt),
    };
    let len = dec.u32()? as usize;
    let crc = dec.u32()?;
    let header = 12usize;
    let end = pos.checked_add(header + len).ok_or(Corrupt)?;
    if end > data.len() {
        return Err(Corrupt);
    }
    let payload = &data[pos + header..end];
    if crc32(payload) != crc {
        return Err(Corrupt);
    }
    Ok(Some((decode_payload(payload, v1)?, end)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::x_fp;
    use crate::sketch::value_fp;

    fn entry(key: &str, seed: u64) -> WalEntry {
        WalEntry {
            key: key.to_string(),
            hot: HotRow {
                workload: "cc-urand".to_string(),
                footprint_mb: 16,
                page_size: "4K".to_string(),
                seed,
                source: "sim".to_string(),
                arch: "baseline".to_string(),
                wcpi_fp: value_fp(0.125),
                x_fp: x_fp(4.2),
                walk_duration_cycles: 9_000,
                inst_retired: 100_000,
                cycles: 150_000,
                walks_initiated: 90,
                walks_completed: 80,
                walks_retired: 70,
            },
            raw_lz: crate::lz::compress(br#"{"spec":{"seed":1}}"#),
        }
    }

    fn image(entries: &[WalEntry]) -> Vec<u8> {
        entries.iter().flat_map(encode_entry).collect()
    }

    #[test]
    fn scan_roundtrips_intact_logs() {
        let entries = vec![entry("a", 1), entry("b", 2), entry("a", 3)];
        let data = image(&entries);
        let scan = scan(&data);
        assert_eq!(scan.entries, entries);
        assert_eq!(scan.good_bytes, data.len() as u64);
        assert!(scan.torn_tail.is_none());
        assert!(super::scan(&[]).entries.is_empty());
    }

    #[test]
    fn truncation_at_every_offset_keeps_the_intact_prefix() {
        let entries = vec![entry("a", 1), entry("b", 2)];
        let data = image(&entries);
        let first_len = encode_entry(&entries[0]).len();
        for cut in 0..data.len() {
            let scan = scan(&data[..cut]);
            let expect_full = cut / first_len; // frames are equal-sized here
            assert_eq!(scan.entries.len(), expect_full.min(2), "cut at {cut}");
            if cut % first_len != 0 {
                assert!(scan.torn_tail.is_some(), "cut at {cut} leaves a tail");
            }
            assert!(scan.good_bytes <= cut as u64);
        }
    }

    /// Encodes `entry` as a pre-arch v1 frame: old magic, no arch column.
    fn encode_entry_v1(entry: &WalEntry) -> Vec<u8> {
        let mut payload = Enc::new();
        payload.str(&entry.key);
        payload.str(&entry.hot.workload);
        payload.u64(entry.hot.footprint_mb);
        payload.str(&entry.hot.page_size);
        payload.u64(entry.hot.seed);
        payload.str(&entry.hot.source);
        payload.i64(entry.hot.wcpi_fp);
        payload.i64(entry.hot.x_fp);
        payload.u64(entry.hot.walk_duration_cycles);
        payload.u64(entry.hot.inst_retired);
        payload.u64(entry.hot.cycles);
        payload.u64(entry.hot.walks_initiated);
        payload.u64(entry.hot.walks_completed);
        payload.u64(entry.hot.walks_retired);
        payload.bytes(&entry.raw_lz);
        let payload = payload.finish();
        let mut frame = Enc::new();
        frame.u32(WAL_MAGIC_V1);
        frame.u32(u32::try_from(payload.len()).unwrap());
        frame.u32(crc32(&payload));
        let mut out = frame.finish();
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn v1_frames_decode_with_baseline_arch_and_mix_with_v2() {
        // An upgraded daemon appends v2 frames after a v1 log's tail.
        let old = entry("a", 1);
        let new = entry("b", 2);
        let mut data = encode_entry_v1(&old);
        data.extend_from_slice(&encode_entry(&new));
        let scan = scan(&data);
        assert_eq!(scan.entries, vec![old, new]);
        assert_eq!(scan.entries[0].hot.arch, "baseline");
        assert!(scan.torn_tail.is_none());
        assert_eq!(scan.good_bytes, data.len() as u64);
    }

    #[test]
    fn bit_flips_quarantine_the_tail_not_the_prefix() {
        let entries = vec![entry("a", 1), entry("b", 2), entry("c", 3)];
        let data = image(&entries);
        let frame = encode_entry(&entries[0]).len();
        // Flip a bit inside the second frame: first survives, rest is tail.
        let mut damaged = data.clone();
        damaged[frame + frame / 2] ^= 0x10;
        let scan = scan(&damaged);
        assert_eq!(scan.entries, entries[..1]);
        assert_eq!(scan.good_bytes, frame as u64);
        let tail = scan.torn_tail.expect("damage leaves a tail");
        assert_eq!(tail.len(), damaged.len() - frame);
    }
}
